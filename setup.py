"""Legacy setup shim: offline environments lack the `wheel` package needed by
PEP 660 editable installs, so `pip install -e . --no-use-pep517
--no-build-isolation` goes through this file instead."""

from setuptools import setup

setup()
