"""Partition explorer: how stage size shapes pipeline efficiency.

The §2 motivation: a practitioner wants to fine-tune a custom model on the
GPUs they have.  This example builds a custom GPT-like spec, then compares
the three partitioning strategies of §4.3 across microbatch sizes and shows
the chosen stage layouts — reproducing Figure 9's trade-off (too-large
stages kill prefetching; too-small stages pay activation traffic).

Usage:
    python examples/partition_explorer.py [hidden_dim] [n_blocks]
"""

import sys

from repro.core.api import MobiusConfig, run_mobius
from repro.hardware.topology import topo_2_2
from repro.models.spec import build_gpt_like


def main() -> None:
    hidden_dim = int(sys.argv[1]) if len(sys.argv) > 1 else 3072
    n_blocks = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    model = build_gpt_like(
        f"custom-{hidden_dim}x{n_blocks}",
        n_blocks=n_blocks,
        hidden_dim=hidden_dim,
        n_heads=max(8, hidden_dim // 128),
    )
    topology = topo_2_2()
    print(f"model: {model.name} ({model.param_count / 1e9:.2f}B params)")
    print(f"server: {topology.name}, {topology.n_gpus}x {topology.gpu_spec.name}\n")

    header = f"{'microbatch':>10} {'method':>10} {'stages':>7} {'step (s)':>9} {'vs MIP':>7}"
    print(header)
    print("-" * len(header))
    for mbs in (1, 2, 4):
        baseline = None
        for method in ("mip", "max-stage", "min-stage"):
            report = run_mobius(
                model,
                topology,
                MobiusConfig(
                    microbatch_size=mbs,
                    partition_method=method,
                    partition_time_limit=2.0,
                ),
            )
            if baseline is None:
                baseline = report.step_seconds
            plan = report.plan_report.plan
            print(
                f"{mbs:>10} {method:>10} {plan.n_stages:>7} "
                f"{report.step_seconds:>9.2f} {report.step_seconds / baseline:>6.2f}x"
            )
        print()

    print("MIP-chosen layout at microbatch size 1:")
    report = run_mobius(
        model, topology, MobiusConfig(microbatch_size=1, partition_time_limit=2.0)
    )
    print(report.plan_report.plan.describe())


if __name__ == "__main__":
    main()
