"""Fine-tune a small GPT with the real Mobius schedule (numpy autograd).

Exercises the heterogeneous-memory training semantics end to end with real
gradients: the model's pipeline layers are partitioned into more stages
than (virtual) GPUs, stages are swapped in and out of "GPU memory" with a
bounded residency, and the loss curve matches GPipe's exactly — the §3.1
convergence guarantee, Figure 13.

Usage:
    python examples/convergence_finetune.py [steps]
"""

import sys

from repro.nn.transformer import GPTConfig
from repro.training.convergence import run_convergence_experiment
from repro.training.pipeline_train import MobiusScheduleTrainer
from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPTModel


def main() -> None:
    n_steps = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    config = GPTConfig(vocab_size=128, seq_len=32, dim=64, n_heads=4, n_blocks=6)

    print("running GPipe (8 virtual GPUs) vs Mobius (4 virtual GPUs) ...")
    result = run_convergence_experiment(
        n_steps=n_steps, config=config, batch_size=8, gpipe_gpus=8, mobius_gpus=4
    )
    print(f"\n{'step':>5} {'gpipe loss':>11} {'mobius loss':>12} {'gap':>10}")
    stride = max(1, n_steps // 10)
    for index in range(0, n_steps, stride):
        gap = abs(result.gpipe_loss[index] - result.mobius_loss[index])
        print(
            f"{index:>5} {result.gpipe_loss[index]:>11.4f} "
            f"{result.mobius_loss[index]:>12.4f} {gap:>10.2e}"
        )
    print(f"\nmax divergence: {result.max_divergence():.2e} "
          "(synchronous schedules -> identical updates)")

    # Peek at the swap behaviour of one Mobius step.
    corpus = SyntheticCorpus(vocab_size=config.vocab_size, n_tokens=10_000)
    trainer = MobiusScheduleTrainer(GPTModel(config, seed=0), 4, n_stages=8)
    trainer.step(next(corpus.batches(8, config.seq_len)))
    uploads = sum(1 for e in trainer.swap_events if e.kind == "upload")
    frees = sum(1 for e in trainer.swap_events if e.kind == "free")
    print(f"\none Mobius step swapped {uploads} stage uploads / {frees} frees "
          f"across 4 virtual GPUs ({trainer.partition.n_stages} stages)")
    print("first few swap events:")
    for event in trainer.swap_events[:8]:
        print(f"  {event.kind:>6} stage {event.stage} on gpu {event.gpu} ({event.phase})")


if __name__ == "__main__":
    main()
