"""Server advisor: where should you fine-tune your model? (§4.8)

The paper's economic argument: renting a commodity multi-GPU server with
Mobius trades a modest slowdown for a much lower per-step price than
DeepSpeed on a data-center NVLink server.  This example prices one
fine-tuning run (a fixed number of steps) for a chosen model on both
options and prints the bill.

Usage:
    python examples/server_advisor.py [model] [steps]
    # model in {3B, 8B, 15B}; default 8B, 2000 steps
"""

import sys

from repro.analysis.price import PricePoint
from repro.baselines.deepspeed import run_deepspeed
from repro.core.api import MobiusConfig, run_mobius
from repro.hardware.pricing import COMMODITY_4X3090TI, EC2_P3_8XLARGE
from repro.hardware.topology import datacenter_server, topo_2_2
from repro.models.zoo import model_by_name


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "8B"
    n_steps = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    model = model_by_name(name)
    print(f"fine-tuning {model.name} for {n_steps} steps\n")

    print("simulating DeepSpeed on the data-center server (4xV100, NVLink) ...")
    ds_dc = run_deepspeed(model, datacenter_server(), )
    print("simulating Mobius on the commodity server (4x3090-Ti, Topo 2+2) ...")
    mobius_c = run_mobius(
        model, topo_2_2(), MobiusConfig(partition_time_limit=2.0)
    )

    options = [
        PricePoint("DeepSpeed @ EC2 P3 (4xV100)", EC2_P3_8XLARGE, ds_dc.step_seconds),
        PricePoint(
            "Mobius @ commodity (4x3090-Ti)", COMMODITY_4X3090TI, mobius_c.step_seconds
        ),
    ]
    print(f"\n{'option':<32} {'s/step':>8} {'$/step':>9} {'run time':>10} {'run cost':>9}")
    for point in options:
        hours = point.step_seconds * n_steps / 3600
        cost = point.step_price_usd * n_steps
        print(
            f"{point.system:<32} {point.step_seconds:>8.2f} "
            f"{point.step_price_usd:>9.4f} {hours:>8.1f} h {cost:>8.2f} $"
        )

    ds, mobius = options
    print(
        f"\n==> Mobius-on-commodity: {mobius.step_seconds / ds.step_seconds:.2f}x the time "
        f"at {mobius.step_price_usd / ds.step_price_usd:.2f}x the price "
        "(paper: ~1.42x time, ~0.57x price)"
    )


if __name__ == "__main__":
    main()
