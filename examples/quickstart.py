"""Quickstart: plan and simulate fine-tuning a 15B model on 4x3090-Ti.

Runs Mobius's full planning pipeline (profiling with layer similarity, MIP
partitioning, cross mapping) for the paper's 15B model on a commodity
server with two GPUs per CPU root complex, simulates one training step, and
compares against DeepSpeed ZeRO-3 with heterogeneous memory.

Usage:
    python examples/quickstart.py
"""

from repro.analysis.overlap import overlap_stats
from repro.baselines.deepspeed import run_deepspeed
from repro.core.api import MobiusConfig, run_mobius
from repro.hardware.topology import topo_2_2
from repro.models.zoo import gpt_15b


def main() -> None:
    model = gpt_15b()
    topology = topo_2_2()
    print(f"model: {model.name} ({model.param_count / 1e9:.1f}B parameters)")
    print(f"server: {topology.name} with {topology.n_gpus}x {topology.gpu_spec.name}")
    print(f"DRAM needed to host the model: {model.dram_footprint_bytes() / 1e9:.0f} GB")
    print()

    print("planning (profile -> MIP partition -> cross mapping) ...")
    report = run_mobius(model, topology, MobiusConfig(partition_time_limit=5.0))
    plan_report = report.plan_report
    plan = plan_report.plan
    print(f"  profiling:     {plan_report.profiling_seconds:6.1f} s "
          f"({plan_report.profile_report.n_unique_layers} unique layers measured)")
    print(f"  MIP solve:     {plan_report.mip_solve_seconds:6.1f} s "
          f"({plan_report.partition_result.nodes_explored} nodes)")
    print(f"  cross mapping: {plan_report.mapping_seconds:6.3f} s "
          f"(best of {plan_report.mapping_result.schemes_evaluated} schemes)")
    print(f"  partition: {plan.n_stages} stages, "
          f"GPU permutation {plan.mapping.perm}")
    print()

    mobius_stats = overlap_stats(report.trace)
    print(f"Mobius simulated step:    {report.step_seconds:7.2f} s "
          f"(estimated {plan.estimated_step_seconds:.2f} s)")
    print(f"  traffic: {report.trace.total_transfer_bytes() / 1e9:6.1f} GB "
          f"({report.trace.total_transfer_bytes() / model.param_bytes(4):.1f}x model size)")
    print(f"  non-overlapped communication: {mobius_stats.non_overlapped_fraction:.0%} of the step")
    print()

    ds = run_deepspeed(model, topology)
    ds_stats = overlap_stats(ds.trace)
    print(f"DeepSpeed simulated step: {ds.step_seconds:7.2f} s")
    print(f"  traffic: {ds.trace.total_transfer_bytes() / 1e9:6.1f} GB "
          f"({ds.trace.total_transfer_bytes() / model.param_bytes(4):.1f}x model size)")
    print(f"  non-overlapped communication: {ds_stats.non_overlapped_fraction:.0%} of the step")
    print()
    print(f"==> Mobius speedup over DeepSpeed: "
          f"{ds.step_seconds / report.step_seconds:.1f}x "
          f"(paper: 3.8-5.1x)")


if __name__ == "__main__":
    main()
