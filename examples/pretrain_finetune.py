"""The full fine-tuning workflow: pretrain, checkpoint, fine-tune (§2.1).

Demonstrates the library as a training stack: pretrain a small GPT on a
"general" corpus, save the checkpoint, then fine-tune it on a "downstream"
corpus with the Mobius heterogeneous-memory schedule, a warmup+cosine
learning-rate schedule and gradient clipping — and show that starting from
the pretrained weights beats training from scratch, the economics the paper
is built on.

Usage:
    python examples/pretrain_finetune.py [pretrain_steps] [finetune_steps]
"""

import sys
import tempfile

from repro.autograd.schedule import WarmupCosine, clip_grad_norm
from repro.nn.data import SyntheticCorpus
from repro.nn.serialization import load_model, save_model
from repro.nn.transformer import GPTConfig, GPTModel
from repro.training.pipeline_train import MobiusScheduleTrainer


def finetune(model: GPTModel, corpus: SyntheticCorpus, n_steps: int) -> list[float]:
    trainer = MobiusScheduleTrainer(
        model, n_gpus=4, n_stages=8, lr=3e-4, recompute=True
    )
    schedule = WarmupCosine(
        trainer.optimizer, warmup_steps=max(1, n_steps // 10), total_steps=n_steps
    )
    losses = []
    for _, batch in zip(range(n_steps), corpus.batches(8, 32, seed=11)):
        loss = trainer.step(batch)
        clip_grad_norm(model.parameters(), max_norm=1.0)
        schedule.step()
        losses.append(loss)
    return losses


def main() -> None:
    pretrain_steps = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    finetune_steps = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    config = GPTConfig(vocab_size=128, seq_len=32, dim=64, n_heads=4, n_blocks=6)

    general = SyntheticCorpus(vocab_size=128, n_tokens=60_000, seed=0)
    downstream = SyntheticCorpus(
        vocab_size=128, n_tokens=20_000, seed=99, markov_weight=0.85
    )

    print(f"pretraining for {pretrain_steps} steps on the general corpus ...")
    pretrained = GPTModel(config, seed=0)
    trainer = MobiusScheduleTrainer(pretrained, n_gpus=4, n_stages=8, lr=1e-3)
    for step, batch in zip(range(pretrain_steps), general.batches(8, 32, seed=1)):
        loss = trainer.step(batch)
        if step % max(1, pretrain_steps // 5) == 0:
            print(f"  step {step:>4}: loss {loss:.3f}")

    with tempfile.NamedTemporaryFile(suffix=".npz", delete=False) as handle:
        ckpt = handle.name
    save_model(pretrained, ckpt)
    print(f"checkpoint saved to {ckpt}\n")

    print(f"fine-tuning from the checkpoint for {finetune_steps} steps ...")
    warm = GPTModel(config, seed=123)
    load_model(warm, ckpt)
    warm_losses = finetune(warm, downstream, finetune_steps)

    print("training the downstream task from scratch for comparison ...")
    cold = GPTModel(config, seed=123)
    cold_losses = finetune(cold, downstream, finetune_steps)

    print(f"\n{'step':>5} {'from checkpoint':>16} {'from scratch':>13}")
    stride = max(1, finetune_steps // 8)
    for index in range(0, finetune_steps, stride):
        print(f"{index:>5} {warm_losses[index]:>16.3f} {cold_losses[index]:>13.3f}")
    print(
        f"\nfinal: pretrained start {warm_losses[-1]:.3f} vs "
        f"from-scratch {cold_losses[-1]:.3f} "
        f"({'pretraining wins' if warm_losses[-1] < cold_losses[-1] else 'tie'})"
    )


if __name__ == "__main__":
    main()
