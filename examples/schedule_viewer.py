"""Schedule viewer: render simulated pipeline timelines (Figure 4, live).

Draws ASCII Gantt charts of one training step for Mobius and DeepSpeed on
the same server, making the paper's core argument visible: Mobius's stage
swaps (v) hide under compute (=), while DeepSpeed's gathers serialise with
it.  Also writes Chrome-tracing JSON for interactive viewing in Perfetto.

Usage:
    python examples/schedule_viewer.py [model] [out.json]
"""

import sys

from repro.analysis.timeline import ascii_gantt, to_chrome_trace
from repro.baselines.deepspeed import run_deepspeed
from repro.core.api import MobiusConfig, run_mobius
from repro.hardware.topology import topo_2_2
from repro.models.zoo import model_by_name


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "8B"
    out_path = sys.argv[2] if len(sys.argv) > 2 else None
    model = model_by_name(name)
    topology = topo_2_2()

    mobius = run_mobius(
        model, topology, MobiusConfig(microbatch_size=1, partition_time_limit=2.0)
    )
    print(f"=== Mobius: {model.name} on {topology.name} ===")
    print(ascii_gantt(mobius.trace, width=110))
    print()

    ds = run_deepspeed(model, topology)
    print(f"=== DeepSpeed ZeRO-3 + heterogeneous memory ===")
    print(ascii_gantt(ds.trace, width=110, label_kinds=False))
    print()
    print(
        f"Mobius {mobius.step_seconds:.2f}s vs DeepSpeed {ds.step_seconds:.2f}s "
        f"({ds.step_seconds / mobius.step_seconds:.1f}x)"
    )

    if out_path:
        with open(out_path, "w") as f:
            f.write(to_chrome_trace(mobius.trace))
        print(f"\nwrote Chrome trace of the Mobius step to {out_path} "
              "(open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
