"""Figure 6: communication traffic of DeepSpeed vs Mobius."""

from benchmarks.conftest import show
from repro.experiments import fig6_traffic


def test_fig6(run_once):
    table = run_once(fig6_traffic.run, fast=True)
    show(table)
    for row in table.rows:
        ds_x = float(row[6])
        mobius_x = float(row[7])
        # Paper: DeepSpeed ~7.3x model size, Mobius ~1.8x.
        assert 6.0 <= ds_x <= 8.0
        assert 1.2 <= mobius_x <= 2.2
        # Analytic estimates track the measured volumes.
        assert abs(row[2] - row[3]) / row[2] < 0.1  # DeepSpeed
        assert abs(row[4] - row[5]) / row[4] < 0.15  # Mobius
