"""Table 1: 3090-Ti vs A100 comparison."""

from benchmarks.conftest import show
from repro.experiments import table1_gpus


def test_table1(run_once):
    table = run_once(table1_gpus.run)
    show(table)
    values = dict(zip(table.column("attribute"), table.column("A100")))
    assert values["GPUDirect P2P"] == "support"
    assert values["Price"] == "$14,000"
