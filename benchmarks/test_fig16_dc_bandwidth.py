"""Figure 16: GPU-CPU bandwidth CDF on the data-center server."""

from benchmarks.conftest import show
from repro.experiments import fig16_dc_bandwidth


def test_fig16(run_once):
    table = run_once(fig16_dc_bandwidth.run, fast=True)
    show(table)
    medians = {(row[0], row[1]): row[2] for row in table.rows}
    models = {row[0] for row in table.rows}
    for model in models:
        # Paper: Mobius's GPU-CPU transfers still contend less than
        # DeepSpeed's, even with NVLink carrying the collectives.
        assert medians[(model, "mobius")] >= medians[(model, "deepspeed")]
