"""Figure 15: performance and price on the data-center GPU server."""

from benchmarks.conftest import show
from repro.experiments import fig15_datacenter


def test_fig15(run_once):
    time_table, price_table = run_once(fig15_datacenter.run, fast=True)
    show([time_table, price_table])

    for row in time_table.rows:
        _model, ds_dc, mobius_dc, ds_c, mobius_c = row
        # Both systems improve on the DC server; DeepSpeed improves most.
        assert ds_dc < ds_c
        assert mobius_dc <= mobius_c * 1.02
        assert (ds_c / ds_dc) > (mobius_c / mobius_dc)
        # On the DC server DeepSpeed is at least competitive with Mobius.
        assert ds_dc <= mobius_dc * 1.05

    for row in price_table.rows:
        _model, _ds_price, _mob_price, time_x, price_x = row
        # Paper: ~1.42x the time at ~0.57x the price.
        assert 1.1 <= float(time_x) <= 1.9
        assert 0.35 <= float(price_x) <= 0.75
