"""Figure 5: end-to-end per-step time of all four systems.

The paper's headline: Mobius is 3.8-5.1x faster than DeepSpeed with
heterogeneous memory, and the all-in-GPU systems OOM beyond the 3B model.
"""

from benchmarks.conftest import show
from repro.experiments import fig5_overall


def test_fig5(run_once):
    table = run_once(fig5_overall.run, fast=True)
    show(table)

    ratios = [float(r.rstrip("x")) for r in table.column("ds/mobius")]
    # Paper band 3.8-5.1x; the simulator lands in 3.4-5.1 (Topo 2+2 is the
    # least contended and sits at the low end).
    assert all(r >= 3.0 for r in ratios)
    assert max(ratios) >= 4.0
    assert max(ratios) <= 6.0

    # OOM pattern: GPipe and DeepSpeed-pipeline cannot train the 8B+ models.
    for row in table.rows:
        model, _topo, gpipe, ds_pipeline, *_ = row
        if model != "GPT-3B":
            assert gpipe == "OOM" and ds_pipeline == "OOM"

    # Mobius is nearly topology-insensitive (cross mapping): spread <= 1.4x.
    by_model: dict[str, list[float]] = {}
    for row in table.rows:
        by_model.setdefault(row[0], []).append(float(row[5]))
    for steps in by_model.values():
        assert max(steps) / min(steps) <= 1.4
