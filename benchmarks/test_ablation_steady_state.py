"""Ablation: steady-state multi-step execution.

Chains several Mobius steps so the next step's uploads overlap the current
step's tail; measures how much of the one-step time is pipeline fill that
amortises away.
"""

from benchmarks.conftest import show
from repro.core.api import MobiusConfig
from repro.core.extensions import simulate_mobius_steps
from repro.experiments.runner import ExperimentTable
from repro.hardware.topology import topo_2_2
from repro.models.zoo import gpt_8b


def run() -> ExperimentTable:
    run_ = simulate_mobius_steps(
        gpt_8b(),
        topo_2_2(),
        n_steps=4,
        config=MobiusConfig(microbatch_size=1, partition_time_limit=1.0),
    )
    table = ExperimentTable(
        title="Ablation: steady-state multi-step (8B, Topo 2+2, 4 steps)",
        columns=("metric", "seconds"),
    )
    table.add_row("first step", run_.first_step_seconds)
    table.add_row("amortised step", run_.amortised_step_seconds)
    table.add_row("total (4 steps)", run_.total_seconds)
    return table


def test_steady_state(run_once):
    table = run_once(run)
    show(table)
    values = dict(zip(table.column("metric"), table.column("seconds")))
    # The amortised step stays within 15% of the first step (steps are
    # serialised on the optimizer), and chaining is sane.
    assert values["amortised step"] <= values["first step"] * 1.15
    assert values["total (4 steps)"] >= 3.0 * values["amortised step"]
