"""Figure 4: pipeline timeline, sequential vs cross mapping."""

from benchmarks.conftest import show
from repro.experiments import fig4_pipeline_timeline


def test_fig4(run_once):
    table = run_once(fig4_pipeline_timeline.run)
    show(table)
    rows = {row[0]: row for row in table.rows}
    # Cross mapping never slows the pipeline and transfers at least as fast.
    assert rows["cross"][1] <= rows["sequential"][1] * 1.005
    assert rows["cross"][2] >= rows["sequential"][2] - 0.3
