"""Ablation: Mobius's prefetching (the §3.1 overlap mechanism).

Not a paper figure, but the design DESIGN.md calls out: reserving GPU
memory to prefetch the next stage is what hides the swap traffic.  With
prefetching disabled, every stage upload serialises behind the previous
stage's execution.
"""

from benchmarks.conftest import show
from repro.core.api import MobiusConfig, plan_mobius
from repro.core.pipeline import simulate_mobius
from repro.experiments.runner import ExperimentTable
from repro.hardware.topology import topo_2_2
from repro.models.zoo import gpt_15b


def run() -> ExperimentTable:
    model = gpt_15b()
    topology = topo_2_2()
    report = plan_mobius(model, topology, MobiusConfig(partition_time_limit=1.0))
    table = ExperimentTable(
        title="Ablation: prefetching on/off (15B, Topo 2+2)",
        columns=("prefetch", "step_s", "non_overlapped"),
    )
    for prefetch in (True, False):
        run_ = simulate_mobius(
            report.plan, topology, report.cost_model, prefetch=prefetch
        )
        table.add_row(
            "on" if prefetch else "off",
            run_.step_seconds,
            run_.trace.non_overlapped_comm_fraction(),
        )
    return table


def test_prefetch_ablation(run_once):
    table = run_once(run)
    show(table)
    on, off = table.rows
    assert off[1] > on[1] * 1.05  # prefetching buys real time
    assert off[2] > on[2]  # ... by hiding communication
