"""Figure 14: Mobius scalability from 2 to 8 GPUs."""

from benchmarks.conftest import show
from repro.experiments import fig14_scalability


def test_fig14(run_once):
    table = run_once(fig14_scalability.run, fast=True)
    show(table)
    throughput = dict(zip(table.column("gpus"), table.column("throughput")))
    # Paper reports (slightly) super-linear scaling; the simulator lands
    # near-linear — require >= 85% of perfect linear at every even count.
    for row in table.rows:
        gpus, _groups, _step, tput, linear, _ratio = row
        if gpus % 2 == 0:
            assert tput >= 0.85 * linear, gpus
    # Throughput strictly grows with GPU count.
    counts = sorted(throughput)
    values = [throughput[c] for c in counts]
    assert all(a < b for a, b in zip(values, values[1:]))
    assert throughput[8] >= 3.2 * throughput[2]
