"""Ablation: SSD offload tier vs DRAM (§3.1's design choice).

The paper keeps stages in DRAM, arguing SSD bandwidth would bottleneck the
pipeline.  This bench quantifies that: the same 15B plan re-simulated with
the memory tier behind NVMe bandwidth.
"""

from benchmarks.conftest import show
from repro.core.extensions import simulate_with_ssd
from repro.experiments.runner import ExperimentTable
from repro.hardware.topology import topo_2_2
from repro.models.zoo import gpt_15b


def run() -> ExperimentTable:
    table = ExperimentTable(
        title="Ablation: DRAM vs SSD offload tier (15B, Topo 2+2)",
        columns=("tier", "bandwidth_GBps", "step_s", "slowdown"),
    )
    for bandwidth in (5.0, 2.0):
        comparison = simulate_with_ssd(
            gpt_15b(), topo_2_2(), ssd_bandwidth=bandwidth * 1e9
        )
        if not table.rows:
            table.add_row("DRAM", 80.0, comparison.dram_step_seconds, "1.00x")
        table.add_row(
            "SSD", bandwidth, comparison.ssd_step_seconds, f"{comparison.slowdown:.2f}x"
        )
    return table


def test_ssd_tier(run_once):
    table = run_once(run)
    show(table)
    slowdowns = [float(r[3].rstrip("x")) for r in table.rows]
    # SSD bottlenecks the pipeline, increasingly so at lower bandwidth —
    # the §3.1 justification for a DRAM-only memory tier.
    assert slowdowns[1] > 1.2
    assert slowdowns[2] > slowdowns[1]
