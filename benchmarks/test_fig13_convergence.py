"""Figure 13: training-loss curves of Mobius vs GPipe."""

from benchmarks.conftest import show
from repro.experiments import fig13_convergence


def test_fig13(run_once):
    table = run_once(fig13_convergence.run, fast=True)
    show(table)
    gpipe = table.column("gpipe_loss")
    mobius = table.column("mobius_loss")
    # Paper: the curves almost overlap (synchronous updates) ...
    assert max(abs(a - b) for a, b in zip(gpipe, mobius)) < 1e-2
    # ... and fine-tuning actually learns.
    assert gpipe[-1] < gpipe[0]
    assert mobius[-1] < mobius[0]
