"""Figure 2: DeepSpeed bandwidth CDF on the commodity server."""

from benchmarks.conftest import show
from repro.experiments import fig2_deepspeed_cdf


def test_fig2(run_once):
    table = run_once(fig2_deepspeed_cdf.run)
    show(table)
    # Paper: most data moves at <= 50% of the root complex's maximum
    # (6.55 GB/s of 13.1); the CDF at 6 GB/s should already be high.
    cdf_at_6 = dict(zip(table.column("bandwidth_gbps"), table.column("cdf")))[6]
    assert cdf_at_6 > 0.5
