"""Figure 10: cross mapping vs sequential mapping on 8 GPUs."""

from benchmarks.conftest import show
from repro.experiments import fig10_mapping


def test_fig10(run_once):
    table = run_once(fig10_mapping.run, fast=True)
    show(table)
    ratios = [float(r) for r in table.column("cross/sequential")]
    # Paper: cross mapping reduces per-step time by 11.3-18.1%.  The fluid
    # simulator hides prefetch traffic more effectively than the real
    # system (no launch/staging overheads), so the magnitude is muted here
    # (~1-3%); the *direction* and the shrinking-gain trend are preserved.
    assert min(ratios) <= 0.99
    assert all(r <= 1.005 for r in ratios)
    # The gain shrinks as microbatches grow (compute starts dominating).
    assert ratios[-1] >= ratios[0] - 0.005
