"""§2.3: DeepSpeed's communication profile on the commodity server."""

from benchmarks.conftest import show
from repro.experiments import sec23_deepspeed_profile


def test_sec23(run_once):
    table = run_once(sec23_deepspeed_profile.run)
    show(table)
    measured = dict(zip(table.column("metric"), table.column("measured")))
    # Paper: communication accounts for over 70% of training time.
    assert float(measured["comm fraction of step"]) >= 0.7
    # Paper: traffic is ~7.3x the model size.
    traffic = float(measured["traffic / model size"].rstrip("x"))
    assert 6.0 <= traffic <= 8.0
