"""Figure 7: bandwidth CDFs of DeepSpeed vs Mobius across topologies."""

from benchmarks.conftest import show
from repro.experiments import fig7_bandwidth_cdf


def test_fig7(run_once):
    table = run_once(fig7_bandwidth_cdf.run, fast=True)
    show(table)
    rows = {
        (row[0], row[1], row[2]): (row[3], row[4], row[5]) for row in table.rows
    }
    for (model, topo, system), (below6, above12, median) in rows.items():
        if system == "mobius":
            # Paper: more than half of Mobius's bytes move above 12 GB/s.
            assert above12 >= 0.5, (model, topo)
        else:
            # Paper: DeepSpeed's bytes mostly sit below 6 GB/s.
            assert below6 >= 0.5, (model, topo)
    # Mobius's median bandwidth beats DeepSpeed's everywhere.
    for (model, topo, system), stats in rows.items():
        if system == "mobius":
            assert stats[2] > rows[(model, topo, "deepspeed")][2]
