"""Ablation: ZeRO-Offload's single-GPU memory boundary (§5).

The related-work comparison the paper argues from: ZeRO-Offload removes
parameter communication but replicates the FP16 model in every GPU, so its
trainable scale sits between GPipe's and Mobius's.
"""

from benchmarks.conftest import show
from repro.experiments.runner import ExperimentTable, run_system
from repro.hardware.topology import topo_2_2
from repro.models.zoo import gpt_3b, gpt_8b


def run() -> ExperimentTable:
    table = ExperimentTable(
        title="Ablation: ZeRO-Offload vs ZeRO-3 vs Mobius (Topo 2+2, mbs 1)",
        columns=("model", "zero-offload", "deepspeed", "mobius"),
    )
    topology = topo_2_2()
    for factory in (gpt_3b, gpt_8b):
        model = factory()
        cells = []
        for system in ("zero-offload", "deepspeed", "mobius"):
            result = run_system(system, model, topology, microbatch_size=1)
            cells.append(f"{result.step_seconds:.2f}" if result.ok else "OOM")
        table.add_row(model.name, *cells)
    table.notes.append(
        "paper (§5): ZeRO-Offload's model scale is limited by a single GPU's "
        "memory; heterogeneous-memory systems train far larger models"
    )
    return table


def test_zero_offload_boundary(run_once):
    table = run_once(run)
    show(table)
    rows = {row[0]: row for row in table.rows}
    # 3B fits and is fast (no parameter communication at all).
    assert rows["GPT-3B"][1] != "OOM"
    assert float(rows["GPT-3B"][1]) < float(rows["GPT-3B"][2])
    # 8B exceeds a single 24 GB GPU's replica capacity.
    assert rows["GPT-8B"][1] == "OOM"
    assert rows["GPT-8B"][3] != "OOM"  # Mobius still trains it
