"""Ablation: MILP solver backends (our simplex+B&B vs scipy HiGHS).

Validates the from-scratch solver substrate against HiGHS on the literal
partitioning MIP, and records the solve-time gap.
"""

import time

from benchmarks.conftest import show
from repro.core.mip_formulation import solve_partition_mip
from repro.experiments.runner import ExperimentTable
from repro.hardware.gpu import RTX_3090TI
from repro.models.costmodel import CostModel
from repro.models.spec import build_gpt_like


def run() -> ExperimentTable:
    model = build_gpt_like(
        "bench", n_blocks=4, hidden_dim=1024, n_heads=8, include_embedding=False
    )
    cm = CostModel(RTX_3090TI, 2)
    table = ExperimentTable(
        title="Ablation: MILP solver backends on the partitioning MIP",
        columns=("backend", "objective_s", "solve_s"),
    )
    for backend in ("scipy", "bnb"):
        started = time.perf_counter()
        result = solve_partition_mip(
            model,
            cm,
            2,
            2,
            13.1e9,
            gpu_memory=2 * 10**9,
            stage_counts=[2, 3],
            backend=backend,
            time_limit_per_stage=60.0,
        )
        table.add_row(backend, result.step_seconds, time.perf_counter() - started)
    return table


def test_solver_backends(run_once):
    table = run_once(run)
    show(table)
    objectives = table.column("objective_s")
    assert abs(objectives[0] - objectives[1]) / objectives[0] < 1e-3
