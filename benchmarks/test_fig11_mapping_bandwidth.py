"""Figure 11: bandwidth CDFs under cross vs sequential mapping."""

from benchmarks.conftest import show
from repro.experiments import fig11_mapping_cdf


def test_fig11(run_once):
    table = run_once(fig11_mapping_cdf.run, fast=True)
    show(table)
    for row in table.rows:
        _model, _mbs, seq_above, cross_above, med_seq, med_cross = row
        # Paper: cross mapping shifts bytes toward higher bandwidth.
        assert cross_above >= seq_above - 0.02
        assert med_cross >= med_seq - 0.3
    # At least one configuration shows a strict improvement.
    assert any(row[3] > row[2] + 0.02 for row in table.rows)
