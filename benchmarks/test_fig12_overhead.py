"""Figure 12: profiling, MIP-solving and cross-mapping overheads."""

from benchmarks.conftest import show
from repro.experiments import fig12_overhead


def test_fig12(run_once):
    table = run_once(fig12_overhead.run, fast=True)
    show(table)
    profiling = dict(zip(table.column("model"), table.column("profiling")))
    # Paper: 8B and 15B profile in similar time thanks to layer similarity.
    assert abs(profiling["GPT-8B"] - profiling["GPT-15B"]) / profiling["GPT-8B"] < 0.3
    for row in table.rows:
        _model, prof, solve, mapping, _nodes, unique = row
        # Overheads are seconds, negligible against hours of fine-tuning.
        assert prof < 60.0
        assert solve < 30.0
        assert mapping < 5.0
        assert unique == 4  # embedding, block, final norm, head
