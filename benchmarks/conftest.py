"""Benchmark-suite helpers.

Every benchmark regenerates one table/figure of the paper via its
``repro.experiments`` harness, asserts the paper's qualitative shape, and
prints the table so ``pytest benchmarks/ --benchmark-only`` leaves a full
record of paper-vs-measured values.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, **kwargs):
        return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def show(tables) -> None:
    """Print one or many experiment tables into the benchmark log."""
    from repro.experiments.runner import ExperimentTable

    if isinstance(tables, ExperimentTable):
        tables = [tables]
    print()
    for table in tables:
        print(table.format())
        print()
