"""Figure 8: non-overlapped communication proportion."""

from benchmarks.conftest import show
from repro.experiments import fig8_overlap


def test_fig8(run_once):
    table = run_once(fig8_overlap.run, fast=True)
    show(table)
    for row in table.rows:
        _model, topo, ds, mobius, _reduction = row
        # Paper: DeepSpeed exposes most communication (~0.7-0.9 of the step);
        # Mobius hides the bulk of it.
        assert ds >= 0.45, topo
        assert mobius < ds, topo
        assert ds - mobius >= 0.3, topo
    # Mobius overlaps best on Topo 2+2 (most mapping freedom).
    mobius_by_topo = {row[1]: row[3] for row in table.rows}
    assert mobius_by_topo["Topo 2+2"] <= mobius_by_topo["Topo 4"]
