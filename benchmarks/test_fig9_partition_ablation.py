"""Figure 9: MIP vs maximum-stage vs minimum-stage partitioning."""

from benchmarks.conftest import show
from repro.experiments import fig9_partition


def test_fig9(run_once):
    table = run_once(fig9_partition.run, fast=True)
    show(table)
    for row in table.rows:
        max_stage_x = float(row[3])
        min_stage_x = float(row[4])
        # Paper: maximum-stage is the worst (it forfeits prefetching).
        assert max_stage_x >= 1.5
        # MIP is never beaten; min-stage stays close for big blocks.
        assert min_stage_x >= 0.999
        assert min_stage_x <= 1.5
