"""Ablation: prefetch priority streams (§3.3).

Mobius assigns higher priority to the prefetch of the stage that starts
earlier (cudaStreamCreateWithPriority).  Without priorities, concurrent
prefetches under one root complex share bandwidth equally and the earlier
stage's data arrives late.
"""

from benchmarks.conftest import show
from repro.core.api import MobiusConfig, plan_mobius
from repro.core.pipeline import simulate_mobius
from repro.experiments.runner import ExperimentTable
from repro.hardware.topology import topo_4
from repro.models.zoo import gpt_15b


def run() -> ExperimentTable:
    model = gpt_15b()
    topology = topo_4()  # maximum contention: all prefetches share one RC
    report = plan_mobius(model, topology, MobiusConfig(partition_time_limit=1.0))
    table = ExperimentTable(
        title="Ablation: prefetch priorities on/off (15B, Topo 4)",
        columns=("priorities", "step_s"),
    )
    for use in (True, False):
        run_ = simulate_mobius(
            report.plan, topology, report.cost_model, use_priorities=use
        )
        table.add_row("on" if use else "off", run_.step_seconds)
    return table


def test_priority_ablation(run_once):
    table = run_once(run)
    show(table)
    on, off = table.rows
    # Priorities never hurt, and help under contention.
    assert on[1] <= off[1] * 1.02
