"""Tests for the chaos harness and its CLI wiring."""

import json

import pytest

from repro.check.corpus import CorpusCell, default_corpus
from repro.cli import build_parser, main
from repro.core.api import MobiusConfig, plan_mobius
from repro.faults.chaos import (
    SCENARIOS,
    build_schedule,
    run_chaos,
    run_chaos_cell,
)
from repro.faults.models import FaultSchedule
from repro.hardware.topology import commodity_server


@pytest.fixture(scope="module")
def cell():
    return default_corpus()[0]


@pytest.fixture(scope="module")
def planned(cell):
    return plan_mobius(cell.model, cell.topology, cell.config)


class TestBuildSchedule:
    def test_clean_is_empty(self, cell, planned):
        schedule = build_schedule("clean", cell, 0, 1.0, planned.plan)
        assert schedule.faults == ()
        assert schedule.seed == 0

    def test_dropout_targets_last_gpu_mid_step(self, cell, planned):
        schedule = build_schedule("dropout", cell, 0, 2.0, planned.plan)
        (dropout,) = schedule.dropouts
        assert dropout.gpu == cell.topology.n_gpus - 1
        assert dropout.time == pytest.approx(3.0)

    def test_straggler_targets_a_computing_gpu(self, cell, planned):
        schedule = build_schedule("straggler", cell, 0, 1.0, planned.plan)
        (straggler,) = schedule.stragglers
        plan = planned.plan
        gpu = straggler.gpu
        stage_costs = plan.partition.stage_costs(planned.cost_model)
        assert any(
            stage_costs[j].fwd_seconds > 0 for j in plan.stages_of_gpu(gpu)
        )

    def test_unknown_scenario_rejected(self, cell, planned):
        with pytest.raises(ValueError):
            build_schedule("meteor-strike", cell, 0, 1.0, planned.plan)


class TestRunChaosCell:
    def test_dropout_recovers_with_positive_ttr(self, cell):
        result = run_chaos_cell(cell, "dropout", seed=0, n_steps=4)
        assert result.ok
        assert result.status == "ok"
        assert result.time_to_recover > 0
        assert 0 < result.goodput < result.goodput_clean
        assert result.check_errors == 0

    def test_clean_matches_its_own_baseline(self, cell):
        result = run_chaos_cell(cell, "clean", seed=0, n_steps=4)
        assert result.ok
        assert result.goodput == pytest.approx(result.goodput_clean)
        assert result.time_to_recover == 0

    def test_single_gpu_dropout_reports_typed_infeasibility(self, tiny_model):
        solo = CorpusCell(
            "tiny/solo",
            tiny_model,
            commodity_server([1]),
            MobiusConfig(partition_time_limit=1.0),
        )
        result = run_chaos_cell(solo, "dropout", seed=0, n_steps=4)
        assert result.status == "infeasible"
        assert result.ok  # a typed outcome, not a failure
        assert result.detail
        assert result.samples > 0  # the pre-fault step still counts

    def test_rejects_non_positive_steps(self, cell):
        with pytest.raises(ValueError):
            run_chaos_cell(cell, "clean", n_steps=0)


class TestRunChaos:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos(
            cells=[default_corpus()[0]], scenarios=("clean", "flaky"), n_steps=2
        )

    def test_matrix_shape_and_ok(self, report):
        assert len(report.results) == 2
        assert report.ok

    def test_json_round_trip(self, report):
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert payload["n_results"] == 2
        assert {r["scenario"] for r in payload["results"]} == {"clean", "flaky"}

    def test_reports_are_deterministic(self, report):
        again = run_chaos(
            cells=[default_corpus()[0]], scenarios=("clean", "flaky"), n_steps=2
        )
        assert again.to_json() == report.to_json()

    def test_progress_callback_sees_every_pair(self):
        seen = []
        run_chaos(
            cells=[default_corpus()[0]],
            scenarios=("clean",),
            n_steps=1,
            progress=seen.append,
        )
        assert seen == [f"{default_corpus()[0].name} / clean"]


class TestCli:
    def test_parser_accepts_chaos_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--json", "--seed", "7", "--steps", "3", "--out", "x.json"]
        )
        assert args.command == "chaos"
        assert args.seed == 7
        assert args.steps == 3
        assert args.out == "x.json"

    def test_cmd_chaos_writes_report_and_exits_by_ok(self, tmp_path, monkeypatch):
        import repro.faults.chaos as chaos_module

        calls = {}

        def fake_run_chaos(*, seed, n_steps, progress=None):
            calls["seed"] = seed
            calls["n_steps"] = n_steps
            return chaos_module.ChaosReport(seed=seed, n_steps=n_steps, results=())

        monkeypatch.setattr(chaos_module, "run_chaos", fake_run_chaos)
        out = tmp_path / "BENCH_chaos.json"
        code = main(["chaos", "--json", "--seed", "5", "--steps", "2", "--out", str(out)])
        assert code == 0
        assert calls == {"seed": 5, "n_steps": 2}
        payload = json.loads(out.read_text())
        assert payload["seed"] == 5
        assert payload["ok"] is True

    def test_standalone_module_main(self, tmp_path, monkeypatch):
        import repro.faults.chaos as chaos_module

        monkeypatch.setattr(
            chaos_module,
            "run_chaos",
            lambda *, seed, n_steps, progress=None: chaos_module.ChaosReport(
                seed=seed, n_steps=n_steps, results=()
            ),
        )
        out = tmp_path / "report.json"
        assert chaos_module.main(["--out", str(out)]) == 0
        assert json.loads(out.read_text())["ok"] is True
