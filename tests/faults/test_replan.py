"""Tests for elastic re-planning after GPU dropout."""

import pytest

from repro.check.corpus import default_corpus
from repro.check.mapping_check import check_mapping
from repro.check.plan_check import check_plan
from repro.core.api import MobiusConfig, plan_mobius
from repro.core.partition import PlanInfeasibleError
from repro.faults.replan import (
    ReplanCostModel,
    replan_after_dropout,
    surviving_topology,
)
from repro.hardware.topology import commodity_server, topo_1_3, topo_2_2


class TestSurvivingTopology:
    def test_group_loses_one_gpu(self):
        survivors = surviving_topology(topo_2_2(), 3)
        assert survivors.groups == (2, 1)
        assert survivors.n_gpus == 3

    def test_empty_group_is_dropped(self):
        survivors = surviving_topology(topo_1_3(), 0)
        assert survivors.groups == (3,)

    def test_link_parameters_preserved(self):
        original = topo_2_2()
        survivors = surviving_topology(original, 0)
        assert survivors.gpu_spec == original.gpu_spec
        assert survivors.pcie_bandwidth == original.pcie_bandwidth
        assert survivors.dram_bandwidth == original.dram_bandwidth
        assert "gpu0" in survivors.name

    def test_no_survivors_is_typed_infeasible(self):
        with pytest.raises(PlanInfeasibleError):
            surviving_topology(commodity_server([1]), 0)

    def test_out_of_range_gpu_rejected(self):
        with pytest.raises(ValueError):
            surviving_topology(topo_2_2(), 4)


class TestReplanCostModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReplanCostModel(replan_seconds=-1.0)
        with pytest.raises(ValueError):
            ReplanCostModel(migration_overhead=0.5)


class TestReplanAfterDropout:
    @pytest.fixture(scope="class")
    def replanned(self):
        cell = default_corpus()[0]
        old = plan_mobius(cell.model, cell.topology, cell.config)
        result = replan_after_dropout(
            cell.model,
            cell.topology,
            cell.config,
            cell.topology.n_gpus - 1,
            old_plan_report=old,
        )
        return cell, old, result

    def test_plan_targets_surviving_gpus(self, replanned):
        cell, _, result = replanned
        assert result.topology.n_gpus == cell.topology.n_gpus - 1
        assert result.plan_report.plan.n_gpus == cell.topology.n_gpus - 1

    def test_replan_passes_the_checkers(self, replanned):
        cell, _, result = replanned
        plan = result.plan_report.plan
        report = check_plan(
            plan,
            result.topology,
            result.plan_report.cost_model,
            bandwidth=result.topology.pcie_bandwidth,
        )
        report.extend(check_mapping(plan.mapping, result.topology, plan.n_stages))
        assert report.ok, report.render()

    def test_time_to_recover_is_positive_and_modeled(self, replanned):
        cell, _, result = replanned
        assert result.time_to_recover > 0
        # Default latency model charges the MIP search budget, not the
        # nondeterministic realized solve time.
        assert result.replan_seconds == cell.config.partition_time_limit
        assert result.migration_seconds == pytest.approx(
            result.migration_bytes / result.topology.pcie_bandwidth
        )

    def test_migration_counts_dropped_gpu_state(self, replanned):
        cell, old, result = replanned
        dropped = cell.topology.n_gpus - 1
        stage_costs = old.plan.partition.stage_costs(old.cost_model)
        expected = sum(
            stage_costs[j].param_bytes for j in old.plan.stages_of_gpu(dropped)
        )
        assert result.migration_bytes == pytest.approx(expected)

    def test_explicit_replan_seconds_override(self):
        cell = default_corpus()[0]
        result = replan_after_dropout(
            cell.model,
            cell.topology,
            cell.config,
            0,
            cost=ReplanCostModel(replan_seconds=0.25, migration_overhead=2.0),
        )
        assert result.replan_seconds == 0.25
        assert result.migration_seconds == pytest.approx(
            2.0 * result.migration_bytes / result.topology.pcie_bandwidth
        )

    def test_last_gpu_dropout_is_typed_infeasible(self, tiny_model):
        topology = commodity_server([1])
        config = MobiusConfig(partition_time_limit=1.0)
        with pytest.raises(PlanInfeasibleError):
            replan_after_dropout(tiny_model, topology, config, 0)


class TestReplanWarmStart:
    def test_replan_uses_fewer_solver_nodes_than_cold(self, monkeypatch):
        """The N-1 re-solve warm-starts from the pre-fault partition and
        must report a strictly smaller branch & bound tree than planning
        the surviving topology from scratch."""
        from repro.core import api
        from repro.models.costmodel import CostModel
        from repro.models.zoo import gpt2_small
        from repro.perf.cache import cache_overridden

        model = gpt2_small()
        topology = commodity_server([2, 2])
        config = MobiusConfig()

        monkeypatch.setattr(api, "_PARTITION_HINTS", {})
        with cache_overridden(memory=True, disk=False):
            old = plan_mobius(model, topology, config)
            result = replan_after_dropout(
                model, topology, config, 3, old_plan_report=old
            )
            assert result.warm_started
            warm_nodes = result.solver_nodes

        monkeypatch.setattr(api, "_PARTITION_HINTS", {})
        with cache_overridden(memory=True, disk=False):
            cold = plan_mobius(model, surviving_topology(topology, 3), config)
            cold_nodes = cold.partition_result.nodes_explored
            assert not cold.partition_result.warm_started

        assert warm_nodes < cold_nodes
        assert (
            result.plan_report.plan.partition.boundaries
            == cold.plan.partition.boundaries
        ), "warm start must not change the recovery plan"


class TestPortfolioReplan:
    """solver_mode="portfolio" routes the re-solve through the racing
    portfolio; the recovered plan and the charged recovery latency are
    identical to the solo path (TTR is a budget, never a wall clock)."""

    def _replan(self, solver_mode):
        import dataclasses

        from repro.perf.cache import cache_overridden

        cell = default_corpus()[0]
        config = dataclasses.replace(cell.config, solver_mode=solver_mode)
        with cache_overridden():
            old = plan_mobius(cell.model, cell.topology, config)
            return cell, replan_after_dropout(
                cell.model,
                cell.topology,
                config,
                cell.topology.n_gpus - 1,
                old_plan_report=old,
            )

    def test_portfolio_replan_is_bit_identical_to_solo(self):
        from repro.perf.fingerprint import fingerprint

        _, solo = self._replan("solo")
        _, raced = self._replan("portfolio")
        assert (
            raced.plan_report.partition_result.partition.boundaries
            == solo.plan_report.partition_result.partition.boundaries
        )
        assert fingerprint(raced.plan_report.plan) == fingerprint(
            solo.plan_report.plan
        )
        assert solo.solver_backend == "bnb"
        assert raced.solver_backend in ("bnb", "highs")

    def test_ttr_charges_the_search_budget_not_wall_clock(self):
        cell, raced = self._replan("portfolio")
        # The charged planner latency is the deterministic MIP budget —
        # a faster realized portfolio solve must not change the modeled
        # recovery time (MOB002: no wall clock in results).
        assert raced.replan_seconds == cell.config.partition_time_limit
        assert raced.time_to_recover == (
            raced.replan_seconds + raced.migration_seconds
        )
        assert raced.solver_nodes > 0
