"""RetryPolicy edge cases: the delay schedule is a public, deterministic contract.

The serve supervisor paces worker restarts with the same policy the
simulator uses for transfer retries, so the backoff sequence must be
exact — not merely monotone.
"""

import pytest

from repro.faults.recovery import RetryPolicy


class TestValidation:
    def test_max_attempts_at_least_one(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_base_delay_non_negative(self):
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-1e-3)

    def test_growth_at_least_one(self):
        with pytest.raises(ValueError, match="growth"):
            RetryPolicy(growth=0.5)

    def test_max_delay_non_negative(self):
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(max_delay=-0.1)


class TestZeroRetryBudget:
    def test_single_attempt_has_no_delays(self):
        # max_attempts == 1: the first failure is terminal; nothing waits.
        policy = RetryPolicy(max_attempts=1)
        assert policy.delays() == ()


class TestBackoffSequence:
    def test_exponential_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, growth=2.0)
        assert policy.delays() == (0.01, 0.02, 0.04, 0.08)
        # Two constructions of the same policy agree exactly.
        assert policy.delays() == RetryPolicy(
            max_attempts=5, base_delay=0.01, growth=2.0
        ).delays()

    def test_max_delay_caps_the_tail(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.01, growth=2.0, max_delay=0.05
        )
        assert policy.delays() == (0.01, 0.02, 0.04, 0.05, 0.05)

    def test_delays_matches_backoff_ordering(self):
        # delays() is exactly backoff(1..max_attempts-1), in issue order:
        # the final failed attempt is never followed by a wait, so the
        # exhaustion path performs len(delays()) sleeps and no more.
        policy = RetryPolicy(max_attempts=4, base_delay=1e-3, max_delay=0.25)
        assert policy.delays() == tuple(
            policy.backoff(attempt) for attempt in range(1, policy.max_attempts)
        )
        assert len(policy.delays()) == policy.max_attempts - 1

    def test_flat_schedule_with_growth_one(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.5, growth=1.0)
        assert policy.delays() == (0.5, 0.5, 0.5)
