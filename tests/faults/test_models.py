"""Tests for the declarative fault models."""

import dataclasses
import math

import pytest

from repro.faults.models import (
    FaultSchedule,
    FlakyTransfers,
    GpuDropout,
    LinkDegradation,
    StragglerGpu,
    failure_coin,
)


class TestValidation:
    def test_dropout_rejects_negative_gpu(self):
        with pytest.raises(ValueError):
            GpuDropout(gpu=-1, time=1.0)

    def test_dropout_rejects_infinite_time(self):
        with pytest.raises(ValueError):
            GpuDropout(gpu=0, time=math.inf)

    @pytest.mark.parametrize("factor", [0.0, -0.1, 1.5, math.inf, math.nan])
    def test_degradation_rejects_bad_factor(self, factor):
        with pytest.raises(ValueError):
            LinkDegradation(edge=("sw0", "rc0"), factor=factor)

    def test_degradation_rejects_empty_window(self):
        with pytest.raises(ValueError):
            LinkDegradation(edge=("sw0", "rc0"), factor=0.5, start=2.0, end=2.0)

    def test_straggler_rejects_speedup(self):
        with pytest.raises(ValueError):
            StragglerGpu(gpu=0, slowdown=0.5)

    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_flaky_rejects_bad_rate(self, rate):
        with pytest.raises(ValueError):
            FlakyTransfers(failure_rate=rate)

    def test_schedule_rejects_foreign_objects(self):
        with pytest.raises(TypeError):
            FaultSchedule(0, ("not a fault",))

    def test_fault_models_are_frozen(self):
        fault = StragglerGpu(gpu=0, slowdown=2.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            fault.slowdown = 3.0


class TestSchedule:
    def test_accessors_partition_by_type(self):
        faults = (
            GpuDropout(gpu=1, time=5.0),
            LinkDegradation(edge=("sw0", "rc0"), factor=0.5),
            StragglerGpu(gpu=0, slowdown=2.0),
            FlakyTransfers(failure_rate=0.1),
        )
        schedule = FaultSchedule(7, faults)
        assert schedule.dropouts == (faults[0],)
        assert schedule.link_degradations == (faults[1],)
        assert schedule.stragglers == (faults[2],)
        assert schedule.flaky_transfers == (faults[3],)

    def test_without_flaky_keeps_hardware_faults(self):
        schedule = FaultSchedule(
            3,
            (
                FlakyTransfers(failure_rate=0.5),
                StragglerGpu(gpu=0, slowdown=2.0),
            ),
        )
        stripped = schedule.without_flaky()
        assert stripped.seed == 3
        assert stripped.flaky_transfers == ()
        assert len(stripped.stragglers) == 1

    def test_without_dropouts(self):
        schedule = FaultSchedule(0, (GpuDropout(gpu=0, time=1.0),))
        assert schedule.without_dropouts().faults == ()

    def test_compute_scale_stacks_and_windows(self):
        schedule = FaultSchedule(
            0,
            (
                StragglerGpu(gpu=0, slowdown=2.0, start=0.0, end=10.0),
                StragglerGpu(gpu=0, slowdown=3.0, start=5.0, end=10.0),
                StragglerGpu(gpu=1, slowdown=7.0),
            ),
        )
        assert schedule.compute_scale(0, 1.0) == pytest.approx(2.0)
        assert schedule.compute_scale(0, 6.0) == pytest.approx(6.0)
        assert schedule.compute_scale(0, 10.0) == 1.0  # window is half-open
        assert schedule.compute_scale(2, 1.0) == 1.0

    def test_failure_probability_composes_independently(self):
        schedule = FaultSchedule(
            0,
            (
                FlakyTransfers(failure_rate=0.5),
                FlakyTransfers(failure_rate=0.5),
            ),
        )
        assert schedule.failure_probability("param-upload", 0.0) == pytest.approx(0.75)

    def test_failure_probability_respects_kinds(self):
        schedule = FaultSchedule(
            0, (FlakyTransfers(failure_rate=0.5, kinds=("activation",)),)
        )
        assert schedule.failure_probability("activation", 0.0) == pytest.approx(0.5)
        assert schedule.failure_probability("param-upload", 0.0) == 0.0


class TestFailureCoin:
    def test_deterministic(self):
        assert failure_coin(0, "F0m0", 1) == failure_coin(0, "F0m0", 1)

    def test_in_unit_interval(self):
        for attempt in range(1, 20):
            assert 0.0 <= failure_coin(42, "up:3:pre", attempt) < 1.0

    def test_varies_with_seed_label_attempt(self):
        base = failure_coin(0, "x", 1)
        assert failure_coin(1, "x", 1) != base
        assert failure_coin(0, "y", 1) != base
        assert failure_coin(0, "x", 2) != base
