"""Tests for fault-injected execution, retries and degraded mode."""

import pytest

from repro.check.corpus import default_corpus
from repro.core.api import plan_mobius
from repro.core.pipeline import simulate_mobius
from repro.faults.models import (
    FaultSchedule,
    FlakyTransfers,
    GpuDropout,
    LinkDegradation,
    StragglerGpu,
)
from repro.faults.recovery import (
    FaultInjectingRunner,
    RetryPolicy,
    UnrecoverableTransferError,
    run_step,
)
from repro.perf.fingerprint import fingerprint


@pytest.fixture(scope="module")
def cell():
    return default_corpus()[0]


@pytest.fixture(scope="module")
def planned(cell):
    report = plan_mobius(cell.model, cell.topology, cell.config)
    return cell, report


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, growth=2.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(3) == pytest.approx(0.4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"growth": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultInjectingRunner:
    def test_rejects_dropout_schedules(self, cell):
        schedule = FaultSchedule(0, (GpuDropout(gpu=0, time=1.0),))
        with pytest.raises(ValueError, match="replan"):
            FaultInjectingRunner(cell.topology, schedule)

    def test_empty_schedule_matches_plain_runner(self, planned):
        cell, report = planned
        plain = simulate_mobius(report.plan, cell.topology, report.cost_model)
        faulted = run_step(
            report.plan, cell.topology, report.cost_model, FaultSchedule(0)
        )
        assert fingerprint(faulted.trace) == fingerprint(plain.trace)
        assert not faulted.degraded
        assert faulted.failed_attempts == ()

    def test_straggler_slows_the_step(self, planned):
        cell, report = planned
        clean = run_step(
            report.plan, cell.topology, report.cost_model, FaultSchedule(0)
        )
        # Slow the GPU running the last stage: guaranteed real compute.
        gpu = report.plan.mapping.gpu_of_stage(report.plan.n_stages - 1)
        slow = run_step(
            report.plan,
            cell.topology,
            report.cost_model,
            FaultSchedule(0, (StragglerGpu(gpu=gpu, slowdown=3.0),)),
        )
        assert slow.step_seconds > clean.step_seconds

    def test_degraded_link_slows_the_step(self, planned):
        cell, report = planned
        clean = run_step(
            report.plan, cell.topology, report.cost_model, FaultSchedule(0)
        )
        degraded = run_step(
            report.plan,
            cell.topology,
            report.cost_model,
            FaultSchedule(
                0, (LinkDegradation(edge=("sw0", "rc0"), factor=0.25),)
            ),
        )
        assert degraded.step_seconds > clean.step_seconds

    def test_flaky_transfers_retry_and_complete(self, planned):
        cell, report = planned
        step = run_step(
            report.plan,
            cell.topology,
            report.cost_model,
            FaultSchedule(0, (FlakyTransfers(failure_rate=0.08),)),
        )
        assert not step.degraded
        assert step.n_retries == len(step.failed_attempts) > 0
        assert all(f.retried for f in step.failed_attempts)

    def test_exhausted_retries_trigger_degraded_mode(self, planned):
        cell, report = planned
        step = run_step(
            report.plan,
            cell.topology,
            report.cost_model,
            FaultSchedule(0, (FlakyTransfers(failure_rate=0.95),)),
            retry_policy=RetryPolicy(max_attempts=1),
        )
        assert step.degraded
        assert step.abort_seconds > 0
        assert step.step_seconds == pytest.approx(
            step.abort_seconds + step.trace.makespan
        )
        assert any(not f.retried for f in step.failed_attempts)

    def test_unrecoverable_error_carries_context(self, planned):
        cell, report = planned
        runner = FaultInjectingRunner(
            cell.topology,
            FaultSchedule(0, (FlakyTransfers(failure_rate=0.95),)),
            retry_policy=RetryPolicy(max_attempts=1),
        )
        from repro.core.pipeline import build_mobius_tasks

        tasks = build_mobius_tasks(
            report.plan,
            cell.topology,
            report.plan.partition.stage_costs(report.cost_model),
        )
        with pytest.raises(UnrecoverableTransferError) as excinfo:
            runner.execute(tasks)
        assert excinfo.value.attempts == 1
        assert excinfo.value.label


class TestDeterminism:
    """Satellite: same seed + fault schedule => byte-identical fingerprints."""

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_identical_trace_fingerprints_across_runs(self, index):
        cell = default_corpus()[index]
        report = plan_mobius(cell.model, cell.topology, cell.config)
        schedule = FaultSchedule(
            seed=42,
            faults=(
                FlakyTransfers(failure_rate=0.1),
                StragglerGpu(gpu=0, slowdown=1.5),
                LinkDegradation(edge=("sw0", "rc0"), factor=0.5),
            ),
        )
        first = run_step(report.plan, cell.topology, report.cost_model, schedule)
        second = run_step(report.plan, cell.topology, report.cost_model, schedule)
        assert fingerprint(first.trace) == fingerprint(second.trace)
        assert first.failed_attempts == second.failed_attempts

    def test_different_seed_changes_flaky_outcomes(self):
        cell = default_corpus()[0]
        report = plan_mobius(cell.model, cell.topology, cell.config)

        def attempts(seed):
            step = run_step(
                report.plan,
                cell.topology,
                report.cost_model,
                FaultSchedule(seed, (FlakyTransfers(failure_rate=0.2),)),
            )
            return step.failed_attempts

        assert attempts(0) != attempts(1)
