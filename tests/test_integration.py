"""Cross-module integration tests: plan -> simulate -> analyse invariants."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.traffic import mobius_traffic
from repro.baselines.deepspeed import DeepSpeedConfig, run_deepspeed
from repro.core.api import MobiusConfig, plan_mobius, run_mobius
from repro.core.pipeline import simulate_mobius
from repro.hardware.gpu import RTX_3090TI
from repro.hardware.topology import commodity_server
from repro.models.spec import build_gpt_like


def small_model(n_blocks=6, hidden=1024):
    return build_gpt_like(
        f"itest-{hidden}x{n_blocks}",
        n_blocks=n_blocks,
        hidden_dim=hidden,
        n_heads=8,
        default_microbatch_size=1,
    )


CONFIG = MobiusConfig(partition_time_limit=0.5)


class TestPlanSimulateConsistency:
    @pytest.mark.parametrize("groups", [[4], [2, 2], [1, 3], [2, 1]])
    def test_simulation_tracks_estimate(self, groups):
        model = small_model()
        topology = commodity_server(groups)
        report = run_mobius(model, topology, CONFIG)
        estimate = report.plan_report.plan.estimated_step_seconds
        # The analytic estimate ignores contention, so it lower-bounds the
        # simulation loosely and never exceeds it by much.
        assert estimate <= report.step_seconds * 1.3
        assert report.step_seconds <= estimate * 3.0

    def test_traffic_matches_eq1_model(self):
        model = small_model()
        topology = commodity_server([2, 2])
        report = run_mobius(model, topology, CONFIG)
        estimate = mobius_traffic(model, 1, 4)
        measured = report.trace.total_transfer_bytes()
        # DES moves less than Eq. 1 on small models: the N resident-tail
        # stages (here a large fraction of S) skip their backward re-upload.
        assert 0.5 * estimate.total <= measured <= 1.05 * estimate.total

    def test_headline_invariant_mobius_beats_deepspeed(self):
        """The paper's core claim holds for arbitrary commodity topologies."""
        model = small_model(n_blocks=8, hidden=2048)
        for groups in ([4], [2, 2], [1, 3]):
            topology = commodity_server(groups)
            mobius = run_mobius(model, topology, CONFIG)
            ds = run_deepspeed(model, topology, DeepSpeedConfig(microbatch_size=1))
            assert ds.step_seconds > mobius.step_seconds, groups

    def test_partition_methods_are_all_feasible_end_to_end(self):
        model = small_model()
        topology = commodity_server([2, 2])
        steps = {}
        for method in ("mip", "max-stage", "min-stage"):
            report = run_mobius(
                model,
                topology,
                dataclasses.replace(CONFIG, partition_method=method),
            )
            steps[method] = report.step_seconds
        assert steps["mip"] <= min(steps.values()) * 1.001

    def test_smaller_gpu_memory_never_faster(self):
        model = small_model(n_blocks=8, hidden=2048)
        topology = commodity_server([2, 2])
        tight_gpu = dataclasses.replace(RTX_3090TI, memory_bytes=6 * 1024**3)
        tight_topo = commodity_server([2, 2], tight_gpu)
        roomy = run_mobius(model, topology, CONFIG)
        tight = run_mobius(model, tight_topo, CONFIG)
        assert tight.step_seconds >= roomy.step_seconds * 0.98


@settings(max_examples=8, deadline=None)
@given(
    n_blocks=st.integers(min_value=4, max_value=10),
    groups=st.sampled_from([[2, 2], [4], [1, 3]]),
)
def test_any_plan_simulates_cleanly(n_blocks, groups):
    """Property: planning + simulation never deadlocks and produces a
    complete compute schedule for arbitrary small models/topologies."""
    model = small_model(n_blocks=n_blocks)
    topology = commodity_server(groups)
    report = plan_mobius(model, topology, CONFIG)
    run = simulate_mobius(report.plan, topology, report.cost_model)
    costs = report.plan.partition.stage_costs(report.cost_model)
    expected_compute = sum(
        (c.fwd_seconds + c.bwd_seconds) * report.plan.n_microbatches for c in costs
    )
    assert run.trace.compute_seconds() == pytest.approx(expected_compute, rel=1e-6)
    assert run.step_seconds > 0


class TestDataCenterPath:
    def test_mobius_activations_ride_nvlink_on_dc(self):
        """On the NVLink server, inter-stage activations achieve NVLink-class
        bandwidth while stage swaps stay at PCIe rates."""
        from repro.hardware.topology import NVLINK_BW, PCIE_EFFECTIVE_BW, datacenter_server

        model = small_model(n_blocks=8, hidden=2048)
        topology = datacenter_server()
        report = run_mobius(model, topology, CONFIG)
        acts = [t for t in report.trace.transfers if t.kind == "activation"]
        uploads = [t for t in report.trace.transfers if t.kind == "param-upload"]
        assert acts and uploads
        assert max(t.bandwidth for t in acts) > PCIE_EFFECTIVE_BW * 1.5
        assert max(t.bandwidth for t in uploads) <= PCIE_EFFECTIVE_BW * 1.001
        assert max(t.bandwidth for t in acts) <= NVLINK_BW * 1.001
