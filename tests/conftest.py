"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.gpu import RTX_3090TI
from repro.hardware.topology import topo_2_2, topo_4
from repro.models.costmodel import CostModel
from repro.models.spec import build_gpt_like


@pytest.fixture
def tiny_model():
    """A small GPT-like spec (6 blocks, hidden 1024) for fast planning tests."""
    return build_gpt_like(
        "tiny", n_blocks=6, hidden_dim=1024, n_heads=8, default_microbatch_size=2
    )


@pytest.fixture
def tiny_cost_model(tiny_model):
    return CostModel(RTX_3090TI, tiny_model.default_microbatch_size)


@pytest.fixture
def topo22():
    return topo_2_2()


@pytest.fixture
def topo4():
    return topo_4()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _auto_sanitize_traces(monkeypatch):
    """Run the repro.check trace sanitizer on every simulated execution.

    Every trace any test produces through ``TaskGraphRunner.execute`` —
    Mobius, the baselines, the memory audit — is checked for causality,
    compute-exclusivity and bandwidth violations for free.  Tests exercising
    deliberately broken traces bypass this by building ``Trace`` objects
    directly instead of executing a task graph.
    """
    from repro.check.trace_check import sanitize_run
    from repro.sim.tasks import TaskGraphRunner

    original = TaskGraphRunner.execute

    def execute_and_sanitize(self, tasks, **kwargs):
        trace = original(self, tasks, **kwargs)
        report = sanitize_run(self.last_tasks, trace, self.topology)
        assert report.ok, f"simulated trace failed sanitization:\n{report.render()}"
        return trace

    monkeypatch.setattr(TaskGraphRunner, "execute", execute_and_sanitize)
