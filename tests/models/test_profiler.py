"""Tests for simulated profiling with layer similarity."""

import pytest

from repro.hardware.gpu import RTX_3090TI
from repro.models.costmodel import CostModel
from repro.models.profiler import Profiler
from repro.models.spec import build_gpt_like
from repro.models.zoo import gpt_8b, gpt_15b


@pytest.fixture
def model():
    return build_gpt_like("m", n_blocks=8, hidden_dim=512, n_heads=8)


@pytest.fixture
def profiler(model):
    return Profiler(CostModel(RTX_3090TI, 2))


class TestSimilarityCompression:
    def test_unique_layer_count(self, model, profiler):
        report = profiler.profile(model)
        assert report.n_unique_layers == 4  # embedding, block, norm, head

    def test_full_profiling_measures_every_layer(self, model, profiler):
        report = profiler.profile(model, use_similarity=False)
        assert report.n_unique_layers == model.n_layers

    def test_similarity_is_faster(self, model, profiler):
        compressed = profiler.profile(model)
        full = profiler.profile(model, use_similarity=False)
        assert compressed.profiling_seconds < full.profiling_seconds

    def test_profiling_time_scales_with_unique_layers_not_total(self):
        # Figure 12 observation: 8B and 15B profile in similar time despite
        # different layer counts, because unique-layer counts match.
        cm8 = CostModel(RTX_3090TI, 2)
        cm15 = CostModel(RTX_3090TI, 1)
        time8 = Profiler(cm8).profile(gpt_8b()).profiling_seconds
        time15 = Profiler(cm15).profile(gpt_15b()).profiling_seconds
        assert time8 == pytest.approx(time15, rel=0.25)

    def test_one_cost_per_layer(self, model, profiler):
        report = profiler.profile(model)
        assert len(report.layer_costs) == model.n_layers
        for index, cost in enumerate(report.layer_costs):
            assert cost.layer is model.layers[index]


class TestMeasurementFidelity:
    def test_zero_noise_is_exact(self, model, profiler):
        cm = profiler.cost_model
        report = profiler.profile(model)
        for index, cost in enumerate(report.layer_costs):
            truth = cm.layer_cost(model.layers[index])
            assert cost.fwd_seconds == pytest.approx(truth.fwd_seconds)
            assert cost.param_bytes == truth.param_bytes

    def test_noise_is_bounded_and_deterministic(self, model):
        cm = CostModel(RTX_3090TI, 2)
        a = Profiler(cm, noise=0.1, seed=7).profile(model)
        b = Profiler(cm, noise=0.1, seed=7).profile(model)
        for ca, cb in zip(a.layer_costs, b.layer_costs):
            assert ca.fwd_seconds == cb.fwd_seconds
        for index, cost in enumerate(a.layer_costs):
            truth = cm.layer_cost(model.layers[index])
            assert abs(cost.fwd_seconds / truth.fwd_seconds - 1.0) <= 0.1 + 1e-9

    def test_invalid_configuration_rejected(self, model):
        cm = CostModel(RTX_3090TI, 2)
        with pytest.raises(ValueError):
            Profiler(cm, measure_runs=0)
        with pytest.raises(ValueError):
            Profiler(cm, noise=1.5)

    def test_more_runs_cost_more_time(self, model):
        cm = CostModel(RTX_3090TI, 2)
        short = Profiler(cm, measure_runs=1, warmup_runs=0).profile(model)
        long = Profiler(cm, measure_runs=10, warmup_runs=5).profile(model)
        assert long.profiling_seconds > short.profiling_seconds
