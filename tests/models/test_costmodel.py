"""Tests for the analytic cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.gpu import RTX_3090TI
from repro.models.costmodel import FRAMEWORK_OVERHEAD_BYTES, CostModel
from repro.models.spec import build_gpt_like


@pytest.fixture
def model():
    return build_gpt_like("m", n_blocks=6, hidden_dim=512, n_heads=8)


@pytest.fixture
def cm():
    return CostModel(RTX_3090TI, microbatch_size=2)


class TestLayerCost:
    def test_identical_layers_share_cost(self, model, cm):
        a = cm.layer_cost(model.layers[1])
        b = cm.layer_cost(model.layers[2])
        assert a.fwd_seconds == b.fwd_seconds
        assert a.param_bytes == b.param_bytes

    def test_bwd_about_3x_fwd_with_recompute(self, model, cm):
        cost = cm.layer_cost(model.layers[1])
        assert cost.bwd_seconds == pytest.approx(3.0 * cost.fwd_seconds)

    def test_no_recompute_factor(self, model):
        cm = CostModel(RTX_3090TI, 2, recompute=False)
        cost = cm.layer_cost(model.layers[1])
        assert cost.bwd_seconds == pytest.approx(2.0 * cost.fwd_seconds)

    def test_invalid_microbatch_rejected(self):
        with pytest.raises(ValueError):
            CostModel(RTX_3090TI, 0)


class TestStageCost:
    def test_aggregates_are_sums(self, model, cm):
        whole = cm.stage_cost(model, 1, 4)
        parts = [cm.stage_cost(model, i, i + 1) for i in range(1, 4)]
        assert whole.param_bytes == sum(p.param_bytes for p in parts)
        assert whole.fwd_seconds == pytest.approx(sum(p.fwd_seconds for p in parts))
        assert whole.bwd_seconds == pytest.approx(sum(p.bwd_seconds for p in parts))

    def test_output_activation_is_last_layer(self, model, cm):
        stage = cm.stage_cost(model, 1, 4)
        last = cm.layer_cost(model.layers[3])
        assert stage.output_activation_bytes == last.activation_bytes

    def test_grads_match_params(self, model, cm):
        stage = cm.stage_cost(model, 1, 4)
        assert stage.grad_bytes == stage.param_bytes

    def test_memory_grows_with_microbatches(self, model, cm):
        stage = cm.stage_cost(model, 1, 4)
        assert stage.mem_fwd(8) > stage.mem_fwd(1)
        assert stage.mem_bwd(8) > stage.mem_bwd(1)

    def test_bwd_needs_more_than_fwd(self, model, cm):
        stage = cm.stage_cost(model, 1, 4)
        assert stage.mem_bwd(4) > stage.mem_fwd(4)

    def test_mem_peak_is_max(self, model, cm):
        stage = cm.stage_cost(model, 1, 4)
        assert stage.mem_peak(4) == max(stage.mem_fwd(4), stage.mem_bwd(4))

    def test_static_residency_16_bytes_per_param(self, model, cm):
        stage = cm.stage_cost(model, 1, 4)
        n_params = stage.param_bytes // 2
        assert stage.resident_bytes_static() == 16 * n_params

    def test_rolling_buffer_at_least_one_window(self, model, cm):
        stage = cm.stage_cost(model, 1, 2)
        cost = stage.layer_costs[0]
        assert stage.rolling_buffer_bytes() >= cost.activation_bytes

    def test_partition_boundaries_validated(self, model, cm):
        with pytest.raises(ValueError):
            cm.stage_costs_for_partition(model, [3, 3])
        with pytest.raises(ValueError):
            cm.stage_costs_for_partition(model, [5, 2])

    def test_partition_covers_model(self, model, cm):
        stages = cm.stage_costs_for_partition(model, [2, 5])
        assert sum(s.n_layers for s in stages) == model.n_layers

    def test_usable_gpu_bytes(self, cm):
        assert cm.usable_gpu_bytes() == RTX_3090TI.memory_bytes - FRAMEWORK_OVERHEAD_BYTES


@settings(max_examples=20, deadline=None)
@given(cut=st.integers(min_value=1, max_value=7))
def test_split_preserves_totals(cut):
    """Property: splitting a stage at any point preserves additive totals."""
    model = build_gpt_like("m", n_blocks=6, hidden_dim=256, n_heads=4)
    cm = CostModel(RTX_3090TI, 1)
    whole = cm.stage_cost(model, 0, 8)
    left = cm.stage_cost(model, 0, cut)
    right = cm.stage_cost(model, cut, 8)
    assert left.param_bytes + right.param_bytes == whole.param_bytes
    assert left.fwd_seconds + right.fwd_seconds == pytest.approx(whole.fwd_seconds)
    assert left.intra_activation_bytes + right.intra_activation_bytes == (
        whole.intra_activation_bytes
    )
