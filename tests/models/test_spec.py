"""Tests for model specs and the Table 3 zoo."""

import pytest

from repro.models.spec import FP16_BYTES, FP32_BYTES, LayerKind, build_gpt_like
from repro.models.zoo import (
    TABLE3_MODELS,
    gpt2_small,
    gpt_3b,
    gpt_8b,
    gpt_15b,
    gpt_51b,
    model_by_name,
)


class TestBuildGptLike:
    def test_layer_inventory(self):
        model = build_gpt_like("m", n_blocks=4, hidden_dim=64, n_heads=4)
        kinds = [layer.kind for layer in model.layers]
        assert kinds[0] == LayerKind.EMBEDDING
        assert kinds[1:5] == [LayerKind.TRANSFORMER_BLOCK] * 4
        assert kinds[5] == LayerKind.FINAL_NORM
        assert kinds[6] == LayerKind.LM_HEAD

    def test_block_param_count_formula(self):
        h = 128
        model = build_gpt_like("m", n_blocks=1, hidden_dim=h, n_heads=4)
        block = model.layers[1]
        assert block.param_count == 12 * h * h + 13 * h

    def test_param_bytes_precisions(self):
        model = build_gpt_like("m", n_blocks=2, hidden_dim=64, n_heads=4)
        assert model.param_bytes(FP32_BYTES) == 2 * model.param_bytes(FP16_BYTES)

    def test_activation_scales_with_microbatch(self):
        model = build_gpt_like("m", n_blocks=1, hidden_dim=64, n_heads=4)
        block = model.layers[1]
        assert block.activation_bytes(4) == 4 * block.activation_bytes(1)

    def test_without_embedding(self):
        model = build_gpt_like("m", n_blocks=2, hidden_dim=64, n_heads=4, include_embedding=False)
        assert model.layers[0].kind == LayerKind.TRANSFORMER_BLOCK

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            build_gpt_like("m", n_blocks=0, hidden_dim=64, n_heads=4)
        with pytest.raises(ValueError):
            build_gpt_like("m", n_blocks=1, hidden_dim=4, n_heads=8)

    def test_bwd_flops_recompute_factor(self):
        model = build_gpt_like("m", n_blocks=1, hidden_dim=64, n_heads=4)
        block = model.layers[1]
        assert block.bwd_flops(1, recompute=True) == pytest.approx(
            3.0 * block.fwd_flops(1)
        )
        assert block.bwd_flops(1, recompute=False) == pytest.approx(
            2.0 * block.fwd_flops(1)
        )

    def test_layer_range_validation(self):
        model = build_gpt_like("m", n_blocks=2, hidden_dim=64, n_heads=4)
        assert len(model.layer_range(0, 2)) == 2
        with pytest.raises(ValueError):
            model.layer_range(2, 2)
        with pytest.raises(ValueError):
            model.layer_range(0, 99)


class TestSimilarityGroups:
    def test_blocks_share_one_group(self):
        model = build_gpt_like("m", n_blocks=10, hidden_dim=64, n_heads=4)
        groups = model.similarity_groups()
        # embedding, blocks, final norm, head.
        assert len(groups) == 4
        block_group = groups[(LayerKind.TRANSFORMER_BLOCK, 64, 4)]
        assert len(block_group) == 10

    def test_groups_cover_all_layers(self):
        model = gpt_8b()
        groups = model.similarity_groups()
        members = sorted(i for group in groups.values() for i in group)
        assert members == list(range(model.n_layers))


class TestTable3:
    @pytest.mark.parametrize(
        "factory, billions, heads, hidden, blocks, mbs",
        [
            (gpt_3b, 3, 32, 2048, 64, 2),
            (gpt_8b, 8, 32, 4096, 40, 2),
            (gpt_15b, 15, 64, 5120, 40, 1),
            (gpt_51b, 51, 80, 9216, 50, 1),
        ],
    )
    def test_shapes(self, factory, billions, heads, hidden, blocks, mbs):
        model = factory()
        assert model.n_heads == heads
        assert model.hidden_dim == hidden
        assert model.seq_len == 512
        assert model.default_microbatch_size == mbs
        n_blocks = sum(
            1 for l in model.layers if l.kind == LayerKind.TRANSFORMER_BLOCK
        )
        assert n_blocks == blocks
        # Parameter count lands near the nominal size (within 20%).
        assert model.param_count == pytest.approx(billions * 1e9, rel=0.20)

    def test_zoo_ordering(self):
        sizes = [m.param_count for m in TABLE3_MODELS()]
        assert sizes == sorted(sizes)

    def test_model_by_name(self):
        assert model_by_name("15B").name == "GPT-15B"
        assert model_by_name("gpt-8b").name == "GPT-8B"
        with pytest.raises(KeyError):
            model_by_name("99B")

    def test_gpt2_small_shape(self):
        model = gpt2_small()
        assert model.hidden_dim == 768
        assert model.param_count == pytest.approx(124e6, rel=0.35)

    def test_dram_footprint_fits_paper_server(self):
        # The paper's server has 1.5 TB DRAM; the 51B model must fit.
        assert gpt_51b().dram_footprint_bytes() < 1.5e12


class TestViTBuilder:
    def test_vit_layer_inventory(self):
        from repro.models.spec import build_vit_like

        model = build_vit_like("v", n_blocks=4, hidden_dim=256, n_heads=8)
        kinds = [l.kind for l in model.layers]
        assert kinds[0] == LayerKind.EMBEDDING
        assert kinds[-1] == LayerKind.LM_HEAD
        assert kinds[1:-1] == [LayerKind.TRANSFORMER_BLOCK] * 4

    def test_vit_sequence_from_patch_grid(self):
        from repro.models.spec import build_vit_like

        model = build_vit_like(
            "v", n_blocks=1, hidden_dim=64, n_heads=4, image_size=224, patch_size=16
        )
        assert model.seq_len == 14 * 14 + 1

    def test_vit_patch_divisibility(self):
        from repro.models.spec import build_vit_like

        with pytest.raises(ValueError):
            build_vit_like("v", n_blocks=1, hidden_dim=64, n_heads=4, patch_size=15)

    def test_vit_huge_preset(self):
        from repro.models.zoo import vit_huge

        model = vit_huge()
        assert model.param_count == pytest.approx(632e6, rel=0.05)
        assert model_by_name("vit-h").name == "ViT-Huge"

    def test_vit_plans_and_simulates(self):
        from repro.core.api import MobiusConfig, run_mobius
        from repro.hardware.topology import topo_2_2
        from repro.models.spec import build_vit_like

        model = build_vit_like("v", n_blocks=6, hidden_dim=512, n_heads=8)
        report = run_mobius(
            model, topo_2_2(), MobiusConfig(partition_time_limit=0.5)
        )
        assert report.step_seconds > 0
