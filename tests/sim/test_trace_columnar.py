"""Columnar trace storage: cache tokens, kind interning, spill, pickling.

The storage rewrite (DESIGN.md §12) must be invisible through the public
``Trace`` API: the ``compute``/``transfers`` views behave like the
historical span lists, ``__mobius_fingerprint__`` is byte-identical
(including the Python numeric type of transfer byte counts), and every
derived cache invalidates on mutation via the store's generation counter —
never via the ``(id, len)`` token whose collisions these tests pin down.
"""

import pickle

import numpy as np
import pytest

from repro.perf.fingerprint import fingerprint
from repro.sim.trace import ComputeSpan, Trace, TransferSpan


def make_trace(*, spill_dir=None, spill_chunk=1 << 18) -> Trace:
    trace = Trace(2, spill_dir=spill_dir, spill_chunk=spill_chunk)
    trace.add_compute(0, 0.0, 1.0, "fwd0")
    trace.add_compute(1, 0.5, 2.0, "fwd1")
    trace.add_transfer(0, 0.0, 0.5, 4_000_000, "param-upload", "w0")
    trace.add_transfer(1, 1.0, 1.5, 2_000_000, "grad-offload", "g1")
    trace.add_transfer(0, 1.5, 2.5, 1_000_000, "param-upload", "w2")
    return trace


class TestGenerationToken:
    """Satellite: caches key on a generation counter, not ``(id, len)``."""

    def test_append_invalidates_columns(self):
        trace = make_trace()
        before = trace._transfer_columns()
        assert len(before["nbytes"]) == 3
        trace.add_transfer(1, 2.0, 3.0, 500, "param-upload")
        after = trace._transfer_columns()
        assert len(after["nbytes"]) == 4
        assert after["nbytes"][-1] == 500

    def test_same_length_replacement_not_served_stale(self):
        """The ``(id(list), len(list))`` collision the old token allowed:
        replacing the spans with a same-length set must refresh every view.
        """
        trace = make_trace()
        assert trace.total_transfer_bytes() == 7_000_000
        trace.transfers = [
            TransferSpan(0, 0.0, 1.0, 10.0, "param-upload"),
            TransferSpan(0, 1.0, 2.0, 20.0, "param-upload"),
            TransferSpan(0, 2.0, 3.0, 30.0, "param-upload"),
        ]
        assert trace.total_transfer_bytes() == 60.0
        assert trace.total_transfer_bytes(kinds=("param-upload",)) == 60.0

    def test_view_append_invalidates_kind_masks(self):
        trace = make_trace()
        assert trace.total_transfer_bytes(kinds=("grad-offload",)) == 2_000_000
        trace.transfers.append(TransferSpan(0, 3.0, 4.0, 8, "grad-offload"))
        assert trace.total_transfer_bytes(kinds=("grad-offload",)) == 2_000_008

    def test_materialized_spans_refresh_after_append(self):
        trace = make_trace()
        assert len(list(trace.transfers)) == 3
        trace.transfers.append(TransferSpan(0, 3.0, 4.0, 8, "x"))
        assert len(list(trace.transfers)) == 4
        assert trace.transfers[-1].nbytes == 8


class TestKindInterning:
    """Satellite: per-kind cached masks replace the membership loop."""

    def test_mask_matches_kinds(self):
        trace = make_trace()
        mask = trace._kind_mask(("param-upload",))
        assert mask.tolist() == [True, False, True]
        both = trace._kind_mask(("param-upload", "grad-offload"))
        assert both.tolist() == [True, True, True]

    def test_unknown_kind_selects_nothing(self):
        trace = make_trace()
        assert trace._kind_mask(("allgather",)).tolist() == [False, False, False]
        assert trace.total_transfer_bytes(kinds=("allgather",)) == 0.0

    def test_mask_cache_reused_within_generation(self):
        trace = make_trace()
        first = trace._kind_mask(("param-upload",))
        second = trace._kind_mask(("param-upload",))
        assert first is second or np.array_equal(first, second)

    def test_kinds_survive_pickle(self):
        trace = make_trace()
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.total_transfer_bytes(kinds=("grad-offload",)) == 2_000_000
        assert [span.kind for span in clone.transfers] == [
            "param-upload",
            "grad-offload",
            "param-upload",
        ]


class TestNumericTypePreservation:
    """Transfer byte counts round-trip the float64 column with their
    original Python type — the fingerprint encoding distinguishes int from
    float, and the pinned corpus fingerprints carry ints from the task layer.
    """

    def test_int_nbytes_materializes_as_int(self):
        trace = Trace(1)
        trace.add_transfer(0, 0.0, 1.0, 12345, "k")
        span = trace.transfers[0]
        assert type(span.nbytes) is int and span.nbytes == 12345

    def test_float_nbytes_materializes_as_float(self):
        trace = Trace(1)
        trace.add_transfer(0, 0.0, 1.0, 12345.0, "k")
        span = trace.transfers[0]
        assert type(span.nbytes) is float

    def test_fingerprint_distinguishes_int_from_float_bytes(self):
        int_trace, float_trace = Trace(1), Trace(1)
        int_trace.add_transfer(0, 0.0, 1.0, 7, "k")
        float_trace.add_transfer(0, 0.0, 1.0, 7.0, "k")
        assert fingerprint(int_trace) != fingerprint(float_trace)

    def test_pickle_preserves_numeric_type(self):
        trace = Trace(1)
        trace.add_transfer(0, 0.0, 1.0, 7, "k")
        trace.add_transfer(0, 1.0, 2.0, 7.5, "k")
        clone = pickle.loads(pickle.dumps(trace))
        assert fingerprint(clone) == fingerprint(trace)
        assert type(clone.transfers[0].nbytes) is int
        assert type(clone.transfers[1].nbytes) is float


class TestColumnarDigest:
    def test_equal_traces_equal_digests(self):
        assert make_trace().columnar_digest() == make_trace().columnar_digest()

    def test_any_field_changes_digest(self):
        base = make_trace().columnar_digest()
        changed = make_trace()
        changed.add_compute(0, 5.0, 6.0)
        assert changed.columnar_digest() != base

    def test_label_changes_digest(self):
        a, b = Trace(1), Trace(1)
        a.add_compute(0, 0.0, 1.0, "x")
        b.add_compute(0, 0.0, 1.0, "y")
        assert a.columnar_digest() != b.columnar_digest()


class TestSpillToDisk:
    def test_spilled_trace_matches_in_memory(self, tmp_path):
        plain = Trace(2)
        spilled = Trace(2, spill_dir=tmp_path / "seg", spill_chunk=4)
        for trace in (plain, spilled):
            for i in range(11):
                trace.add_transfer(i % 2, float(i), i + 1.0, 100 + i, "k", f"t{i}")
                trace.add_compute(i % 2, float(i), i + 0.5, f"c{i}")
        assert (tmp_path / "seg").exists()  # chunks actually sealed
        assert spilled.columnar_digest() == plain.columnar_digest()
        assert fingerprint(spilled) == fingerprint(plain)
        assert list(spilled.transfers) == list(plain.transfers)
        assert spilled.total_transfer_bytes() == plain.total_transfer_bytes()
        assert spilled.makespan == plain.makespan

    def test_spilled_trace_pickles_self_contained(self, tmp_path):
        spilled = Trace(1, spill_dir=tmp_path / "seg", spill_chunk=2)
        for i in range(7):
            spilled.add_transfer(0, float(i), i + 1.0, i, "k")
        clone = pickle.loads(pickle.dumps(spilled))
        # The clone must not depend on the segment files.
        for path in sorted((tmp_path / "seg").glob("*.npz")):
            path.unlink()
        assert clone.columnar_digest() == spilled.columnar_digest()

    def test_invalid_spill_chunk_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="spill_chunk"):
            Trace(1, spill_dir=tmp_path, spill_chunk=0)


class TestViewListBehavior:
    """The historical list API the rest of the codebase (and tests) use."""

    def test_equality_against_lists_and_views(self):
        trace = make_trace()
        spans = [
            ComputeSpan(0, 0.0, 1.0, "fwd0"),
            ComputeSpan(1, 0.5, 2.0, "fwd1"),
        ]
        assert trace.compute == spans
        assert trace.compute == make_trace().compute
        assert not (trace.compute == spans[:1])

    def test_slicing_and_indexing(self):
        trace = make_trace()
        assert trace.transfers[0].kind == "param-upload"
        assert [s.label for s in trace.transfers[1:]] == ["g1", "w2"]

    def test_setter_replaces_contents(self):
        trace = make_trace()
        trace.compute = [ComputeSpan(0, 0.0, 0.5)]
        assert len(trace.compute) == 1
        assert trace.makespan == 2.5  # transfers untouched

    def test_views_unhashable_like_lists(self):
        with pytest.raises(TypeError):
            hash(make_trace().compute)

    def test_invalid_spans_rejected(self):
        trace = Trace(1)
        with pytest.raises(ValueError, match="ends before"):
            trace.add_compute(0, 2.0, 1.0)
        with pytest.raises(ValueError, match="non-finite"):
            trace.add_compute(0, float("nan"), 1.0)
        with pytest.raises(ValueError, match="byte count"):
            trace.add_transfer(0, 0.0, 1.0, -5, "k")
