"""Tests for compute units and the bandwidth-shared flow network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.topology import commodity_server, topo_2_2, topo_4
from repro.sim.engine import Simulator
from repro.sim.resources import ComputeUnit, FlowNetwork

GB = 1e9
PCIE = 13.1 * GB


def run_flows(topology, flows):
    """Start all flows at t=0; returns dict flow_index -> completion time."""
    sim = Simulator()
    network = FlowNetwork(sim, topology)
    done = {}
    for index, (path, nbytes, priority) in enumerate(flows):
        network.start_flow(
            path, nbytes, (lambda i=index: done.__setitem__(i, sim.now)), priority=priority
        )
    sim.run()
    return done


class TestComputeUnit:
    def test_serial_fifo(self):
        sim = Simulator()
        unit = ComputeUnit(sim, "gpu0")
        ends = []
        unit.submit(1.0, lambda: ends.append(sim.now))
        unit.submit(2.0, lambda: ends.append(sim.now))
        sim.run()
        assert ends == [1.0, 3.0]

    def test_busy_seconds_accumulate(self):
        sim = Simulator()
        unit = ComputeUnit(sim, "gpu0")
        unit.submit(1.5, lambda: None)
        unit.submit(0.5, lambda: None)
        sim.run()
        assert unit.busy_seconds == pytest.approx(2.0)

    def test_zero_length_task(self):
        sim = Simulator()
        unit = ComputeUnit(sim, "gpu0")
        fired = []
        unit.submit(0.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]

    def test_negative_duration_rejected(self):
        unit = ComputeUnit(Simulator(), "gpu0")
        with pytest.raises(ValueError):
            unit.submit(-1.0, lambda: None)

    def test_submission_during_execution_queues(self):
        sim = Simulator()
        unit = ComputeUnit(sim, "gpu0")
        ends = []

        def first_done():
            ends.append(sim.now)
            unit.submit(1.0, lambda: ends.append(sim.now))

        unit.submit(1.0, first_done)
        sim.run()
        assert ends == [1.0, 2.0]


class TestFlowTiming:
    def test_single_flow_at_link_bandwidth(self):
        topo = topo_2_2()
        done = run_flows(topo, [(topo.path_from_dram(0), PCIE, 0)])
        assert done[0] == pytest.approx(1.0, rel=1e-6)

    def test_two_flows_same_rc_halve(self):
        topo = topo_4()
        flows = [(topo.path_from_dram(g), PCIE, 0) for g in (0, 1)]
        done = run_flows(topo, flows)
        assert done[0] == pytest.approx(2.0, rel=1e-6)
        assert done[1] == pytest.approx(2.0, rel=1e-6)

    def test_flows_on_different_rcs_do_not_contend(self):
        topo = topo_2_2()
        flows = [(topo.path_from_dram(0), PCIE, 0), (topo.path_from_dram(2), PCIE, 0)]
        done = run_flows(topo, flows)
        assert done[0] == pytest.approx(1.0, rel=1e-6)
        assert done[1] == pytest.approx(1.0, rel=1e-6)

    def test_upload_and_download_full_duplex(self):
        topo = topo_2_2()
        flows = [(topo.path_from_dram(0), PCIE, 0), (topo.path_to_dram(0), PCIE, 0)]
        done = run_flows(topo, flows)
        assert done[0] == pytest.approx(1.0, rel=1e-6)
        assert done[1] == pytest.approx(1.0, rel=1e-6)

    def test_released_bandwidth_reassigned(self):
        # Short and long flow share a link: after the short one finishes,
        # the long one speeds up. 0.5 + ((2-1)/13.1GB remaining at full).
        topo = topo_4()
        flows = [
            (topo.path_from_dram(0), 0.5 * PCIE, 0),
            (topo.path_from_dram(1), 1.0 * PCIE, 0),
        ]
        done = run_flows(topo, flows)
        assert done[0] == pytest.approx(1.0, rel=1e-6)
        assert done[1] == pytest.approx(1.5, rel=1e-6)

    def test_zero_byte_flow_completes_instantly(self):
        topo = topo_2_2()
        done = run_flows(topo, [(topo.path_from_dram(0), 0.0, 0)])
        assert done[0] == 0.0

    def test_empty_path_completes_instantly(self):
        done = run_flows(topo_2_2(), [((), 123.0, 0)])
        assert done[0] == 0.0

    def test_negative_bytes_rejected(self):
        topo = topo_2_2()
        network = FlowNetwork(Simulator(), topo)
        with pytest.raises(ValueError):
            network.start_flow(topo.path_from_dram(0), -1.0, lambda: None)

    def test_tiny_residue_terminates(self):
        # Regression: sub-byte float residues used to livelock the loop.
        topo = topo_4()
        flows = [
            (topo.path_from_dram(0), PCIE / 3.0, 0),
            (topo.path_from_dram(1), PCIE / 7.0, 0),
            (topo.path_from_dram(2), PCIE / 11.0, 0),
        ]
        done = run_flows(topo, flows)
        assert len(done) == 3


class TestPriorities:
    def test_high_priority_preempts(self):
        topo = topo_4()
        flows = [
            (topo.path_from_dram(0), PCIE, 1),
            (topo.path_from_dram(1), PCIE, 0),
        ]
        done = run_flows(topo, flows)
        assert done[0] == pytest.approx(1.0, rel=1e-6)  # full bandwidth
        assert done[1] == pytest.approx(2.0, rel=1e-6)  # waits, then full

    def test_equal_priority_shares(self):
        topo = topo_4()
        flows = [(topo.path_from_dram(g), PCIE, 5) for g in (0, 1)]
        done = run_flows(topo, flows)
        assert done[0] == pytest.approx(2.0, rel=1e-6)

    def test_low_priority_uses_leftover(self):
        # High-priority flow only on one link; low-priority elsewhere runs
        # at full speed.
        topo = topo_2_2()
        flows = [
            (topo.path_from_dram(0), PCIE, 1),
            (topo.path_from_dram(2), PCIE, 0),
        ]
        done = run_flows(topo, flows)
        assert done[1] == pytest.approx(1.0, rel=1e-6)


class TestBandwidthScale:
    def test_persistent_scale_halves_rate(self):
        topo = topo_2_2()
        sim = Simulator()
        network = FlowNetwork(sim, topo)
        network.set_bandwidth_scale(("sw0", "rc0"), 0.5)
        done = {}
        network.start_flow(
            topo.path_to_dram(0), PCIE, lambda: done.setdefault(0, sim.now)
        )
        sim.run()
        assert done[0] == pytest.approx(2.0, rel=1e-6)

    def test_windowed_scale_applies_and_clears(self):
        # Degraded at half bandwidth for [0, 1): after 1s the flow has moved
        # 0.5*PCIE bytes, the rest completes at full rate -> 1.5s total.
        topo = topo_2_2()
        sim = Simulator()
        network = FlowNetwork(sim, topo)
        network.set_bandwidth_scale(("sw0", "rc0"), 0.5, start=0.0, end=1.0)
        done = {}
        network.start_flow(
            topo.path_to_dram(0), PCIE, lambda: done.setdefault(0, sim.now)
        )
        sim.run()
        assert done[0] == pytest.approx(1.5, rel=1e-6)

    def test_future_start_leaves_link_nominal_until_then(self):
        # Degradation starts at t=2.0, after the 1s flow already finished.
        topo = topo_2_2()
        sim = Simulator()
        network = FlowNetwork(sim, topo)
        network.set_bandwidth_scale(("sw0", "rc0"), 0.25, start=2.0)
        done = {}
        network.start_flow(
            topo.path_to_dram(0), PCIE, lambda: done.setdefault(0, sim.now)
        )
        sim.run()
        assert done[0] == pytest.approx(1.0, rel=1e-6)

    def test_mid_flight_reallocation(self):
        # The link degrades while the flow is in flight: 0.5s at full rate
        # moves half the bytes, the other half at quarter rate takes 2s.
        topo = topo_2_2()
        sim = Simulator()
        network = FlowNetwork(sim, topo)
        network.set_bandwidth_scale(("sw0", "rc0"), 0.25, start=0.5)
        done = {}
        network.start_flow(
            topo.path_to_dram(0), PCIE, lambda: done.setdefault(0, sim.now)
        )
        sim.run()
        assert done[0] == pytest.approx(2.5, rel=1e-6)

    def test_unknown_edge_rejected(self):
        network = FlowNetwork(Simulator(), topo_2_2())
        with pytest.raises(KeyError):
            network.set_bandwidth_scale(("gpu0", "dram"), 0.5)

    @pytest.mark.parametrize("factor", [0.0, -0.5, float("inf"), float("nan")])
    def test_bad_factor_rejected(self, factor):
        network = FlowNetwork(Simulator(), topo_2_2())
        with pytest.raises(ValueError):
            network.set_bandwidth_scale(("sw0", "rc0"), factor)

    def test_empty_window_rejected(self):
        network = FlowNetwork(Simulator(), topo_2_2())
        with pytest.raises(ValueError):
            network.set_bandwidth_scale(("sw0", "rc0"), 0.5, start=2.0, end=2.0)

    def test_effective_bandwidth_reports_scale(self):
        topo = topo_2_2()
        network = FlowNetwork(Simulator(), topo)
        edge = ("sw0", "rc0")
        assert network.effective_bandwidth(edge) == topo.bandwidth_of(edge)
        network.set_bandwidth_scale(edge, 0.5)
        assert network.effective_bandwidth(edge) == pytest.approx(
            0.5 * topo.bandwidth_of(edge)
        )


class TestOverlappingScaleWindows:
    """Regression: windows used to occupy one scale slot per edge, so the
    earlier window's end event cleared the later window's factor too.
    Factors now stack multiplicatively and each window removes only its own.
    """

    def test_overlapping_windows_compose_and_outlive_each_other(self):
        # A: 0.5x on [0, 1); B: 0.5x on [0.5, 2).  One PCIE-sized flow:
        #   [0, 0.5)  0.5x   -> 0.25  of the bytes
        #   [0.5, 1)  0.25x  -> 0.125 (factors multiply while overlapped)
        #   [1, 2)    0.5x   -> 0.5   (A ended; B must survive its clear)
        #   remaining 0.125 at full rate -> done at t = 2.125.
        # Under the old bug A's end reset the link to nominal (1.625s).
        topo = topo_2_2()
        sim = Simulator()
        network = FlowNetwork(sim, topo)
        network.set_bandwidth_scale(("sw0", "rc0"), 0.5, start=0.0, end=1.0)
        network.set_bandwidth_scale(("sw0", "rc0"), 0.5, start=0.5, end=2.0)
        done = {}
        network.start_flow(
            topo.path_to_dram(0), PCIE, lambda: done.setdefault(0, sim.now)
        )
        sim.run()
        assert done[0] == pytest.approx(2.125, rel=1e-6)

    def test_nested_window_restores_outer_factor(self):
        # B: 0.5x on [1, 2) nested inside A: 0.5x on [0, 4).  When B ends
        # the link must return to A's factor, not to nominal.
        topo = topo_2_2()
        sim = Simulator()
        network = FlowNetwork(sim, topo)
        edge = ("sw0", "rc0")
        nominal = topo.bandwidth_of(edge)
        network.set_bandwidth_scale(edge, 0.5, start=0.0, end=4.0)
        network.set_bandwidth_scale(edge, 0.5, start=1.0, end=2.0)
        probes = {}
        for at in (0.5, 1.5, 3.0, 5.0):
            sim.schedule_at(
                at,
                lambda at=at: probes.__setitem__(
                    at, network.effective_bandwidth(edge)
                ),
            )
        sim.run()
        assert probes[0.5] == pytest.approx(0.5 * nominal)
        assert probes[1.5] == pytest.approx(0.25 * nominal)
        assert probes[3.0] == pytest.approx(0.5 * nominal)
        assert probes[5.0] == pytest.approx(nominal)

    def test_overlapping_link_degradation_faults(self):
        # The same composition through faults.models.LinkDegradation, the
        # production producer of overlapping windows (chaos schedules).
        from repro.faults.models import FaultSchedule, LinkDegradation
        from repro.faults.recovery import FaultInjectingRunner

        topo = topo_2_2()
        schedule = FaultSchedule(
            0,
            (
                LinkDegradation(("sw0", "rc0"), 0.5, start=0.0, end=1.0),
                LinkDegradation(("sw0", "rc0"), 0.5, start=0.5, end=2.0),
            ),
        )
        runner = FaultInjectingRunner(topo, schedule)
        done = {}
        runner.network.start_flow(
            topo.path_to_dram(0),
            PCIE,
            lambda: done.setdefault(0, runner.sim.now),
        )
        runner.sim.run()
        assert done[0] == pytest.approx(2.125, rel=1e-6)


class TestBusySecondsAccrual:
    """Regression: ``busy_seconds`` was credited in full when a task
    *started*, so a paused simulation over-reported utilisation.  It now
    accrues on completion and pro-rates the in-flight task at ``run(until=)``.
    """

    def test_in_flight_task_pro_rated_at_pause(self):
        sim = Simulator()
        unit = ComputeUnit(sim, "gpu0")
        unit.submit(2.0, lambda: None)
        sim.run(until=0.75)
        assert unit.busy_seconds == pytest.approx(0.75)
        sim.run()
        assert unit.busy_seconds == pytest.approx(2.0)

    def test_not_credited_before_work_happens(self):
        sim = Simulator()
        unit = ComputeUnit(sim, "gpu0")
        unit.submit(5.0, lambda: None)
        assert unit.busy_seconds == 0.0
        sim.run(until=0.0)
        assert unit.busy_seconds == 0.0

    def test_queued_tasks_not_counted_while_waiting(self):
        sim = Simulator()
        unit = ComputeUnit(sim, "gpu0")
        unit.submit(1.0, lambda: None)
        unit.submit(1.0, lambda: None)
        sim.run(until=1.5)
        # First task finished (1.0), second is half-way (0.5).
        assert unit.busy_seconds == pytest.approx(1.5)


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(
        st.floats(min_value=1e6, max_value=5e10), min_size=1, max_size=6
    ),
    gpus=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=6),
)
def test_makespan_bounded_by_capacity(sizes, gpus):
    """Property: completion time is at least volume/capacity on the most
    loaded edge, and at most total volume over the slowest link (full
    serialisation)."""
    if len(sizes) != len(gpus):
        sizes = sizes[: len(gpus)]
        gpus = gpus[: len(sizes)]
    topo = topo_2_2()
    flows = [(topo.path_from_dram(g), s, 0) for g, s in zip(gpus, sizes)]
    done = run_flows(topo, flows)
    makespan = max(done.values())
    # Lower bound: most loaded directed edge.
    edge_load: dict = {}
    for path, nbytes, _ in flows:
        for edge in path:
            edge_load[edge] = edge_load.get(edge, 0.0) + nbytes
    lower = max(load / topo.bandwidth_of(edge) for edge, load in edge_load.items())
    upper = sum(sizes) / min(
        topo.path_bandwidth(topo.path_from_dram(g)) for g in set(gpus)
    )
    assert makespan >= lower * (1 - 1e-6)
    assert makespan <= upper * (1 + 1e-6) + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1e6, max_value=2e10), min_size=1, max_size=5),
    priorities=st.lists(st.integers(min_value=-1, max_value=2), min_size=1, max_size=5),
)
def test_all_flows_complete_regardless_of_priorities(sizes, priorities):
    """Property: every flow eventually completes (no starvation), even with
    arbitrary priority mixes, and completion order respects work ordering
    on a single shared link."""
    k = min(len(sizes), len(priorities))
    topo = topo_4()
    flows = [
        (topo.path_from_dram(i % 4), sizes[i], priorities[i]) for i in range(k)
    ]
    done = run_flows(topo, flows)
    assert len(done) == k
    assert all(t > 0 or sizes[i] == 0 for i, t in done.items())
