"""Batched-vs-single dispatch equivalence (DESIGN.md §12).

``Simulator.run_batched`` is the production hot path; ``Simulator.run`` is
the one-event-at-a-time oracle.  The contract is *exact* equivalence:
identical firing order, clock trajectory, ``events_processed`` count and —
through the task layer — bit-identical trace fingerprints.  These tests
drive both loops with

* a seeded fuzz harness generating adversarial schedules (timestamp ties,
  nested same-time scheduling, cancellations from inside cohorts, ``until``
  boundaries, handle-free ``schedule_call`` entries), and
* the real workloads: every corpus cell, a faulted chaos execution, and
  the synthetic datacenter workload.
"""

import random

import pytest

from repro.perf.fingerprint import fingerprint
from repro.sim.engine import Simulator


def _drive(seed: int, mode: str, until: float | None = None):
    """Run one randomly generated schedule; returns (log, now, events).

    The generator consumes ``rng`` inside callbacks, so draws stay aligned
    between modes exactly when the firing order does — any divergence
    snowballs into a log mismatch, which is the point.
    """
    sim = Simulator()
    rng = random.Random(seed)
    log: list[tuple[int, float]] = []
    handles: list = []
    tags = iter(range(10**6))

    def spawn(depth: int) -> None:
        tag = next(tags)
        # Coarse delay grid: collisions (equal-timestamp cohorts) are the
        # interesting case, so make them overwhelmingly likely.
        delay = rng.choice((0.0, 0.0, 0.25, 0.25, 0.5, 1.0))

        def callback() -> None:
            log.append((tag, sim.now))
            if depth < 3:
                for _ in range(rng.randrange(3)):
                    spawn(depth + 1)
            if handles and rng.random() < 0.4:
                # May hit an already-popped cohort member scheduled at this
                # very timestamp — dispatch-time re-checking must suppress it.
                rng.choice(handles).cancel()

        if rng.random() < 0.25:
            sim.schedule_call(delay, callback)
        else:
            handles.append(sim.schedule(delay, callback))

    for _ in range(40):
        spawn(0)
    for _ in range(5):
        rng.choice(handles).cancel()

    runner = sim.run_batched if mode == "batched" else sim.run
    if until is None:
        runner()
    else:
        runner(until=until)
        runner()  # resume to drain; the boundary must not skew state
    return log, sim.now, sim.events_processed


class TestFuzzEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_full_run_identical(self, seed):
        assert _drive(seed, "single") == _drive(seed, "batched")

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("until", [0.0, 0.25, 0.6, 1.75])
    def test_run_until_boundary_identical(self, seed, until):
        assert _drive(seed, "single", until) == _drive(seed, "batched", until)


class TestCohortSemantics:
    """Deterministic reductions of the tricky cohort cases."""

    @pytest.mark.parametrize("mode", ["single", "batched"])
    def test_cohort_member_cancels_later_member(self, mode):
        # The canceller is scheduled first (smaller tie-break counter), so
        # it fires first and must suppress its same-timestamp victim even
        # though the batched loop already popped both into the cohort.
        sim = Simulator()
        fired = []
        victim = {}
        sim.schedule(1.0, lambda: (fired.append("canceller"), victim["h"].cancel()))
        victim["h"] = sim.schedule(1.0, lambda: fired.append("victim"))
        runner = sim.run_batched if mode == "batched" else sim.run
        runner()
        assert fired == ["canceller"]
        assert sim.events_processed == 1

    @pytest.mark.parametrize("mode", ["single", "batched"])
    def test_same_time_events_scheduled_from_cohort_join_in_order(self, mode):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(0.0, lambda: fired.append("child-a"))
            sim.schedule_call(0.0, lambda: fired.append("child-b"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: fired.append("second"))
        runner = sim.run_batched if mode == "batched" else sim.run
        runner()
        assert fired == ["first", "second", "child-a", "child-b"]
        assert sim.now == 1.0

    def test_all_cancelled_cohort_leaves_clock_alone(self):
        """A fully dead cohort must not advance `now` in either loop."""
        for runner_name in ("run", "run_batched"):
            sim = Simulator()
            handle = sim.schedule(5.0, lambda: None)
            handle.cancel()
            getattr(sim, runner_name)()
            assert sim.now == 0.0
            assert sim.events_processed == 0

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_batched()
        with pytest.raises(ValueError, match="backwards"):
            sim.run_batched(until=0.5)


class TestWorkloadEquivalence:
    """The end-to-end contract: bit-identical traces on real workloads."""

    @pytest.mark.parametrize("index", [0, 3])
    def test_corpus_cells_identical_fingerprints(self, index):
        from repro.check.corpus import default_corpus
        from repro.core.api import plan_mobius
        from repro.core.pipeline import build_mobius_tasks
        from repro.sim.tasks import TaskGraphRunner

        cell = default_corpus()[index]
        report = plan_mobius(cell.model, cell.topology, cell.config)
        stage_costs = report.plan.partition.stage_costs(report.cost_model)

        outcomes = {}
        for mode in ("single", "batched"):
            tasks = build_mobius_tasks(
                report.plan,
                cell.topology,
                stage_costs,
                prefetch=cell.config.prefetch,
                use_priorities=cell.config.use_priorities,
            )
            runner = TaskGraphRunner(cell.topology, dispatch=mode)
            trace = runner.execute(tasks)
            outcomes[mode] = (
                fingerprint(trace),
                trace.columnar_digest(),
                runner.sim.events_processed,
            )
        assert outcomes["single"] == outcomes["batched"]

    def test_chaos_execution_identical_fingerprints(self):
        from repro.check.corpus import default_corpus
        from repro.core.api import plan_mobius
        from repro.core.pipeline import build_mobius_tasks
        from repro.faults.models import (
            FaultSchedule,
            FlakyTransfers,
            LinkDegradation,
            StragglerGpu,
        )
        from repro.faults.recovery import FaultInjectingRunner

        cell = default_corpus()[0]
        report = plan_mobius(cell.model, cell.topology, cell.config)
        stage_costs = report.plan.partition.stage_costs(report.cost_model)
        schedule = FaultSchedule(
            seed=7,
            faults=(
                FlakyTransfers(failure_rate=0.1),
                StragglerGpu(gpu=0, slowdown=1.5),
                LinkDegradation(edge=("sw0", "rc0"), factor=0.5),
            ),
        )

        outcomes = {}
        for mode in ("single", "batched"):
            # Fresh tasks per run: the fault runner mutates task state
            # (straggler stretch, retry bookkeeping).
            tasks = build_mobius_tasks(
                report.plan,
                cell.topology,
                stage_costs,
                prefetch=cell.config.prefetch,
                use_priorities=cell.config.use_priorities,
            )
            runner = FaultInjectingRunner(cell.topology, schedule, dispatch=mode)
            trace = runner.execute(tasks)
            outcomes[mode] = (
                fingerprint(trace),
                runner.sim.events_processed,
                len(runner.failed_attempts),
            )
        assert outcomes["single"] == outcomes["batched"]

    def test_cluster_workload_identical_digests(self):
        from repro.hardware.topology import large_cluster
        from repro.sim.workloads import run_cluster_workload

        topology = large_cluster(16, 4)
        single = run_cluster_workload(topology, rounds=6, dispatch="single")
        batched = run_cluster_workload(topology, rounds=6, dispatch="batched")
        assert single.digest == batched.digest
        assert single.events_processed == batched.events_processed
        assert fingerprint(single.trace) == fingerprint(batched.trace)

    def test_unknown_dispatch_mode_rejected(self):
        from repro.hardware.topology import topo_2_2
        from repro.sim.tasks import TaskGraphRunner

        with pytest.raises(ValueError, match="dispatch"):
            TaskGraphRunner(topo_2_2(), dispatch="cohort")
