"""Fuzz oracle for the incremental flow allocator (DESIGN.md §11).

The production :class:`~repro.sim.resources.FlowNetwork` refills only the
edge-connected component(s) a change touches.  The reference oracle below
keeps the *old* progressive fill verbatim — not as dead code in ``src/`` —
and re-derives everything from scratch at every event: priority groups,
edge-connected components, and the max-min fill per component.  After
**every** reallocation — flow arrival, flow completion, bandwidth-scale
epoch — the incremental rates must equal the from-scratch oracle exactly
(``==``, not approx: the optimization contract is bit-identical traces).

Two oracle granularities pin down the contract precisely:

* **component oracle** (the allocator's canonical semantics) — groups are
  split into edge-connected components and each is filled separately.
  This must match on *any* workload; the fuzz harness drives seeded random
  arrival/priority/size/scale-window sequences over the paper's 2+2, 4 and
  4+4 commodity servers (departures happen naturally as flows complete,
  which is how the production runner retires flows too).
* **global oracle** (the legacy allocator) — one fill over the whole
  priority group.  Its round deltas interleave across components, so on
  adversarial capacities it can differ from the component fill by an ulp;
  on the production workloads the two are floating-point coincident, which
  is exactly the trace-byte compatibility the corpus-workload test (and
  the ``repro simbench`` fingerprint gate) asserts.
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.hardware.topology import topo_2_2, topo_4, topo_4_4
from repro.sim.engine import Simulator
from repro.sim.resources import _EPS, FlowNetwork

GB = 1e9


# ----------------------------------------------------------------------
# Reference oracle: the pre-incremental progressive fill, kept verbatim.
# ----------------------------------------------------------------------


def _oracle_progressive_fill(flows, used, effective_bandwidth, rates):
    """The old ``FlowNetwork._progressive_fill``, on (uid, path) records."""
    unfrozen = {uid: path for uid, path in flows}
    for uid, _ in flows:
        rates[uid] = 0.0
    edge_flows = defaultdict(list)
    for uid, path in flows:
        for edge in path:
            edge_flows[edge].append(uid)

    while unfrozen:
        delta = float("inf")
        for edge, members in edge_flows.items():
            live = sum(1 for uid in members if uid in unfrozen)
            if not live:
                continue
            headroom = effective_bandwidth(edge) - used[edge]
            delta = min(delta, max(headroom, 0.0) / live)
        if delta == float("inf"):
            break
        for uid, path in unfrozen.items():
            rates[uid] += delta
            for edge in path:
                used[edge] += delta
        saturated = {
            edge
            for edge in edge_flows
            if used[edge] >= effective_bandwidth(edge) * (1 - _EPS)
            and any(uid in unfrozen for uid in edge_flows[edge])
        }
        if not saturated:
            if delta <= 0:
                break
            continue
        for edge in saturated:
            for uid in edge_flows[edge]:
                unfrozen.pop(uid, None)


def _split_components(records):
    """Edge-connected components of ``[(uid, path), ...]``, from scratch."""
    components = []
    remaining = list(records)
    while remaining:
        component = [remaining.pop(0)]
        edges = set(component[0][1])
        changed = True
        while changed:
            changed = False
            rest = []
            for uid, path in remaining:
                if any(edge in edges for edge in path):
                    component.append((uid, path))
                    edges.update(path)
                    changed = True
                else:
                    rest.append((uid, path))
            remaining = rest
        components.append(component)
    return components


def oracle_rates(network: FlowNetwork, *, decompose: bool) -> dict[int, float]:
    """From-scratch rates for the network's current flow set.

    ``decompose=True`` is the allocator's canonical per-component
    semantics; ``decompose=False`` is the legacy whole-group fill.
    """
    used: dict = defaultdict(float)
    by_priority: dict[int, list] = defaultdict(list)
    for flow in network.active_flows:
        by_priority[flow.priority].append((flow.uid, flow.path))
    rates: dict[int, float] = {}
    for priority in sorted(by_priority, reverse=True):
        group = by_priority[priority]
        pieces = _split_components(group) if decompose else [group]
        for piece in pieces:
            _oracle_progressive_fill(
                piece, used, network.effective_bandwidth, rates
            )
    return rates


class CheckedFlowNetwork(FlowNetwork):
    """FlowNetwork that cross-checks every reallocation against the oracle."""

    #: Also assert the legacy global fill (valid on production workloads,
    #: where its rounds are floating-point coincident with the component
    #: fill; not valid for adversarial fuzz capacities).
    check_global = False

    def __init__(self, sim, topology):
        super().__init__(sim, topology)
        self.checked_reallocations = 0

    def _reallocate(self, touched=None):
        super()._reallocate(touched)
        actual = {flow.uid: flow.rate for flow in self.active_flows}
        expected = oracle_rates(self, decompose=True)
        assert actual == expected, (
            f"incremental rates diverged from the from-scratch component "
            f"oracle at t={self.sim.now}: {actual} != {expected}"
        )
        if self.check_global:
            legacy = oracle_rates(self, decompose=False)
            assert actual == legacy, (
                f"rates diverged from the legacy global fill at "
                f"t={self.sim.now}: {actual} != {legacy}"
            )
        if self._flows:  # empty calls early-return uncounted in stats too
            self.checked_reallocations += 1


def _random_path(topology, rng):
    kind = rng.randrange(3)
    if kind == 0:
        return topology.path_to_dram(rng.randrange(topology.n_gpus))
    if kind == 1:
        return topology.path_from_dram(rng.randrange(topology.n_gpus))
    src = rng.randrange(topology.n_gpus)
    dst = rng.randrange(topology.n_gpus)
    if src == dst:
        dst = (dst + 1) % topology.n_gpus
    return topology.gpu_to_gpu_path(src, dst)


def _fuzz_topologies():
    return [topo_2_2(), topo_4(), topo_4_4()]


def _run_fuzz(topology, seed, n_arrivals=40, with_scales=True):
    rng = random.Random(seed)
    sim = Simulator()
    network = CheckedFlowNetwork(sim, topology)
    completed = []
    for _ in range(n_arrivals):
        at = rng.uniform(0.0, 3.0)
        path = _random_path(topology, rng)
        nbytes = rng.uniform(0.05, 2.5) * GB
        priority = rng.choice((0, 0, 0, 1, 1, 2))
        label = f"fuzz-{len(completed)}"

        def arrive(path=path, nbytes=nbytes, priority=priority, label=label):
            network.start_flow(
                path,
                nbytes,
                lambda: completed.append(label),
                priority=priority,
                label=label,
            )

        sim.schedule_at(at, arrive)
    if with_scales:
        edges = sorted(edge for edge, _ in topology.iter_links())
        for _ in range(6):
            edge = rng.choice(edges)
            factor = rng.choice((0.25, 0.5, 0.75))
            start = rng.uniform(0.0, 2.5)
            end = start + rng.uniform(0.2, 2.0)
            network.set_bandwidth_scale(edge, factor, start=start, end=end)
    sim.run()
    assert len(completed) == n_arrivals
    # Every arrival reallocates with >= 1 active flow, so each one passed
    # through the checked fill (completions may leave the network empty).
    assert network.checked_reallocations >= n_arrivals
    return network


class TestIncrementalMatchesOracle:
    def test_fuzz_topo_2_2(self):
        for seed in range(6):
            _run_fuzz(topo_2_2(), seed)

    def test_fuzz_topo_4(self):
        for seed in range(6):
            _run_fuzz(topo_4(), seed)

    def test_fuzz_topo_4_4(self):
        for seed in range(6):
            _run_fuzz(topo_4_4(), seed)

    def test_fuzz_without_scale_events(self):
        for topology in _fuzz_topologies():
            _run_fuzz(topology, seed=99, with_scales=False)

    def test_reallocations_all_checked(self):
        network = _run_fuzz(topo_2_2(), seed=7, n_arrivals=12)
        assert network.stats.reallocations == network.checked_reallocations


class TestLegacyGlobalFillOnProductionWorkload:
    """The legacy whole-group fill coincides bitwise on real workloads.

    This is the trace-byte compatibility claim behind the allocator
    rewrite: on the check-corpus task graphs (including a degraded-link
    scale window, as injected by ``faults.models.LinkDegradation``) the
    incremental component fill reproduces the legacy allocator's rates at
    every event — hence identical traces, as also pinned by the committed
    ``BENCH_sim.json`` fingerprints.
    """

    def test_corpus_cell_with_degradation_window(self):
        from repro.check.corpus import default_corpus
        from repro.core.api import plan_mobius
        from repro.core.pipeline import build_mobius_tasks
        from repro.sim.tasks import TaskGraphRunner

        cell = default_corpus()[0]
        report = plan_mobius(cell.model, cell.topology, cell.config)
        stage_costs = report.plan.partition.stage_costs(report.cost_model)
        tasks = build_mobius_tasks(
            report.plan,
            cell.topology,
            stage_costs,
            prefetch=cell.config.prefetch,
            use_priorities=cell.config.use_priorities,
        )
        runner = TaskGraphRunner(cell.topology)
        network = CheckedFlowNetwork(runner.sim, cell.topology)
        network.check_global = True
        runner.network = network
        network.set_bandwidth_scale(("sw0", "rc0"), 0.5, start=0.02, end=0.2)
        trace = runner.execute(tasks)
        assert network.checked_reallocations > 0
        assert trace.makespan > 0
