"""The synthetic datacenter workload behind the simbench ``large`` rows."""

import pytest

from repro.hardware.topology import large_cluster
from repro.sim.workloads import build_cluster_workload, run_cluster_workload


class TestLargeCluster:
    def test_shape(self):
        topology = large_cluster(16, 4)
        assert topology.n_gpus == 16
        assert "4x4" in topology.name

    @pytest.mark.parametrize("n_gpus,group", [(0, 4), (6, 4), (-8, 4), (8, 0)])
    def test_invalid_shapes_rejected(self, n_gpus, group):
        with pytest.raises(ValueError):
            large_cluster(n_gpus, group)


class TestBuildClusterWorkload:
    def test_task_count_and_chaining(self):
        topology = large_cluster(8, 4)
        tasks = build_cluster_workload(topology, rounds=3)
        assert len(tasks) == 3 * 8 * 3  # upload/compute/offload per round
        # Each GPU's rounds form a chain: every task after the first upload
        # has exactly one dependency.
        roots = [t for t in tasks if not t.deps]
        assert len(roots) == 8

    def test_rounds_validated(self):
        with pytest.raises(ValueError, match="rounds"):
            build_cluster_workload(large_cluster(8, 4), rounds=0)

    def test_deterministic_variation(self):
        """The integer-hash variation is frozen — same inputs, same graph."""
        a = build_cluster_workload(large_cluster(8, 4), rounds=2)
        b = build_cluster_workload(large_cluster(8, 4), rounds=2)
        assert [getattr(t, "nbytes", None) for t in a] == [
            getattr(t, "nbytes", None) for t in b
        ]
        assert [getattr(t, "seconds", None) for t in a] == [
            getattr(t, "seconds", None) for t in b
        ]


class TestRunClusterWorkload:
    def test_run_is_reproducible(self):
        topology = large_cluster(8, 4)
        first = run_cluster_workload(topology, rounds=4)
        second = run_cluster_workload(topology, rounds=4)
        assert first.digest == second.digest
        assert first.events_processed == second.events_processed
        assert first.n_tasks == 3 * 8 * 4

    def test_event_count_scales_with_rounds(self):
        topology = large_cluster(8, 4)
        small = run_cluster_workload(topology, rounds=2)
        big = run_cluster_workload(topology, rounds=4)
        # ~3.9 events per (gpu, round): upload + 2 compute + offload minus
        # same-instant coalescing; exact values pinned by the digest gate.
        assert big.events_processed > small.events_processed
        assert small.events_processed >= 3 * 8 * 2

    def test_spilled_run_matches_in_memory(self, tmp_path):
        topology = large_cluster(8, 4)
        plain = run_cluster_workload(topology, rounds=4)
        spilled = run_cluster_workload(
            topology, rounds=4, spill_dir=tmp_path / "seg", spill_chunk=16
        )
        assert spilled.digest == plain.digest
        assert (tmp_path / "seg").exists()

    def test_vector_and_scalar_flow_paths_agree(self, monkeypatch):
        """Forcing the SoA flow arrays on (threshold 0) or off (huge
        threshold) must not move a single bit of the trace.
        """
        from repro.sim.resources import FlowNetwork

        topology = large_cluster(8, 4)
        monkeypatch.setattr(FlowNetwork, "vector_threshold", 0)
        vectored = run_cluster_workload(topology, rounds=4)
        monkeypatch.setattr(FlowNetwork, "vector_threshold", 1 << 30)
        scalar = run_cluster_workload(topology, rounds=4)
        assert vectored.digest == scalar.digest
        assert vectored.events_processed == scalar.events_processed
