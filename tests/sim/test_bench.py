"""Tests for the simbench document and its CI fingerprint/work gate."""

import json

import pytest

from repro.cli import main
from repro.sim.bench import (
    BENCH_SCHEMA,
    GATED_COUNTERS,
    compare_benchmarks,
    write_bench,
)


def _doc(**overrides):
    base = {
        "schema": BENCH_SCHEMA,
        "corpus": [
            {
                "name": "gpt-a/topo_2_2",
                "fingerprint": "aaaa1111",
                "events": 100,
                "reallocations": 40,
                "components_filled": 40,
                "fill_rounds": 60,
                "flows_touched": 60,
                "flows_touched_per_reallocation": 1.5,
                "wall_seconds": 0.05,
            }
        ],
        "chaos": [
            {
                "name": "gpt-a/topo_2_2/degraded_link",
                "fingerprint": "bbbb2222",
                "status": "ok",
                "wall_seconds": 0.07,
            }
        ],
        "large": [
            {
                "name": "dc-1024x4-r256",
                "fingerprint": "dddd4444",
                "events": 1_041_935,
                "n_tasks": 786_432,
                "reallocations": 1_041_924,
                "components_filled": 824_962,
                "fill_rounds": 824_962,
                "flows_touched": 1_242_966,
                "flows_touched_per_reallocation": 1.193,
                "wall_seconds": 70.0,
                "peak_rss_mb": 520,
            }
        ],
    }
    base.update(overrides)
    return base


class TestCompareBenchmarks:
    def test_identical_documents_pass(self):
        assert compare_benchmarks(_doc(), _doc()) == []

    def test_wall_time_is_ignored(self):
        slow = _doc()
        slow["corpus"][0]["wall_seconds"] = 999.0
        slow["chaos"][0]["wall_seconds"] = 999.0
        assert compare_benchmarks(slow, _doc()) == []

    def test_fingerprint_divergence_fails(self):
        bad = _doc()
        bad["corpus"][0]["fingerprint"] = "cccc3333"
        failures = compare_benchmarks(bad, _doc())
        assert any("fingerprint diverged" in f for f in failures)

    def test_chaos_fingerprint_divergence_fails(self):
        bad = _doc()
        bad["chaos"][0]["fingerprint"] = "cccc3333"
        failures = compare_benchmarks(bad, _doc())
        assert any("chaos" in f and "fingerprint diverged" in f for f in failures)

    @pytest.mark.parametrize("counter", GATED_COUNTERS)
    def test_work_counter_regression_fails_beyond_25_percent(self, counter):
        worse = _doc()
        worse["corpus"][0][counter] = int(_doc()["corpus"][0][counter] * 1.3)
        failures = compare_benchmarks(worse, _doc())
        assert any(counter in f and "regressed" in f for f in failures)

    def test_borderline_and_improved_counters_pass(self):
        borderline = _doc()
        borderline["corpus"][0]["events"] = 125  # exactly 1.25x: allowed
        assert compare_benchmarks(borderline, _doc()) == []
        better = _doc()
        better["corpus"][0]["flows_touched"] = 10
        assert compare_benchmarks(better, _doc()) == []

    def test_missing_row_fails_both_ways(self):
        shrunk = _doc(corpus=[])
        assert any(
            "missing from current" in f for f in compare_benchmarks(shrunk, _doc())
        )
        assert any(
            "missing from baseline" in f for f in compare_benchmarks(_doc(), shrunk)
        )

    def test_large_section_gated_like_the_others(self):
        bad = _doc()
        bad["large"][0]["fingerprint"] = "eeee5555"
        failures = compare_benchmarks(bad, _doc())
        assert any("large" in f and "fingerprint diverged" in f for f in failures)
        worse = _doc()
        worse["large"][0]["events"] = int(_doc()["large"][0]["events"] * 1.3)
        failures = compare_benchmarks(worse, _doc())
        assert any("large" in f and "events regressed" in f for f in failures)
        # Wall time and peak RSS stay informational.
        slow = _doc()
        slow["large"][0]["wall_seconds"] = 9999.0
        slow["large"][0]["peak_rss_mb"] = 99999
        assert compare_benchmarks(slow, _doc()) == []

    def test_missing_large_row_fails(self):
        assert any(
            "large" in f and "missing from current" in f
            for f in compare_benchmarks(_doc(large=[]), _doc())
        )


class TestSimbenchCli:
    @pytest.fixture
    def fake_bench(self, monkeypatch):
        import repro.cli as cli_module  # noqa: F401  (run_bench imported late)
        import repro.sim.bench as bench

        monkeypatch.setattr(bench, "run_bench", lambda: _doc())
        return _doc()

    def test_smoke_text_output(self, fake_bench, capsys):
        assert main(["simbench"]) == 0
        out = capsys.readouterr().out
        assert "gpt-a/topo_2_2" in out
        assert "touched/realloc=" in out
        assert "dc-1024x4-r256" in out
        assert "rss=" in out

    def test_json_to_file_and_gate(self, fake_bench, tmp_path, capsys):
        out_path = tmp_path / "BENCH_sim.json"
        assert main(["simbench", "--json", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["schema"] == BENCH_SCHEMA
        capsys.readouterr()
        assert main(["simbench", "--check-against", str(out_path)]) == 0

    def test_gate_fails_on_divergence(self, fake_bench, tmp_path, capsys):
        baseline = _doc()
        baseline["corpus"][0]["fingerprint"] = "something-else"
        path = tmp_path / "baseline.json"
        write_bench(path, baseline)
        assert main(["simbench", "--check-against", str(path)]) == 1
        assert "fingerprint diverged" in capsys.readouterr().err

    def test_committed_baseline_matches_schema(self):
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        committed = json.loads((repo_root / "BENCH_sim.json").read_text())
        assert committed["schema"] == BENCH_SCHEMA
        assert len(committed["corpus"]) >= 4
        for row in committed["corpus"]:
            assert row["fingerprint"]
            for counter in GATED_COUNTERS:
                assert isinstance(row[counter], int)
            # The incremental allocator's headline property: a reallocation
            # touches a small component, not the whole flow population.
            assert row["flows_touched_per_reallocation"] < 10
        for row in committed["chaos"]:
            assert row["status"] in ("ok", "infeasible")
            assert (row["fingerprint"] is None) == (row["status"] == "infeasible")
        # The datacenter row: ~1M events, identified by the columnar digest.
        assert len(committed["large"]) >= 1
        for row in committed["large"]:
            assert row["events"] >= 1_000_000
            assert row["fingerprint"] and len(row["fingerprint"]) == 64
            assert row["flows_touched_per_reallocation"] < 10
            assert row["wall_seconds"] > 0 and row["peak_rss_mb"] > 0
