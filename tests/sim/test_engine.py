"""Tests for the discrete-event simulation core."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5]
        assert sim.now == 1.5

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(0.5, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 1.5)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_zero_delay_runs_at_current_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0

    def test_peek_empty(self):
        assert Simulator().peek() is None


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_run_until_then_continue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.run(until=2.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_on_empty_heap(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run(until=2.0)
        with pytest.raises(ValueError):
            sim.run(until=1.0)
        assert sim.now == 2.0  # the failed call must not rewind the clock
