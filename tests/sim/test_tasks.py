"""Tests for task-graph execution."""

import pytest

from repro.hardware.topology import topo_2_2
from repro.sim.tasks import (
    BarrierTask,
    ComputeTask,
    DeadlockError,
    TaskGraphRunner,
    TransferTask,
    chain,
)

GB = 1e9
PCIE = 13.1 * GB


class TestExecution:
    def test_transfer_then_compute(self):
        topo = topo_2_2()
        up = TransferTask(path=topo.path_from_dram(0), nbytes=PCIE, gpu=0)
        work = ComputeTask(gpu=0, seconds=0.5).after(up)
        trace = TaskGraphRunner(topo).execute([up, work])
        assert trace.makespan == pytest.approx(1.5, rel=1e-6)

    def test_independent_tasks_run_in_parallel(self):
        topo = topo_2_2()
        a = ComputeTask(gpu=0, seconds=1.0)
        b = ComputeTask(gpu=1, seconds=1.0)
        trace = TaskGraphRunner(topo).execute([a, b])
        assert trace.makespan == pytest.approx(1.0)

    def test_same_gpu_tasks_serialize(self):
        topo = topo_2_2()
        a = ComputeTask(gpu=0, seconds=1.0)
        b = ComputeTask(gpu=0, seconds=1.0)
        trace = TaskGraphRunner(topo).execute([a, b])
        assert trace.makespan == pytest.approx(2.0)

    def test_compute_overlaps_transfer(self):
        topo = topo_2_2()
        work = ComputeTask(gpu=0, seconds=1.0)
        move = TransferTask(path=topo.path_from_dram(0), nbytes=PCIE, gpu=0)
        trace = TaskGraphRunner(topo).execute([work, move])
        assert trace.makespan == pytest.approx(1.0, rel=1e-6)

    def test_barrier_joins(self):
        topo = topo_2_2()
        a = ComputeTask(gpu=0, seconds=1.0)
        b = ComputeTask(gpu=1, seconds=2.0)
        barrier = BarrierTask().after(a, b)
        tail = ComputeTask(gpu=0, seconds=0.5).after(barrier)
        trace = TaskGraphRunner(topo).execute([a, b, barrier, tail])
        assert trace.makespan == pytest.approx(2.5)

    def test_chain_helper(self):
        topo = topo_2_2()
        tasks = chain(ComputeTask(gpu=0, seconds=0.5) for _ in range(4))
        trace = TaskGraphRunner(topo).execute(tasks)
        assert trace.makespan == pytest.approx(2.0)

    def test_after_skips_none(self):
        task = ComputeTask(gpu=0, seconds=1.0).after(None, None)
        assert task.deps == []

    def test_diamond_dependency(self):
        topo = topo_2_2()
        root = ComputeTask(gpu=0, seconds=1.0)
        left = ComputeTask(gpu=0, seconds=1.0).after(root)
        right = ComputeTask(gpu=1, seconds=2.0).after(root)
        join = ComputeTask(gpu=0, seconds=1.0).after(left, right)
        trace = TaskGraphRunner(topo).execute([root, left, right, join])
        assert trace.makespan == pytest.approx(4.0)


class TestErrors:
    def test_cycle_raises_deadlock(self):
        topo = topo_2_2()
        a = ComputeTask(gpu=0, seconds=1.0)
        b = ComputeTask(gpu=0, seconds=1.0).after(a)
        a.after(b)
        with pytest.raises(DeadlockError):
            TaskGraphRunner(topo).execute([a, b])

    def test_dependency_outside_graph_raises(self):
        topo = topo_2_2()
        ghost = ComputeTask(gpu=0, seconds=1.0)
        task = ComputeTask(gpu=0, seconds=1.0).after(ghost)
        with pytest.raises(DeadlockError):
            TaskGraphRunner(topo).execute([task])


class TestTraceRecording:
    def test_compute_spans_recorded(self):
        topo = topo_2_2()
        a = ComputeTask(gpu=1, seconds=1.0, label="work")
        trace = TaskGraphRunner(topo).execute([a])
        assert len(trace.compute) == 1
        span = trace.compute[0]
        assert (span.gpu, span.label) == (1, "work")
        assert span.duration == pytest.approx(1.0)

    def test_transfer_spans_record_bytes_and_kind(self):
        topo = topo_2_2()
        move = TransferTask(
            path=topo.path_from_dram(0), nbytes=2 * GB, gpu=0, kind="param-upload"
        )
        trace = TaskGraphRunner(topo).execute([move])
        assert len(trace.transfers) == 1
        span = trace.transfers[0]
        assert span.nbytes == 2 * GB
        assert span.kind == "param-upload"
        assert span.bandwidth == pytest.approx(PCIE, rel=1e-6)

    def test_zero_duration_tasks_not_recorded(self):
        topo = topo_2_2()
        barrier = BarrierTask()
        empty = TransferTask(path=topo.path_from_dram(0), nbytes=0.0, gpu=0)
        zero = ComputeTask(gpu=0, seconds=0.0)
        trace = TaskGraphRunner(topo).execute([barrier, empty, zero])
        assert trace.compute == []
        assert trace.transfers == []

    def test_queued_task_start_time_excludes_wait(self):
        topo = topo_2_2()
        a = ComputeTask(gpu=0, seconds=1.0)
        b = ComputeTask(gpu=0, seconds=1.0)
        trace = TaskGraphRunner(topo).execute([a, b])
        starts = sorted(span.start for span in trace.compute)
        assert starts == [pytest.approx(0.0), pytest.approx(1.0)]
