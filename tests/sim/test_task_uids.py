"""The task-uid allocation seam (MOB007 fix) and its determinism contract."""

import threading

from repro.hardware.topology import commodity_server
from repro.models.spec import build_gpt_like
from repro.sim.tasks import ComputeTask, Task, _next_task_uid


class TestUidSeam:
    def test_uids_are_unique_and_increasing(self):
        tasks = [Task(label=f"t{i}") for i in range(100)]
        uids = [t.uid for t in tasks]
        assert len(set(uids)) == len(uids)
        assert uids == sorted(uids)

    def test_seam_matches_post_init_allocation(self):
        before = _next_task_uid()
        task = Task(label="after")
        assert task.uid == before + 1

    def test_concurrent_builders_get_distinct_uids(self):
        results: list[list[int]] = [[] for _ in range(8)]

        def build(bucket: list[int]):
            for _ in range(200):
                bucket.append(ComputeTask(label="x").uid)

        threads = [
            threading.Thread(target=build, args=(bucket,)) for bucket in results
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        all_uids = [uid for bucket in results for uid in bucket]
        assert len(set(all_uids)) == len(all_uids)


class TestTraceFingerprintRegression:
    def test_identical_runs_produce_identical_fingerprints(self):
        """The uid seam must not perturb heap tie-breaks: two fresh runs of
        the same configuration (with uid counters at different offsets)
        fingerprint identically."""
        from repro.core.api import MobiusConfig, run_mobius
        from repro.perf.cache import cache_overridden
        from repro.perf.fingerprint import fingerprint

        model = build_gpt_like(
            "uid-fp-1024x6",
            n_blocks=6,
            hidden_dim=1024,
            n_heads=8,
            default_microbatch_size=1,
        )
        topology = commodity_server([2, 2])
        config = MobiusConfig(partition_time_limit=0.5)

        fingerprints = []
        for _ in range(2):
            # Burn some uids so the two runs start at different counter
            # offsets — trace identity must not depend on absolute uids.
            for _ in range(17):
                _next_task_uid()
            with cache_overridden():
                report = run_mobius(model, topology, config)
            fingerprints.append(fingerprint(report.trace))
        assert fingerprints[0] == fingerprints[1]
