"""Tests for trace post-processing: intervals, CDFs, overlap."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.trace import (
    Trace,
    merge_intervals,
    subtract_intervals,
    total_length,
)

GB = 1e9

interval = st.tuples(
    st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=100)
).map(lambda t: (min(t), max(t)))


class TestIntervalAlgebra:
    def test_merge_overlapping(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_merge_adjacent(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_merge_disjoint(self):
        assert merge_intervals([(3, 4), (0, 1)]) == [(0, 1), (3, 4)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(1, 1), (2, 1)]) == []

    def test_subtract_middle_hole(self):
        assert subtract_intervals([(0, 10)], [(3, 5)]) == [(0, 3), (5, 10)]

    def test_subtract_covering_hole(self):
        assert subtract_intervals([(2, 4)], [(0, 10)]) == []

    def test_subtract_disjoint_hole(self):
        assert subtract_intervals([(0, 2)], [(5, 6)]) == [(0, 2)]

    def test_subtract_multiple_holes(self):
        result = subtract_intervals([(0, 10)], [(1, 2), (4, 5), (9, 12)])
        assert result == [(0, 1), (2, 4), (5, 9)]

    def test_total_length_merges_first(self):
        assert total_length([(0, 2), (1, 3)]) == pytest.approx(3.0)

    @given(st.lists(interval, max_size=12), st.lists(interval, max_size=12))
    def test_subtract_length_bounds(self, base, holes):
        """Property: |base \\ holes| <= |base| and the pieces avoid holes."""
        result = subtract_intervals(base, holes)
        assert total_length(result) <= total_length(base) + 1e-9
        merged_holes = merge_intervals(holes)
        for start, end in result:
            for hole_start, hole_end in merged_holes:
                assert end <= hole_start or start >= hole_end

    @given(st.lists(interval, max_size=12), st.lists(interval, max_size=12))
    def test_subtract_partitions_base(self, base, holes):
        """Property: |base \\ holes| + |base intersect holes| == |base|."""
        diff = total_length(subtract_intervals(base, holes))
        inter = total_length(base) - diff
        # Intersection computed independently.
        expected_inter = total_length(base) - total_length(
            subtract_intervals(base, holes)
        )
        assert inter == pytest.approx(expected_inter)


class TestTrace:
    def make_trace(self):
        trace = Trace(2)
        trace.add_compute(0, 0.0, 2.0, "F")
        trace.add_compute(1, 1.0, 3.0, "F")
        trace.add_transfer(0, 0.0, 1.0, 1 * GB, "param-upload")
        trace.add_transfer(0, 1.5, 3.5, 1 * GB, "grad-offload")
        trace.add_transfer(1, 0.0, 0.5, 2 * GB, "activation")
        return trace

    def test_makespan(self):
        assert self.make_trace().makespan == pytest.approx(3.5)

    def test_makespan_empty(self):
        assert Trace(1).makespan == 0.0

    def test_total_bytes(self):
        assert self.make_trace().total_transfer_bytes() == pytest.approx(4 * GB)

    def test_total_bytes_filtered_by_kind(self):
        trace = self.make_trace()
        assert trace.total_transfer_bytes(["activation"]) == pytest.approx(2 * GB)
        assert trace.total_transfer_bytes(["param-upload", "grad-offload"]) == pytest.approx(
            2 * GB
        )

    def test_bandwidth_samples_weighted_by_bytes(self):
        bandwidths, weights = self.make_trace().bandwidth_samples()
        assert len(bandwidths) == 3
        assert weights.sum() == pytest.approx(4 * GB)

    def test_bandwidth_cdf_monotone(self):
        trace = self.make_trace()
        grid = [0.5 * GB * i for i in range(10)]
        cdf = trace.bandwidth_cdf(grid)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_bandwidth_cdf_empty_trace(self):
        assert list(Trace(1).bandwidth_cdf([0.0, 1.0])) == [0.0, 0.0]

    def test_median_bandwidth(self):
        trace = Trace(1)
        trace.add_transfer(0, 0.0, 1.0, 1 * GB)  # 1 GB/s
        trace.add_transfer(0, 0.0, 1.0, 3 * GB)  # 3 GB/s with 3x weight
        assert trace.median_bandwidth() == pytest.approx(3 * GB)

    def test_non_overlapped_comm(self):
        trace = self.make_trace()
        # GPU 0: comm [0,1] u [1.5,3.5]; compute [0,2] -> exposed [2,3.5].
        assert trace.non_overlapped_comm_seconds(0) == pytest.approx(1.5)
        # GPU 1: comm [0,0.5]; compute [1,3] -> exposed [0,0.5].
        assert trace.non_overlapped_comm_seconds(1) == pytest.approx(0.5)

    def test_non_overlapped_fraction_is_mean_over_gpus(self):
        trace = self.make_trace()
        expected = (1.5 / 3.5 + 0.5 / 3.5) / 2
        assert trace.non_overlapped_comm_fraction() == pytest.approx(expected)

    def test_compute_seconds(self):
        trace = self.make_trace()
        assert trace.compute_seconds(0) == pytest.approx(2.0)
        assert trace.compute_seconds() == pytest.approx(4.0)

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            Trace(0)
