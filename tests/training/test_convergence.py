"""Tests for the Figure 13 convergence experiment."""

import pytest

from repro.nn.transformer import GPTConfig
from repro.training.convergence import run_convergence_experiment

SMALL = GPTConfig(vocab_size=64, seq_len=16, dim=32, n_heads=4, n_blocks=4)


@pytest.fixture(scope="module")
def result():
    return run_convergence_experiment(
        n_steps=15, config=SMALL, batch_size=8, gpipe_gpus=4, mobius_gpus=2
    )


class TestConvergence:
    def test_curves_overlap(self, result):
        """Figure 13: the loss curves of GPipe and Mobius almost coincide."""
        assert result.max_divergence() < 1e-2

    def test_loss_decreases(self, result):
        first, last = result.gpipe_loss[0], result.gpipe_loss[-1]
        assert last < first

    def test_both_systems_learn(self, result):
        gpipe_final, mobius_final = result.final_losses()
        assert gpipe_final < result.gpipe_loss[0]
        assert mobius_final < result.mobius_loss[0]

    def test_lengths_consistent(self, result):
        assert len(result.steps) == len(result.gpipe_loss) == len(result.mobius_loss)
        assert len(result.steps) == 15

    def test_different_gpu_counts_allowed(self):
        tiny = run_convergence_experiment(
            n_steps=2, config=SMALL, batch_size=6, gpipe_gpus=6, mobius_gpus=3
        )
        assert tiny.max_divergence() < 1e-2
