"""Activation recomputation (gradient checkpointing) in the staged trainers."""

import numpy as np
import pytest

from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPTConfig, GPTModel
from repro.training.pipeline_train import GPipeScheduleTrainer, MobiusScheduleTrainer

CONFIG = GPTConfig(vocab_size=64, seq_len=16, dim=32, n_heads=4, n_blocks=4)


@pytest.fixture
def batch():
    corpus = SyntheticCorpus(vocab_size=64, n_tokens=4000, seed=1)
    return next(corpus.batches(8, 16, seed=2))


def params_of(model):
    return np.concatenate([p.data.ravel() for p in model.parameters()])


class TestRecompute:
    def test_gpipe_recompute_identical_updates(self, batch):
        plain, ckpt = GPTModel(CONFIG, seed=7), GPTModel(CONFIG, seed=7)
        loss_plain = GPipeScheduleTrainer(plain, 4).step(batch)
        loss_ckpt = GPipeScheduleTrainer(ckpt, 4, recompute=True).step(batch)
        assert loss_plain == pytest.approx(loss_ckpt, abs=1e-7)
        np.testing.assert_array_equal(params_of(plain), params_of(ckpt))

    def test_mobius_recompute_identical_updates(self, batch):
        plain, ckpt = GPTModel(CONFIG, seed=7), GPTModel(CONFIG, seed=7)
        MobiusScheduleTrainer(plain, 2, n_stages=6, n_microbatches=4).step(batch)
        MobiusScheduleTrainer(
            ckpt, 2, n_stages=6, n_microbatches=4, recompute=True
        ).step(batch)
        np.testing.assert_array_equal(params_of(plain), params_of(ckpt))

    def test_checkpoint_forward_stores_no_graph(self, batch):
        """With recompute, forward-pass activations carry no autograd graph."""
        from repro.training.microbatch import split_batch
        from repro.training.pipeline_train import StagePartition, _StagedStep

        model = GPTModel(CONFIG, seed=0)
        staged = _StagedStep(
            model, StagePartition.uniform(model.n_pipeline_layers, 3), recompute=True
        )
        micro = split_batch(batch, 4)[0]
        _, out = staged.forward(0, micro.inputs)
        assert not out.requires_grad

    def test_multi_step_training_with_recompute(self, batch):
        model = GPTModel(CONFIG, seed=3)
        trainer = MobiusScheduleTrainer(
            model, 2, n_stages=6, n_microbatches=4, recompute=True
        )
        corpus = SyntheticCorpus(vocab_size=64, n_tokens=4000, seed=5)
        losses = [trainer.step(b) for _, b in zip(range(8), corpus.batches(8, 16, seed=6))]
        assert losses[-1] < losses[0]
