"""The §3.1 convergence guarantee: pipeline schedules == plain accumulation."""

import numpy as np
import pytest

from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPTConfig, GPTModel
from repro.training.microbatch import ReferenceTrainer, split_batch
from repro.training.pipeline_train import (
    GPipeScheduleTrainer,
    MobiusScheduleTrainer,
    StagePartition,
)

CONFIG = GPTConfig(vocab_size=64, seq_len=16, dim=32, n_heads=4, n_blocks=4)


@pytest.fixture
def batch():
    corpus = SyntheticCorpus(vocab_size=64, n_tokens=4000, seed=1)
    return next(corpus.batches(8, 16, seed=2))


class TestStagePartition:
    def test_uniform(self):
        partition = StagePartition.uniform(6, 3)
        assert partition.n_stages == 3
        ranges = [partition.stage_range(j) for j in range(3)]
        assert ranges == [(0, 2), (2, 4), (4, 6)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            StagePartition.uniform(3, 5)


class TestSplitBatch:
    def test_even_split(self, batch):
        micros = split_batch(batch, 4)
        assert len(micros) == 4
        assert all(m.inputs.shape[0] == 2 for m in micros)

    def test_uneven_rejected(self, batch):
        with pytest.raises(ValueError):
            split_batch(batch, 3)


class TestGradientEquivalence:
    def test_gpipe_matches_reference_exactly(self, batch):
        ref_model = GPTModel(CONFIG, seed=7)
        gpipe_model = GPTModel(CONFIG, seed=7)
        ref_loss = ReferenceTrainer(ref_model, n_microbatches=4).step(batch)
        gpipe_loss = GPipeScheduleTrainer(gpipe_model, 4).step(batch)
        assert gpipe_loss == pytest.approx(ref_loss, abs=1e-6)
        for a, b in zip(ref_model.parameters(), gpipe_model.parameters()):
            np.testing.assert_allclose(a.data, b.data, atol=1e-6)

    def test_mobius_matches_reference_exactly(self, batch):
        ref_model = GPTModel(CONFIG, seed=7)
        mobius_model = GPTModel(CONFIG, seed=7)
        ReferenceTrainer(ref_model, n_microbatches=4).step(batch)
        MobiusScheduleTrainer(mobius_model, 2, n_stages=6, n_microbatches=4).step(batch)
        for a, b in zip(ref_model.parameters(), mobius_model.parameters()):
            np.testing.assert_allclose(a.data, b.data, atol=1e-6)

    def test_stage_count_does_not_change_math(self, batch):
        results = []
        for n_stages in (2, 3, 6):
            model = GPTModel(CONFIG, seed=7)
            MobiusScheduleTrainer(model, 2, n_stages=n_stages, n_microbatches=4).step(
                batch
            )
            results.append(np.concatenate([p.data.ravel() for p in model.parameters()]))
        np.testing.assert_allclose(results[0], results[1], atol=1e-6)
        np.testing.assert_allclose(results[0], results[2], atol=1e-6)

    def test_multi_step_trajectories_stay_together(self, batch):
        gpipe_model = GPTModel(CONFIG, seed=7)
        mobius_model = GPTModel(CONFIG, seed=7)
        gpipe = GPipeScheduleTrainer(gpipe_model, 4)
        mobius = MobiusScheduleTrainer(mobius_model, 4)
        corpus = SyntheticCorpus(vocab_size=64, n_tokens=4000, seed=1)
        for step, fresh in zip(range(5), corpus.batches(8, 16, seed=3)):
            a = gpipe.step(fresh)
            b = mobius.step(fresh)
            assert a == pytest.approx(b, abs=1e-4)


class TestMobiusSwapSemantics:
    def test_residency_never_exceeds_limit(self, batch):
        trainer = MobiusScheduleTrainer(
            GPTModel(CONFIG, seed=0), 2, n_stages=6, n_microbatches=4, resident_limit=2
        )
        trainer.step(batch)
        resident: dict[int, set] = {0: set(), 1: set()}
        for event in trainer.swap_events:
            if event.kind == "upload":
                resident[event.gpu].add(event.stage)
            else:
                resident[event.gpu].discard(event.stage)
            assert len(resident[event.gpu]) <= 2

    def test_stages_map_round_robin(self, batch):
        trainer = MobiusScheduleTrainer(
            GPTModel(CONFIG, seed=0), 2, n_stages=6, n_microbatches=4
        )
        trainer.step(batch)
        for event in trainer.swap_events:
            assert event.gpu == event.stage % 2

    def test_every_swapped_stage_uploaded_twice(self, batch):
        """Swapped-out stages upload once for forward, once for backward;
        the resident tail uploads only once."""
        trainer = MobiusScheduleTrainer(
            GPTModel(CONFIG, seed=0), 2, n_stages=6, n_microbatches=4
        )
        trainer.step(batch)
        uploads: dict[int, int] = {}
        for event in trainer.swap_events:
            if event.kind == "upload":
                uploads[event.stage] = uploads.get(event.stage, 0) + 1
        for stage in range(4):  # swapped out (6 stages - 2 resident)
            assert uploads[stage] == 2
        for stage in (4, 5):  # resident tail
            assert uploads[stage] == 1
