"""Content-fingerprint correctness: stability and sensitivity."""

import dataclasses
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.api import MobiusConfig
from repro.baselines.deepspeed import DeepSpeedConfig
from repro.hardware.topology import topo_1_3, topo_2_2, datacenter_server
from repro.models.spec import build_gpt_like
from repro.models.zoo import gpt_8b
from repro.perf.fingerprint import canonical_bytes, fingerprint


class TestStability:
    def test_identical_specs_hash_identically(self):
        assert fingerprint(gpt_8b()) == fingerprint(gpt_8b())

    def test_identical_topologies_hash_identically(self):
        assert fingerprint(topo_2_2()) == fingerprint(topo_2_2())

    def test_identical_configs_hash_identically(self):
        assert fingerprint(MobiusConfig()) == fingerprint(MobiusConfig())
        assert fingerprint(DeepSpeedConfig()) == fingerprint(DeepSpeedConfig())

    def test_stable_across_processes(self):
        """The same spec built in a fresh interpreter hashes identically."""
        program = (
            "from repro.models.zoo import gpt_8b\n"
            "from repro.core.api import MobiusConfig\n"
            "from repro.hardware.topology import topo_2_2\n"
            "from repro.perf.fingerprint import fingerprint\n"
            "print(fingerprint((gpt_8b(), topo_2_2(), MobiusConfig())))\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"  # prove hash() salting is irrelevant
        child = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        here = fingerprint((gpt_8b(), topo_2_2(), MobiusConfig()))
        assert child.stdout.strip() == here

    def test_collection_encodings_are_canonical(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({1, 2, 3}) == fingerprint({3, 2, 1})
        assert fingerprint((1, 2)) != fingerprint([1, 2])


class TestSensitivity:
    def test_any_config_field_changes_the_hash(self):
        base = MobiusConfig()
        changed = {
            "microbatch_size": 2,
            "n_microbatches": 7,
            "partition_method": "max-stage",
            "mapping_method": "sequential",
            "partition_time_limit": 1.25,
            "partition_max_nodes": 500,
            "prefetch": False,
            "use_priorities": False,
            "bandwidth": 9.9e9,
            # The structural hash sees solver_mode like any field; cache
            # keys normalize it to "solo" *before* fingerprinting
            # (plan_mobius, PlanRequest.memo_key), not in here.
            "solver_mode": "portfolio",
        }
        assert set(changed) == {f.name for f in dataclasses.fields(base)}
        for field, value in changed.items():
            mutated = dataclasses.replace(base, **{field: value})
            assert fingerprint(mutated) != fingerprint(base), field

    def test_layer_fields_change_the_hash(self):
        base = build_gpt_like("m", n_blocks=2, hidden_dim=64, n_heads=2)
        layer = base.layers[1]
        for field in ("param_count", "fwd_flops_per_sample", "name", "kind"):
            value = getattr(layer, field)
            bumped = value + 1 if isinstance(value, (int, float)) else value + "x"
            mutated_layer = dataclasses.replace(layer, **{field: bumped})
            layers = (base.layers[0], mutated_layer, *base.layers[2:])
            mutated = dataclasses.replace(base, layers=layers)
            assert fingerprint(mutated) != fingerprint(base), field

    def test_topology_shape_and_bandwidth_change_the_hash(self):
        assert fingerprint(topo_2_2()) != fingerprint(topo_1_3())
        assert fingerprint(topo_2_2()) != fingerprint(datacenter_server())
        slower = topo_2_2()
        slower.pcie_bandwidth = slower.pcie_bandwidth / 2
        assert fingerprint(slower) != fingerprint(topo_2_2())

    def test_numeric_edge_cases_distinguished(self):
        assert fingerprint(0.0) != fingerprint(-0.0)
        assert fingerprint(float("nan")) != fingerprint(float("inf"))
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(True) != fingerprint(1)


class TestEncoding:
    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint(object())

    def test_numpy_arrays_supported(self):
        a = np.arange(6, dtype=np.float64)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.reshape(2, 3))
        assert fingerprint(a) != fingerprint(a.astype(np.float32))

    def test_canonical_bytes_is_prefix_free_enough(self):
        # Concatenation ambiguities must not collide: ("ab", "c") vs ("a", "bc").
        assert canonical_bytes(("ab", "c")) != canonical_bytes(("a", "bc"))
        assert canonical_bytes(("1", 1)) != canonical_bytes((1, "1"))
