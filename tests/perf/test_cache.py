"""Cache correctness: tiering, persistence, versioning, and result equality."""

import dataclasses

import pytest

import repro.perf.cache as cache_module
from repro.core.api import MobiusConfig, plan_mobius
from repro.experiments.runner import run_system
from repro.hardware.topology import topo_2_2
from repro.perf.cache import CacheConfig, ResultCache, cache_overridden, get_cache


@pytest.fixture
def disk_cache(tmp_path):
    with cache_overridden(memory=True, disk=True, directory=str(tmp_path)) as cache:
        yield cache


class TestResultCache:
    def test_memory_hit_skips_compute(self, disk_cache):
        calls = []
        first = disk_cache.memoize("ns", ("key",), lambda: calls.append(1) or "value")
        second = disk_cache.memoize("ns", ("key",), lambda: calls.append(1) or "other")
        assert first == second == "value"
        assert len(calls) == 1
        assert disk_cache.stats["ns"].memory_hits == 1

    def test_disk_survives_a_new_process_worth_of_state(self, tmp_path):
        """A fresh cache over the same directory (= another process) hits."""
        config = CacheConfig(memory=True, disk=True, directory=str(tmp_path))
        writer = ResultCache(config)
        writer.memoize("ns", ("key",), lambda: {"answer": 42})
        reader = ResultCache(config)
        value = reader.memoize("ns", ("key",), lambda: pytest.fail("should hit disk"))
        assert value == {"answer": 42}
        assert reader.stats["ns"].disk_hits == 1

    def test_version_bump_invalidates_stale_entries(self, tmp_path, monkeypatch):
        config = CacheConfig(memory=False, disk=True, directory=str(tmp_path))
        ResultCache(config).memoize("ns", ("key",), lambda: "v1-result")
        monkeypatch.setattr(cache_module, "CACHE_VERSION", cache_module.CACHE_VERSION + 1)
        calls = []
        value = ResultCache(config).memoize(
            "ns", ("key",), lambda: calls.append(1) or "recomputed"
        )
        assert value == "recomputed" and calls == [1]

    def test_corrupt_entry_recomputed(self, tmp_path):
        config = CacheConfig(memory=False, disk=True, directory=str(tmp_path))
        cache = ResultCache(config)
        cache.memoize("ns", ("key",), lambda: "good")
        [entry] = list(tmp_path.rglob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        assert ResultCache(config).memoize("ns", ("key",), lambda: "fresh") == "fresh"

    def test_corrupt_entry_quarantined_not_deleted(self, tmp_path):
        """The bad bytes move to ``.corrupt`` — out of the path, diagnosable."""
        config = CacheConfig(memory=False, disk=True, directory=str(tmp_path))
        cache = ResultCache(config)
        cache.memoize("ns", ("key",), lambda: "good")
        [entry] = list(tmp_path.rglob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        reader = ResultCache(config)
        assert reader.lookup("ns", ("key",)) == (None, False)
        [corpse] = list(tmp_path.rglob("*.pkl.corrupt"))
        assert corpse.read_bytes() == b"not a pickle"
        # The quarantined file no longer shadows the slot: a recompute
        # writes a fresh entry that reads back cleanly.
        assert reader.memoize("ns", ("key",), lambda: "fresh") == "fresh"
        assert ResultCache(config).lookup("ns", ("key",)) == ("fresh", True)

    def test_truncated_entry_recomputed(self, tmp_path):
        """A torn write (crash mid-flush) reads as a miss, not an error."""
        config = CacheConfig(memory=False, disk=True, directory=str(tmp_path))
        cache = ResultCache(config)
        cache.memoize("ns", ("key",), lambda: {"payload": list(range(256))})
        [entry] = list(tmp_path.rglob("*.pkl"))
        entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 2])
        calls = []
        value = ResultCache(config).memoize(
            "ns", ("key",), lambda: calls.append(1) or "recomputed"
        )
        assert value == "recomputed" and calls == [1]
        assert list(tmp_path.rglob("*.pkl.corrupt"))

    def test_clear_disk_drops_persisted_entries(self, tmp_path):
        config = CacheConfig(memory=False, disk=True, directory=str(tmp_path))
        cache = ResultCache(config)
        cache.memoize("ns", ("key",), lambda: "persisted")
        assert list(tmp_path.rglob("*.pkl"))
        cache.clear_disk()
        assert not list(tmp_path.rglob("*.pkl"))
        calls = []
        ResultCache(config).memoize("ns", ("key",), lambda: calls.append(1) or "new")
        assert calls == [1]

    def test_disabled_cache_always_computes(self):
        with cache_overridden(memory=False, disk=False) as cache:
            calls = []
            cache.memoize("ns", ("key",), lambda: calls.append(1))
            cache.memoize("ns", ("key",), lambda: calls.append(1))
            assert len(calls) == 2


def _spans(trace):
    return (tuple(trace.compute), tuple(trace.transfers))


class TestPlanAndRunCaching:
    """Cached planner/simulator results equal their uncached reference."""

    def test_plan_mobius_cached_equals_uncached(self, tiny_model, topo22):
        config = MobiusConfig(microbatch_size=1)
        with cache_overridden(memory=False, disk=False):
            reference = plan_mobius(tiny_model, topo22, config)
        with cache_overridden(memory=True, disk=False) as cache:
            warm = plan_mobius(tiny_model, topo22, config)
            again = plan_mobius(tiny_model, topo22, config)
            assert cache.stats["plan"].memory_hits == 1
        assert again is warm  # memoized object, not a re-solve
        assert warm.plan.partition.boundaries == reference.plan.partition.boundaries
        assert warm.plan.mapping == reference.plan.mapping
        assert warm.plan.estimated_step_seconds == reference.plan.estimated_step_seconds
        assert warm.partition_result.nodes_explored == reference.partition_result.nodes_explored
        assert warm.profile_report.layer_costs == reference.profile_report.layer_costs

    def test_plan_mobius_disk_roundtrip_equals_memory(self, tiny_model, topo22, tmp_path):
        config = MobiusConfig(microbatch_size=1)
        with cache_overridden(memory=True, disk=True, directory=str(tmp_path)):
            computed = plan_mobius(tiny_model, topo22, config)
        # Fresh cache, same directory: the result arrives via pickle.
        with cache_overridden(memory=True, disk=True, directory=str(tmp_path)) as cache:
            loaded = plan_mobius(tiny_model, topo22, config)
            assert cache.stats["plan"].disk_hits == 1
        assert loaded.plan.partition.boundaries == computed.plan.partition.boundaries
        assert loaded.plan.estimated_step_seconds == computed.plan.estimated_step_seconds
        assert loaded.profile_report.layer_costs == computed.profile_report.layer_costs

    def test_run_system_cached_equals_uncached(self, tiny_model, topo22):
        with cache_overridden(memory=False, disk=False):
            reference = run_system("mobius", tiny_model, topo22, microbatch_size=1)
        with cache_overridden(memory=True, disk=False) as cache:
            first = run_system("mobius", tiny_model, topo22, microbatch_size=1)
            second = run_system("mobius", tiny_model, topo22, microbatch_size=1)
            assert cache.stats["system"].memory_hits == 1
        assert first.step_seconds == reference.step_seconds == second.step_seconds
        assert _spans(first.trace) == _spans(reference.trace) == _spans(second.trace)

    def test_oom_results_cached_too(self):
        from repro.models.zoo import gpt_8b

        with cache_overridden(memory=True, disk=False) as cache:
            first = run_system("gpipe", gpt_8b(), topo_2_2(), microbatch_size=1)
            second = run_system("gpipe", gpt_8b(), topo_2_2(), microbatch_size=1)
            assert first.status == second.status == "oom"
            assert cache.stats["system"].memory_hits == 1

    def test_different_config_misses(self, tiny_model, topo22):
        with cache_overridden(memory=True, disk=False) as cache:
            run_system("mobius", tiny_model, topo22, microbatch_size=1)
            run_system("mobius", tiny_model, topo22, microbatch_size=2)
            assert cache.stats["system"].misses == 2
            assert cache.stats["system"].hits == 0

    def test_returned_shell_is_fresh_but_payload_shared(self, tiny_model, topo22):
        with cache_overridden(memory=True, disk=False):
            first = run_system("mobius", tiny_model, topo22, microbatch_size=1)
            second = run_system("mobius", tiny_model, topo22, microbatch_size=1)
        assert first is not second  # callers may tag their own extras
        first.extras["marker"] = True
        assert "marker" not in second.extras
        assert first.trace is second.trace  # the heavy payload is shared


class _FakeBackend:
    """DurableStore duck-type: load/store over a plain dict."""

    def __init__(self) -> None:
        self.data: dict = {}
        self.stores = 0

    def load(self, namespace, digest):
        key = (namespace, digest)
        if key in self.data:
            return self.data[key], True
        return None, False

    def store(self, namespace, digest, value):
        self.data[(namespace, digest)] = value
        self.stores += 1


class _BrokenBackend:
    def load(self, namespace, digest):
        raise RuntimeError("durable tier down")

    def store(self, namespace, digest, value):
        raise RuntimeError("durable tier down")


class TestDurableBackendTier:
    """The serve daemon's sqlite tier behind attach_backend/detach_backend."""

    def test_backend_hit_counted_and_promoted(self):
        backend = _FakeBackend()
        with cache_overridden(memory=True, disk=False) as cache:
            cache.attach_backend(backend)
            cache.store("ns", ("key",), "durable-value")
            cache.clear_memory()  # simulate a restarted process
            calls = []
            value = cache.memoize(
                "ns", ("key",), lambda: calls.append(1) or "recomputed"
            )
            assert value == "durable-value" and not calls
            assert cache.stats["ns"].backend_hits == 1
            # Promoted into memory: the next read is a memory hit.
            cache.memoize("ns", ("key",), lambda: pytest.fail("should hit memory"))
            assert cache.stats["ns"].memory_hits == 1

    def test_store_writes_through(self):
        backend = _FakeBackend()
        with cache_overridden(memory=True, disk=False) as cache:
            cache.attach_backend(backend)
            cache.memoize("ns", ("key",), lambda: "computed")
            assert backend.stores == 1
            assert backend.load("ns", next(iter(backend.data))[1]) == (
                "computed",
                True,
            )

    def test_broken_backend_degrades_to_recompute(self):
        with cache_overridden(memory=False, disk=False) as cache:
            cache.attach_backend(_BrokenBackend())
            calls = []
            value = cache.memoize(
                "ns", ("key",), lambda: calls.append(1) or "computed"
            )
            assert value == "computed" and calls == [1]
            assert cache.lookup("ns", ("key",)) == (None, False)  # no raise

    def test_detach_restores_two_tier_behavior(self):
        backend = _FakeBackend()
        with cache_overridden(memory=True, disk=False) as cache:
            cache.attach_backend(backend)
            cache.store("ns", ("key",), "durable-value")
            cache.detach_backend()
            cache.clear_memory()
            assert cache.lookup("ns", ("key",)) == (None, False)


class TestGlobalConfiguration:
    def test_get_cache_returns_singleton(self):
        assert get_cache() is get_cache()

    def test_override_restores_previous(self):
        before = get_cache()
        with cache_overridden(memory=False):
            assert get_cache() is not before
        assert get_cache() is before
