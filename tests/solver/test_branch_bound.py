"""Tests for branch & bound, cross-validated against scipy's HiGHS MILP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.branch_bound import BranchAndBoundSolver, MIPStatus
from repro.solver.model import LinearProgram
from repro.solver.scipy_backend import solve_milp_scipy


class TestKnownProblems:
    def test_knapsack(self):
        lp = LinearProgram()
        a, b, c = (lp.add_binary(n) for n in "abc")
        lp.add_constraint(2 * a + 3 * b + 4 * c <= 5)
        lp.set_objective(3 * a + 4 * b + 5 * c, minimize=False)
        sol = BranchAndBoundSolver().solve(lp)
        assert sol.status is MIPStatus.OPTIMAL
        assert sol.objective == pytest.approx(7.0)
        assert list(sol.x) == [1, 1, 0]

    def test_integer_rounding_matters(self):
        # LP relaxation gives x = 2.5; the MIP optimum is x = 2.
        lp = LinearProgram()
        x = lp.add_var("x", ub=10, integer=True)
        lp.add_constraint(2 * x <= 5)
        lp.set_objective(x, minimize=False)
        sol = BranchAndBoundSolver().solve(lp)
        assert sol.objective == pytest.approx(2.0)

    def test_mixed_integer_continuous(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10, integer=True)
        y = lp.add_var("y", ub=10)
        lp.add_constraint(x + y == 7.5)
        lp.set_objective(2 * x + y)
        sol = BranchAndBoundSolver().solve(lp)
        assert sol.objective == pytest.approx(7.5)
        assert sol.x[0] == pytest.approx(0.0)

    def test_infeasible_integrality(self):
        # Feasible as an LP (x = 0.5) but infeasible as a pure integer
        # program.
        lp = LinearProgram()
        x = lp.add_var("x", ub=1, integer=True)
        lp.add_constraint(2 * x == 1)
        lp.set_objective(x)
        sol = BranchAndBoundSolver().solve(lp)
        assert sol.status is MIPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.add_var("x", integer=True)
        lp.set_objective(-x)
        sol = BranchAndBoundSolver().solve(lp)
        assert sol.status is MIPStatus.UNBOUNDED

    def test_scipy_lp_backend(self):
        lp = LinearProgram()
        a, b = lp.add_binary("a"), lp.add_binary("b")
        lp.add_constraint(a + b <= 1)
        lp.set_objective(2 * a + 3 * b, minimize=False)
        sol = BranchAndBoundSolver(lp_backend="scipy").solve(lp)
        assert sol.objective == pytest.approx(3.0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            BranchAndBoundSolver(lp_backend="gurobi")

    def test_node_budget_reports_feasible(self):
        rng = np.random.default_rng(3)
        lp = LinearProgram()
        xs = [lp.add_binary(f"x{i}") for i in range(12)]
        weights = rng.integers(1, 10, size=12)
        values = rng.integers(1, 10, size=12)
        lp.add_constraint(sum(int(w) * x for w, x in zip(weights, xs)) <= 25)
        lp.set_objective(sum(int(v) * x for v, x in zip(values, xs)), minimize=False)
        sol = BranchAndBoundSolver(max_nodes=3).solve(lp)
        assert sol.status in (MIPStatus.FEASIBLE, MIPStatus.OPTIMAL, MIPStatus.NO_SOLUTION)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_vars=st.integers(min_value=1, max_value=6),
)
def test_matches_highs_on_random_knapsacks(seed, n_vars):
    """Property: our B&B matches HiGHS on random 0/1 knapsacks."""
    rng = np.random.default_rng(seed)
    lp = LinearProgram()
    xs = [lp.add_binary(f"x{i}") for i in range(n_vars)]
    weights = rng.integers(1, 8, size=n_vars)
    values = rng.integers(1, 8, size=n_vars)
    capacity = int(rng.integers(1, max(2, int(weights.sum()))))
    lp.add_constraint(sum(int(w) * x for w, x in zip(weights, xs)) <= capacity)
    lp.set_objective(sum(int(v) * x for v, x in zip(values, xs)), minimize=False)

    ours = BranchAndBoundSolver().solve(lp)
    reference = solve_milp_scipy(lp)
    assert ours.ok and reference.ok
    assert ours.objective == pytest.approx(reference.objective, abs=1e-6)


class TestInfeasibleDetection:
    """A corrupted or over-constrained MIP must say INFEASIBLE, not crash
    or return a bogus incumbent (the plan checker trusts this status)."""

    def test_contradictory_bounds_via_constraints(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10, integer=True)
        lp.add_constraint(x >= 1)
        lp.add_constraint(x <= 0)
        lp.set_objective(x)
        sol = BranchAndBoundSolver().solve(lp)
        assert sol.status is MIPStatus.INFEASIBLE
        assert sol.x is None

    def test_no_integer_point_in_feasible_lp(self):
        # The LP relaxation is feasible (x = 0.5) but no integer point is.
        lp = LinearProgram()
        x = lp.add_var("x", ub=10, integer=True)
        lp.add_constraint(2 * x == 1)
        lp.set_objective(x)
        sol = BranchAndBoundSolver().solve(lp)
        assert sol.status is MIPStatus.INFEASIBLE

    def test_infeasible_with_presolve(self):
        # Presolve detects the contradiction before any LP is solved.
        lp = LinearProgram()
        x = lp.add_var("x", ub=5, integer=True)
        lp.add_constraint(x >= 3)
        lp.add_constraint(x <= 2)
        sol = BranchAndBoundSolver(presolve=True).solve(lp)
        assert sol.status is MIPStatus.INFEASIBLE

    def test_scipy_backend_agrees(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10, integer=True)
        lp.add_constraint(2 * x == 1)
        ours = BranchAndBoundSolver().solve(lp)
        theirs = solve_milp_scipy(lp)
        assert ours.status is MIPStatus.INFEASIBLE
        assert theirs.status is MIPStatus.INFEASIBLE
