"""Tests for the LP/MIP model builder."""

import math

import numpy as np
import pytest

from repro.solver.model import ConstraintSense, LinearExpr, LinearProgram


class TestExpressions:
    def test_variable_arithmetic(self):
        lp = LinearProgram()
        x, y = lp.add_var("x"), lp.add_var("y")
        expr = 2 * x + 3 * y - 1
        assert expr.coefs == {0: 2.0, 1: 3.0}
        assert expr.const == -1.0

    def test_subtraction_and_negation(self):
        lp = LinearProgram()
        x, y = lp.add_var("x"), lp.add_var("y")
        expr = -(x - y) / 2
        assert expr.coefs == {0: -0.5, 1: 0.5}

    def test_rsub(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        expr = 5 - x
        assert expr.coefs == {0: -1.0}
        assert expr.const == 5.0

    def test_sum_builtin(self):
        lp = LinearProgram()
        xs = [lp.add_var() for _ in range(3)]
        expr = sum(xs)
        assert expr.coefs == {0: 1.0, 1: 1.0, 2: 1.0}

    def test_evaluate(self):
        lp = LinearProgram()
        x, y = lp.add_var("x"), lp.add_var("y")
        expr = 2 * x + y + 1
        assert expr.evaluate(np.array([3.0, 4.0])) == pytest.approx(11.0)

    def test_nonlinear_multiplication_rejected(self):
        lp = LinearProgram()
        x, y = lp.add_var("x"), lp.add_var("y")
        with pytest.raises(TypeError):
            _ = x * y


class TestConstraints:
    def test_senses(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        assert (x <= 3).sense is ConstraintSense.LE
        assert (x >= 3).sense is ConstraintSense.GE
        assert (x == 3).sense is ConstraintSense.EQ

    def test_rhs_extraction(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        constraint = 2 * x + 1 <= 5
        assert constraint.rhs == pytest.approx(4.0)

    def test_add_constraint_type_check(self):
        lp = LinearProgram()
        with pytest.raises(TypeError):
            lp.add_constraint(42)

    def test_variable_bounds_validated(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.add_var("x", lb=2, ub=1)

    def test_binary_helper(self):
        lp = LinearProgram()
        b = lp.add_binary("b")
        assert b.integer and b.lb == 0 and b.ub == 1


class TestStandardForm:
    def test_le_and_ge_rows(self):
        lp = LinearProgram()
        x, y = lp.add_var("x"), lp.add_var("y")
        lp.add_constraint(x + y <= 4)
        lp.add_constraint(x - y >= 1)
        lp.set_objective(x)
        form = lp.to_standard_form()
        assert form.a_ub.shape == (2, 2)
        np.testing.assert_allclose(form.a_ub[0], [1, 1])
        np.testing.assert_allclose(form.a_ub[1], [-1, 1])  # GE negated
        np.testing.assert_allclose(form.b_ub, [4, -1])

    def test_eq_rows(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        lp.add_constraint(2 * x == 6)
        form = lp.to_standard_form()
        assert form.a_eq.shape == (1, 1)
        assert form.b_eq[0] == 6

    def test_maximisation_flips_objective(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=2)
        lp.set_objective(x, minimize=False)
        form = lp.to_standard_form()
        assert form.c[0] == -1.0
        assert form.objective_value(np.array([2.0])) == pytest.approx(2.0)

    def test_integrality_flags(self):
        lp = LinearProgram()
        lp.add_var("x")
        lp.add_binary("b")
        form = lp.to_standard_form()
        assert list(form.integer) == [False, True]

    def test_infinite_upper_bound_preserved(self):
        lp = LinearProgram()
        lp.add_var("x")
        form = lp.to_standard_form()
        assert math.isinf(form.ub[0])


class TestZeroCoefficientVariables:
    """Variables multiplied by zero (common when a prefetch term drops out
    of an Eq. 5 row) must not corrupt the standard form or the solve."""

    def test_zero_coef_kept_in_expression(self):
        lp = LinearProgram()
        x, y = lp.add_var("x"), lp.add_var("y")
        expr = x + 0 * y
        assert expr.coefs == {0: 1.0, 1: 0.0}
        assert expr.evaluate(np.array([2.0, 99.0])) == 2.0

    def test_standard_form_row_has_zero_entry(self):
        lp = LinearProgram()
        x, y = lp.add_var("x", ub=4), lp.add_var("y", ub=4)
        lp.add_constraint(x + 0 * y <= 3)
        lp.set_objective(x + y, minimize=False)
        form = lp.to_standard_form()
        assert form.a_ub.shape == (1, 2)
        assert form.a_ub[0, 1] == 0.0

    def test_solver_ignores_zero_coef_variable(self):
        from repro.solver.branch_bound import BranchAndBoundSolver, MIPStatus

        lp = LinearProgram()
        x = lp.add_var("x", ub=4, integer=True)
        y = lp.add_var("y", ub=4, integer=True)
        lp.add_constraint(x + 0 * y <= 3)
        lp.set_objective(x + y, minimize=False)
        sol = BranchAndBoundSolver().solve(lp)
        assert sol.status is MIPStatus.OPTIMAL
        # y is unconstrained by the row: it must reach its own upper bound.
        assert sol.objective == pytest.approx(7.0)
        assert list(sol.x) == [3, 4]

    def test_unreferenced_variable_survives_standard_form(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=2)
        lp.add_var("unused", ub=1)
        lp.add_constraint(x <= 2)
        lp.set_objective(x, minimize=False)
        form = lp.to_standard_form()
        assert form.c.shape == (2,)
        assert form.lb.shape == (2,) and form.ub.shape == (2,)
