"""Racing portfolio: bit-identity, tie-breaks, eligibility, fallbacks.

The inline executor scripts every interesting finish order without
processes; one smoke test exercises the real two-child pool.
"""

import pytest

from repro.check.corpus import default_corpus
from repro.core.partition import PartitionSearchCancelled, mip_partition
from repro.models.costmodel import CostModel
from repro.solver import portfolio
from repro.solver.portfolio import (
    DEFAULT_MAX_NODES,
    InlineRaceExecutor,
    RaceTask,
    _eligible,
    race_partition,
    shutdown_portfolio_pool,
)


def _cell_args(index=0):
    cell = default_corpus()[index]
    microbatch = cell.config.microbatch_size or cell.model.default_microbatch_size
    cost_model = CostModel(cell.topology.gpu_spec, microbatch)
    n_gpus = cell.topology.n_gpus
    return (
        cell.model,
        cost_model,
        n_gpus,
        cell.config.n_microbatches or n_gpus,
        cell.config.bandwidth or cell.topology.pcie_bandwidth,
    )


@pytest.fixture(scope="module")
def cell_args():
    return _cell_args()


@pytest.fixture(scope="module")
def solo(cell_args):
    return mip_partition(*cell_args)


class _BoomExecutor:
    """An executor that must never be consulted (guard-path sentinel)."""

    def race(self, task):
        raise AssertionError("race_partition consulted the executor")


class TestInlineOrderings:
    @pytest.mark.parametrize(
        "order,expected_backend",
        [
            (("bnb", "highs"), "bnb"),      # solo search finishes first
            (("highs", "bnb"), "highs"),    # HiGHS finishes first
            ((("bnb", "highs"),), "bnb"),   # photo finish: rank breaks it
            ((("highs", "bnb"),), "bnb"),   # ...regardless of reply order
        ],
        ids=["bnb-first", "highs-first", "tie", "tie-reversed"],
    )
    def test_every_ordering_is_bit_identical(
        self, cell_args, solo, order, expected_backend
    ):
        raced = race_partition(
            *cell_args, executor=InlineRaceExecutor(order)
        )
        assert raced.partition.boundaries == solo.partition.boundaries
        assert raced.timings.step_seconds == solo.timings.step_seconds
        assert raced.solver_backend == expected_backend

    def test_warm_start_hint_does_not_change_the_winner(self, cell_args, solo):
        raced = race_partition(
            *cell_args,
            warm_start=solo.partition,
            executor=InlineRaceExecutor(("highs", "bnb")),
        )
        assert raced.partition.boundaries == solo.partition.boundaries
        assert raced.solver_backend == "highs"

    def test_invalid_orders_are_rejected(self):
        with pytest.raises(ValueError):
            InlineRaceExecutor(("bnb", "bnb"))
        with pytest.raises(ValueError):
            InlineRaceExecutor(("bnb", "cplex"))


class TestEligibility:
    def test_bnb_is_always_eligible(self, solo):
        assert _eligible("bnb", solo)

        class _Truncated:
            optimal = False

        assert _eligible("bnb", _Truncated())

    def test_highs_requires_a_verified_search(self, solo):
        class _Unverified:
            optimal = False

        class _Verified:
            optimal = True

        assert not _eligible("highs", _Unverified())
        assert _eligible("highs", _Verified())

    def test_unverified_highs_loses_even_when_first(
        self, cell_args, solo, monkeypatch
    ):
        def fake_highs(task, poll=None):
            result = portfolio._solve_bnb(task)
            result.optimal = False
            result.solver_backend = "highs"
            return result

        monkeypatch.setitem(portfolio._BACKENDS, "highs", fake_highs)
        raced = race_partition(
            *cell_args, executor=InlineRaceExecutor(("highs", "bnb"))
        )
        assert raced.solver_backend == "bnb"
        assert raced.partition.boundaries == solo.partition.boundaries

    def test_all_backends_failing_still_answers_solo(
        self, cell_args, solo, monkeypatch
    ):
        def boom(task, poll=None):
            raise RuntimeError("backend crashed")

        monkeypatch.setitem(portfolio._BACKENDS, "bnb", boom)
        monkeypatch.setitem(portfolio._BACKENDS, "highs", boom)
        raced = race_partition(*cell_args, executor=InlineRaceExecutor())
        assert raced.partition.boundaries == solo.partition.boundaries
        assert raced.solver_backend == "bnb"


class TestFallsBackToSolo:
    def test_truncated_budgets_never_race(self, cell_args, solo):
        raced = race_partition(
            *cell_args, max_nodes=DEFAULT_MAX_NODES - 1, executor=_BoomExecutor()
        )
        assert raced.partition.boundaries == solo.partition.boundaries

    def test_cost_model_subclasses_never_race(self, cell_args, solo):
        class TracingCostModel(CostModel):
            pass

        model, cost_model, n_gpus, n_microbatches, bandwidth = cell_args
        custom = TracingCostModel(
            cost_model.gpu_spec, cost_model.microbatch_size
        )
        raced = race_partition(
            model, custom, n_gpus, n_microbatches, bandwidth,
            executor=_BoomExecutor(),
        )
        assert raced.partition.boundaries == solo.partition.boundaries

    def test_single_job_container_solves_solo_without_a_pool(
        self, cell_args, solo
    ):
        raced = race_partition(*cell_args, jobs=1)
        assert raced.partition.boundaries == solo.partition.boundaries
        assert raced.solver_backend == "bnb"
        assert portfolio._POOL == {}


class TestRealPool:
    def test_pool_race_is_bit_identical_and_shuts_down(self, cell_args, solo):
        try:
            raced = race_partition(*cell_args, jobs=2)
        finally:
            shutdown_portfolio_pool()
        assert raced.partition.boundaries == solo.partition.boundaries
        assert raced.timings.step_seconds == solo.timings.step_seconds
        assert raced.solver_backend in ("bnb", "highs")
        assert portfolio._POOL == {}


class TestCancellation:
    def test_poll_cancels_the_solo_search(self, cell_args):
        with pytest.raises(PartitionSearchCancelled):
            mip_partition(*cell_args, poll=lambda: True)

    def test_poll_cancels_the_highs_backend(self, cell_args):
        model, cost_model, n_gpus, n_microbatches, bandwidth = cell_args
        task = RaceTask(
            model=model,
            gpu_spec=cost_model.gpu_spec,
            microbatch_size=cost_model.microbatch_size,
            recompute=cost_model.recompute,
            precision=cost_model.precision,
            n_gpus=n_gpus,
            n_microbatches=n_microbatches,
            bandwidth=bandwidth,
            gpu_memory=cost_model.usable_gpu_bytes(),
            time_limit=10.0,
            max_nodes=DEFAULT_MAX_NODES,
            warm_boundaries=None,
        )
        with pytest.raises(PartitionSearchCancelled):
            portfolio._solve_highs(task, poll=lambda: True)
