"""Racing portfolio: bit-identity, tie-breaks, eligibility, fallbacks.

The inline executor scripts every interesting finish order without
processes; one smoke test exercises the real two-child pool.
"""

import pytest

from repro.check.corpus import default_corpus
from repro.core.partition import PartitionSearchCancelled, mip_partition
from repro.models.costmodel import CostModel
from repro.solver import portfolio
from repro.solver.portfolio import (
    DEFAULT_MAX_NODES,
    InlineRaceExecutor,
    RaceTask,
    _eligible,
    race_partition,
    shutdown_portfolio_pool,
)


def _cell_args(index=0):
    cell = default_corpus()[index]
    microbatch = cell.config.microbatch_size or cell.model.default_microbatch_size
    cost_model = CostModel(cell.topology.gpu_spec, microbatch)
    n_gpus = cell.topology.n_gpus
    return (
        cell.model,
        cost_model,
        n_gpus,
        cell.config.n_microbatches or n_gpus,
        cell.config.bandwidth or cell.topology.pcie_bandwidth,
    )


@pytest.fixture(scope="module")
def cell_args():
    return _cell_args()


@pytest.fixture(scope="module")
def solo(cell_args):
    return mip_partition(*cell_args)


class _BoomExecutor:
    """An executor that must never be consulted (guard-path sentinel)."""

    def race(self, task):
        raise AssertionError("race_partition consulted the executor")


class TestInlineOrderings:
    @pytest.mark.parametrize(
        "order,expected_backend",
        [
            (("bnb", "highs"), "bnb"),      # solo search finishes first
            (("highs", "bnb"), "highs"),    # HiGHS finishes first
            ((("bnb", "highs"),), "bnb"),   # photo finish: rank breaks it
            ((("highs", "bnb"),), "bnb"),   # ...regardless of reply order
        ],
        ids=["bnb-first", "highs-first", "tie", "tie-reversed"],
    )
    def test_every_ordering_is_bit_identical(
        self, cell_args, solo, order, expected_backend
    ):
        raced = race_partition(
            *cell_args, executor=InlineRaceExecutor(order)
        )
        assert raced.partition.boundaries == solo.partition.boundaries
        assert raced.timings.step_seconds == solo.timings.step_seconds
        assert raced.solver_backend == expected_backend

    def test_warm_start_hint_does_not_change_the_winner(self, cell_args, solo):
        raced = race_partition(
            *cell_args,
            warm_start=solo.partition,
            executor=InlineRaceExecutor(("highs", "bnb")),
        )
        assert raced.partition.boundaries == solo.partition.boundaries
        assert raced.solver_backend == "highs"

    def test_invalid_orders_are_rejected(self):
        with pytest.raises(ValueError):
            InlineRaceExecutor(("bnb", "bnb"))
        with pytest.raises(ValueError):
            InlineRaceExecutor(("bnb", "cplex"))


class TestEligibility:
    def test_bnb_is_always_eligible(self, solo):
        assert _eligible("bnb", solo)

        class _Truncated:
            optimal = False

        assert _eligible("bnb", _Truncated())

    def test_highs_requires_a_verified_and_certified_search(self, solo):
        class _Unverified:
            optimal = False
            shadow_optimal = True

        class _Uncertified:
            # Exhausted *with* the hint, but the solo-seeded search is
            # not proven to exhaust: hint-dependent, must not win.
            optimal = True
            shadow_optimal = False

        class _Verified:
            optimal = True
            shadow_optimal = True

        assert not _eligible("highs", _Unverified())
        assert not _eligible("highs", _Uncertified())
        assert _eligible("highs", _Verified())
        # A result predating the certificate field is never eligible.
        class _Legacy:
            optimal = True

        assert not _eligible("highs", _Legacy())

    def test_unverified_highs_loses_even_when_first(
        self, cell_args, solo, monkeypatch
    ):
        def fake_highs(task, poll=None):
            result = portfolio._solve_bnb(task)
            result.optimal = False
            result.solver_backend = "highs"
            return result

        monkeypatch.setitem(portfolio._BACKENDS, "highs", fake_highs)
        raced = race_partition(
            *cell_args, executor=InlineRaceExecutor(("highs", "bnb"))
        )
        assert raced.solver_backend == "bnb"
        assert raced.partition.boundaries == solo.partition.boundaries

    def test_uncertified_highs_loses_even_when_first(
        self, cell_args, solo, monkeypatch
    ):
        def fake_highs(task, poll=None):
            result = portfolio._solve_bnb(task)
            result.shadow_optimal = False
            result.solver_backend = "highs"
            return result

        monkeypatch.setitem(portfolio._BACKENDS, "highs", fake_highs)
        raced = race_partition(
            *cell_args, executor=InlineRaceExecutor(("highs", "bnb"))
        )
        assert raced.solver_backend == "bnb"
        assert raced.partition.boundaries == solo.partition.boundaries

    def test_all_backends_failing_still_answers_solo(
        self, cell_args, solo, monkeypatch
    ):
        def boom(task, poll=None):
            raise RuntimeError("backend crashed")

        monkeypatch.setitem(portfolio._BACKENDS, "bnb", boom)
        monkeypatch.setitem(portfolio._BACKENDS, "highs", boom)
        raced = race_partition(*cell_args, executor=InlineRaceExecutor())
        assert raced.partition.boundaries == solo.partition.boundaries
        assert raced.solver_backend == "bnb"


class TestFallsBackToSolo:
    def test_truncated_budgets_never_race(self, cell_args, solo):
        raced = race_partition(
            *cell_args, max_nodes=DEFAULT_MAX_NODES - 1, executor=_BoomExecutor()
        )
        assert raced.partition.boundaries == solo.partition.boundaries

    def test_cost_model_subclasses_never_race(self, cell_args, solo):
        class TracingCostModel(CostModel):
            pass

        model, cost_model, n_gpus, n_microbatches, bandwidth = cell_args
        custom = TracingCostModel(
            cost_model.gpu_spec, cost_model.microbatch_size
        )
        raced = race_partition(
            model, custom, n_gpus, n_microbatches, bandwidth,
            executor=_BoomExecutor(),
        )
        assert raced.partition.boundaries == solo.partition.boundaries

    def test_single_job_container_solves_solo_without_a_pool(
        self, cell_args, solo
    ):
        raced = race_partition(*cell_args, jobs=1)
        assert raced.partition.boundaries == solo.partition.boundaries
        assert raced.solver_backend == "bnb"
        assert portfolio._PAIRS == [] and portfolio._IDLE_PAIRS == []


class TestRealPool:
    def test_pool_race_is_bit_identical_and_shuts_down(self, cell_args, solo):
        try:
            raced = race_partition(*cell_args, jobs=2)
        finally:
            shutdown_portfolio_pool()
        assert raced.partition.boundaries == solo.partition.boundaries
        assert raced.timings.step_seconds == solo.timings.step_seconds
        assert raced.solver_backend in ("bnb", "highs")
        assert portfolio._PAIRS == [] and portfolio._IDLE_PAIRS == []


class _FakePair:
    """Stands in for _RacePair so lease bookkeeping tests spawn nothing."""

    def __init__(self) -> None:
        self.closed = False

    def close(self) -> None:
        self.closed = True


class TestPairLeasing:
    """Concurrent races lease distinct pairs instead of serializing."""

    @pytest.fixture(autouse=True)
    def fake_pairs(self, monkeypatch):
        monkeypatch.setattr(portfolio, "_RacePair", _FakePair)
        monkeypatch.setattr(portfolio, "_max_pairs", lambda: 2)
        yield
        shutdown_portfolio_pool()

    def test_concurrent_leases_get_distinct_pairs_up_to_the_cap(self):
        first = portfolio._acquire_pair()
        second = portfolio._acquire_pair()
        assert first is not None and second is not None
        assert first[0] is not second[0]          # no shared pipes/events
        assert first[1] != second[1]              # distinct race ids
        assert portfolio._acquire_pair() is None  # at capacity: solo fallback
        portfolio._release_pair(first[0])
        third = portfolio._acquire_pair()
        assert third is not None and third[0] is first[0]  # idle pair reused
        portfolio._release_pair(second[0])
        portfolio._release_pair(third[0])
        shutdown_portfolio_pool()
        assert first[0].closed and second[0].closed
        assert portfolio._PAIRS == [] and portfolio._IDLE_PAIRS == []

    def test_shutdown_mid_race_closes_the_pair_at_release(self):
        leased = portfolio._acquire_pair()
        assert leased is not None
        shutdown_portfolio_pool()
        assert not leased[0].closed               # race still owns it
        portfolio._release_pair(leased[0])
        assert leased[0].closed                   # closed once the race ends
        assert portfolio._PAIRS == [] and portfolio._IDLE_PAIRS == []


class TestShadowCertificate:
    """A hint can let the search exhaust where the cold solo search would
    hit the node budget and return its (hint-independent) incumbent; the
    shadow certificate must refuse exactly those hint-dependent wins."""

    def test_hint_dependent_exhaustion_is_uncertified(self, monkeypatch):
        from repro.core import partition as P

        args = _cell_args(3)  # gpt-b/topo_2_2
        optimum = mip_partition(*args)
        assert optimum.optimal

        def weak_warm_start(ctx):
            # The *worst* feasible balanced split: a deliberately bad
            # incumbent makes the cold search do maximal work, so a good
            # hint visibly prunes and opens the solo-truncation window.
            worst, worst_time = None, float("-inf")
            for n_stages in range(max(1, ctx.n_gpus), ctx.model.n_layers + 1):
                boundaries = P._balanced_boundaries(ctx.model.n_layers, n_stages)
                timings = ctx.evaluate(boundaries)
                if timings.feasible and timings.step_seconds > worst_time:
                    worst, worst_time = boundaries, timings.step_seconds
            if worst is None:
                return None, float("inf")
            return worst, worst_time

        monkeypatch.setattr(P, "_warm_start", weak_warm_start)
        cold = mip_partition(*args)
        # shadow_warm_start=None models the highs verification pass when
        # the race caller supplied no hint: the shadow (solo) search is
        # seeded cold, not with HiGHS's boundaries.
        hinted_full = mip_partition(
            *args, warm_start=optimum.partition, shadow_warm_start=None
        )
        # With an ample budget both exhaust; the hinted search prunes more
        # and is still certified, because the solo search exhausts too.
        assert cold.optimal and hinted_full.optimal
        assert hinted_full.nodes_explored < cold.nodes_explored
        assert hinted_full.shadow_optimal

        budget = hinted_full.nodes_explored
        solo = mip_partition(*args, max_nodes=budget)
        hinted = mip_partition(
            *args,
            max_nodes=budget,
            warm_start=optimum.partition,
            shadow_warm_start=None,
        )
        assert not solo.optimal       # the cold search truncates here...
        assert hinted.optimal         # ...the hinted one exhausts...
        assert not hinted.shadow_optimal  # ...and the certificate refuses it
        assert not _eligible("highs", hinted)

    def test_self_seeded_search_is_always_certified(self, cell_args, solo):
        assert solo.shadow_optimal
        truncated = mip_partition(*cell_args, max_nodes=2)
        assert not truncated.optimal and not truncated.shadow_optimal


class TestCancellation:
    def test_poll_cancels_the_solo_search(self, cell_args):
        with pytest.raises(PartitionSearchCancelled):
            mip_partition(*cell_args, poll=lambda: True)

    def test_poll_cancels_the_highs_backend(self, cell_args):
        model, cost_model, n_gpus, n_microbatches, bandwidth = cell_args
        task = RaceTask(
            model=model,
            gpu_spec=cost_model.gpu_spec,
            microbatch_size=cost_model.microbatch_size,
            recompute=cost_model.recompute,
            precision=cost_model.precision,
            n_gpus=n_gpus,
            n_microbatches=n_microbatches,
            bandwidth=bandwidth,
            gpu_memory=cost_model.usable_gpu_bytes(),
            time_limit=10.0,
            max_nodes=DEFAULT_MAX_NODES,
            warm_boundaries=None,
        )
        with pytest.raises(PartitionSearchCancelled):
            portfolio._solve_highs(task, poll=lambda: True)
