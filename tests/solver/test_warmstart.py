"""Warm-start invariance: a hint may shrink the tree, never change the answer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.branch_bound import BranchAndBoundSolver, MIPStatus
from repro.solver.model import LinearProgram
from repro.solver.warmstart import WarmStartContext


def _knapsack(seed: int, n_vars: int) -> LinearProgram:
    rng = np.random.default_rng(seed)
    lp = LinearProgram()
    xs = [lp.add_var(f"x{i}", lb=0, ub=3, integer=True) for i in range(n_vars)]
    weights = rng.integers(1, 10, size=n_vars)
    values = rng.integers(1, 10, size=n_vars)
    capacity = int(weights.sum() // 2) + 1
    lp.add_constraint(sum(int(w) * x for w, x in zip(weights, xs)) <= capacity)
    lp.set_objective(sum(-int(v) * x for v, x in zip(values, xs)))
    return lp


class TestWarmStartContext:
    def test_from_partition_duck_types(self):
        class Dummy:
            boundaries = (2, 5, 9)

        ctx = WarmStartContext.from_partition(Dummy())
        assert ctx.boundaries == (2, 5, 9)
        assert WarmStartContext.from_partition([1, 2]).boundaries == (1, 2)

    def test_from_partition_rejects_garbage(self):
        with pytest.raises(TypeError):
            WarmStartContext.from_partition(object())

    def test_from_mip_requires_x(self):
        solution = BranchAndBoundSolver().solve(_knapsack(0, 3))
        ctx = WarmStartContext.from_mip(solution)
        np.testing.assert_array_equal(ctx.x_array(), solution.x)
        with pytest.raises(TypeError):
            WarmStartContext.from_mip(MIPStatus.INFEASIBLE)

    def test_is_hashable_and_frozen(self):
        ctx = WarmStartContext(boundaries=(1, 2), label="t")
        hash(ctx)
        with pytest.raises(Exception):
            ctx.label = "other"


class TestWarmEqualsCold:
    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 1_000), n_vars=st.integers(2, 6))
    def test_bit_identical_x_and_no_larger_tree(self, seed, n_vars):
        lp = _knapsack(seed, n_vars)
        cold = BranchAndBoundSolver().solve(lp)
        assert cold.status is MIPStatus.OPTIMAL
        warm = BranchAndBoundSolver().solve(
            lp, warm_start=WarmStartContext.from_mip(cold)
        )
        assert warm.status is cold.status
        assert warm.warm_started
        np.testing.assert_array_equal(warm.x, cold.x)
        assert warm.objective == cold.objective
        assert warm.nodes_explored <= cold.nodes_explored

    def test_infeasible_hint_is_ignored(self):
        lp = _knapsack(7, 4)
        cold = BranchAndBoundSolver().solve(lp)
        bogus = WarmStartContext(x=tuple(100.0 for _ in cold.x))
        warm = BranchAndBoundSolver().solve(lp, warm_start=bogus)
        assert not warm.warm_started
        np.testing.assert_array_equal(warm.x, cold.x)

    def test_wrong_length_hint_is_ignored(self):
        lp = _knapsack(3, 4)
        cold = BranchAndBoundSolver().solve(lp)
        warm = BranchAndBoundSolver().solve(
            lp, warm_start=WarmStartContext(x=(1.0,))
        )
        np.testing.assert_array_equal(warm.x, cold.x)

    def test_hint_survives_presolve_mapping(self):
        # Presolve fixes variables; the hint must be translated into the
        # reduced space (or dropped) without changing the result.
        lp = LinearProgram()
        fixed = lp.add_var("fixed", lb=2, ub=2, integer=True)
        free = lp.add_var("free", lb=0, ub=5, integer=True)
        lp.add_constraint(fixed + 2 * free <= 8)
        lp.set_objective(-1 * fixed - 3 * free)
        cold = BranchAndBoundSolver(presolve=True).solve(lp)
        warm = BranchAndBoundSolver(presolve=True).solve(
            lp, warm_start=WarmStartContext.from_mip(cold)
        )
        np.testing.assert_array_equal(warm.x, cold.x)
        assert warm.objective == cold.objective
