"""Objective parity: pure-Python branch & bound vs scipy HiGHS over the
literal partition MIPs of every check-corpus cell (satellite of the solver
overhaul — the two stacks must agree on every feasible cell, and on status
for infeasible instances)."""

import numpy as np
import pytest

from repro.models.costmodel import CostModel
from repro.solver.bench import _bench_mip_instances
from repro.solver.branch_bound import BranchAndBoundSolver, MIPStatus
from repro.solver.scipy_backend import solve_milp_scipy

_INSTANCES = _bench_mip_instances()


@pytest.mark.parametrize(
    "name,lp", _INSTANCES, ids=[name for name, _ in _INSTANCES]
)
def test_objective_parity_on_feasible_cells(name, lp):
    ours = BranchAndBoundSolver(presolve=True).solve(lp)
    theirs = solve_milp_scipy(lp)
    assert ours.status is MIPStatus.OPTIMAL
    assert theirs.status is MIPStatus.OPTIMAL
    assert ours.objective == pytest.approx(theirs.objective, rel=1e-6, abs=1e-6)
    # Our point must satisfy the model to the same tolerance HiGHS's does.
    form = lp.to_standard_form()
    assert np.all(form.a_ub @ ours.x <= form.b_ub + 1e-6)
    assert np.allclose(ours.x[form.integer], np.round(ours.x[form.integer]))


def test_status_parity_on_infeasible_instance():
    # Shrink GPU memory until no stage assignment fits: both solvers must
    # report INFEASIBLE, not a bogus incumbent.
    from repro.check.corpus import default_corpus
    from repro.core.mip_formulation import build_partition_mip

    cell = default_corpus()[0]
    microbatch = cell.config.microbatch_size or cell.model.default_microbatch_size
    cost_model = CostModel(cell.topology.gpu_spec, microbatch)
    n = cell.topology.n_gpus
    lp, _ = build_partition_mip(
        cell.model, cost_model, n, n,
        cell.config.n_microbatches or n,
        cell.config.bandwidth or cell.topology.pcie_bandwidth,
        int(1e6),  # 1 MB of GPU memory: nothing fits
    )
    ours = BranchAndBoundSolver(presolve=True).solve(lp)
    theirs = solve_milp_scipy(lp)
    assert ours.status is MIPStatus.INFEASIBLE
    assert theirs.status is MIPStatus.INFEASIBLE
