"""Tests for the dense two-phase simplex, cross-validated against HiGHS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.model import LinearProgram
from repro.solver.scipy_backend import solve_lp_scipy
from repro.solver.simplex import LPStatus, solve_standard_form


def solve(lp):
    return solve_standard_form(lp.to_standard_form())


class TestBasicLPs:
    def test_two_variable_optimum(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        y = lp.add_var("y", ub=2)
        lp.add_constraint(x + y <= 4)
        lp.add_constraint(x <= 3)
        lp.set_objective(-(x + y))
        sol = solve(lp)
        assert sol.status is LPStatus.OPTIMAL
        assert sol.objective == pytest.approx(-4.0)

    def test_equality_constraint(self):
        lp = LinearProgram()
        x, y = lp.add_var("x"), lp.add_var("y")
        lp.add_constraint(x + y == 5)
        lp.set_objective(2 * x + y)
        sol = solve(lp)
        assert sol.objective == pytest.approx(5.0)  # all weight on y

    def test_infeasible(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=1)
        lp.add_constraint(x >= 2)
        lp.set_objective(x)
        assert solve(lp).status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        lp.set_objective(-x)
        assert solve(lp).status is LPStatus.UNBOUNDED

    def test_shifted_lower_bounds(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=3, ub=10)
        lp.set_objective(x)
        sol = solve(lp)
        assert sol.x[0] == pytest.approx(3.0)
        assert sol.objective == pytest.approx(3.0)

    def test_negative_lower_bounds(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=-5, ub=5)
        lp.set_objective(x)
        sol = solve(lp)
        assert sol.objective == pytest.approx(-5.0)

    def test_degenerate_constraints(self):
        # Redundant constraints exercise artificial-variable cleanup.
        lp = LinearProgram()
        x, y = lp.add_var("x"), lp.add_var("y")
        lp.add_constraint(x + y == 4)
        lp.add_constraint(2 * x + 2 * y == 8)  # redundant
        lp.set_objective(x - y)
        sol = solve(lp)
        assert sol.status is LPStatus.OPTIMAL
        assert sol.objective == pytest.approx(-4.0)

    def test_zero_objective(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=1)
        lp.add_constraint(x >= 0.5)
        lp.set_objective(0.0 * x)
        sol = solve(lp)
        assert sol.status is LPStatus.OPTIMAL
        assert sol.objective == pytest.approx(0.0)

    def test_infinite_lower_bound_rejected(self):
        lp = LinearProgram()
        lp.add_var("x", lb=-np.inf)
        lp.set_objective(0.0)
        with pytest.raises(ValueError):
            solve(lp)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_vars=st.integers(min_value=1, max_value=5),
    n_cons=st.integers(min_value=1, max_value=6),
)
def test_matches_highs_on_random_lps(seed, n_vars, n_cons):
    """Property: on random bounded LPs our simplex matches HiGHS."""
    rng = np.random.default_rng(seed)
    lp = LinearProgram()
    xs = [lp.add_var(f"x{i}", lb=0.0, ub=float(rng.integers(1, 10))) for i in range(n_vars)]
    for _ in range(n_cons):
        coefs = rng.integers(-3, 4, size=n_vars).astype(float)
        rhs = float(rng.integers(-5, 15))
        expr = sum(c * x for c, x in zip(coefs, xs))
        if not isinstance(expr, (int, float)):
            lp.add_constraint(expr <= rhs)
    objective = sum(float(rng.integers(-5, 6)) * x for x in xs)
    lp.set_objective(objective)

    ours = solve(lp)
    reference = solve_lp_scipy(lp.to_standard_form())
    assert ours.status == reference.status
    if ours.status is LPStatus.OPTIMAL:
        assert ours.objective == pytest.approx(reference.objective, abs=1e-6)
