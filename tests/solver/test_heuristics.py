"""Tests for the rounding/diving primal heuristics."""

import numpy as np

from repro.solver.heuristics import dive, round_and_repair
from repro.solver.model import LinearProgram
from repro.solver.simplex import LPStatus, RevisedSimplex


def _feasible(form, x, tol=1e-6):
    if np.any(x < form.lb - tol) or np.any(x > form.ub + tol):
        return False
    if form.a_ub.size and np.any(form.a_ub @ x > form.b_ub + tol):
        return False
    if form.a_eq.size and np.any(np.abs(form.a_eq @ x - form.b_eq) > tol):
        return False
    return True


def _solved(lp):
    form = lp.to_standard_form()
    simplex = RevisedSimplex(form)
    solution = simplex.solve()
    assert solution.status is LPStatus.OPTIMAL
    return form, simplex, solution


class TestRoundAndRepair:
    def test_mixed_instance_repaired(self):
        # min -x - 10y with integer y; rounding y and re-optimizing x must
        # yield an integer-feasible point.
        lp = LinearProgram()
        x = lp.add_var("x", lb=0, ub=10)
        y = lp.add_var("y", lb=0, ub=10, integer=True)
        lp.add_constraint(2 * x + 3 * y <= 12)
        lp.set_objective(-1 * x - 10 * y)
        form, simplex, solution = _solved(lp)
        point = round_and_repair(simplex, form, solution.x)
        assert point is not None
        assert _feasible(form, point)
        assert np.allclose(point[form.integer], np.round(point[form.integer]))

    def test_infeasible_rounding_returns_none(self):
        # x + y == 1 over binaries; LP point (0.5, 0.5) rounds to (0, 0)
        # (round-half-to-even), violating the equality with no continuous
        # slack to repair it.
        lp = LinearProgram()
        x = lp.add_binary("x")
        y = lp.add_binary("y")
        lp.add_constraint(x + y == 1)
        lp.set_objective(-1 * x - 1 * y)
        form = lp.to_standard_form()
        simplex = RevisedSimplex(form)
        assert simplex.solve().status is LPStatus.OPTIMAL
        point = round_and_repair(simplex, form, np.array([0.5, 0.5]))
        assert point is None or _feasible(form, point)


class TestDive:
    def test_dive_reaches_integer_feasible_point(self):
        lp = LinearProgram()
        xs = [lp.add_var(f"x{i}", lb=0, ub=3, integer=True) for i in range(3)]
        lp.add_constraint(3 * xs[0] + 5 * xs[1] + 7 * xs[2] <= 11)
        lp.set_objective(-4 * xs[0] - 6 * xs[1] - 9 * xs[2])
        form, simplex, solution = _solved(lp)
        point = dive(simplex, form, solution.x)
        assert point is not None
        assert _feasible(form, point)
        assert np.allclose(point[form.integer], np.round(point[form.integer]))

    def test_dive_is_deterministic(self):
        lp = LinearProgram()
        xs = [lp.add_var(f"x{i}", lb=0, ub=4, integer=True) for i in range(4)]
        lp.add_constraint(2 * xs[0] + 3 * xs[1] + 4 * xs[2] + 5 * xs[3] <= 10)
        lp.set_objective(-5 * xs[0] - 4 * xs[1] - 3 * xs[2] - 2 * xs[3])
        form, simplex, solution = _solved(lp)
        first = dive(simplex, form, solution.x.copy())
        form2, simplex2, solution2 = _solved(lp)
        second = dive(simplex2, form2, solution2.x.copy())
        if first is None:
            assert second is None
        else:
            np.testing.assert_array_equal(first, second)
