"""Tests for Gomory fractional and knapsack-cover cutting planes."""

import itertools

import numpy as np
import pytest

from repro.solver.cuts import cover_cuts, gomory_cuts
from repro.solver.model import LinearProgram
from repro.solver.simplex import LPStatus, RevisedSimplex


def _integer_points(form):
    """Every integer point of a small all-integer ``form``'s box."""
    ranges = [
        range(int(lo), int(hi) + 1) for lo, hi in zip(form.lb, form.ub)
    ]
    for point in itertools.product(*ranges):
        x = np.asarray(point, dtype=float)
        if form.a_ub.size and np.any(form.a_ub @ x > form.b_ub + 1e-9):
            continue
        yield x


def _assert_valid_cut(form, coefs, rhs):
    """A cut must not remove any integer-feasible point."""
    for x in _integer_points(form):
        assert float(np.dot(coefs, x)) <= rhs + 1e-6, (
            f"cut {coefs} <= {rhs} removes integer point {x}"
        )


class TestGomoryCuts:
    def _fractional_instance(self):
        # max x + y s.t. 3x + 2y <= 6, -3x + 2y <= 0 — LP optimum at
        # (1, 1.5), both integer vars fractional in the basis.
        lp = LinearProgram()
        x = lp.add_var("x", lb=0, ub=4, integer=True)
        y = lp.add_var("y", lb=0, ub=4, integer=True)
        lp.add_constraint(3 * x + 2 * y <= 6)
        lp.add_constraint(-3 * x + 2 * y <= 0)
        lp.set_objective(-1 * x - 1 * y)  # minimize -(x + y)
        return lp.to_standard_form()

    def test_cuts_are_valid_and_violated(self):
        form = self._fractional_instance()
        simplex = RevisedSimplex(form)
        solution = simplex.solve()
        assert solution.status is LPStatus.OPTIMAL
        frac = solution.x - np.floor(solution.x)
        assert np.any(np.abs(frac - 0.5) < 0.49), "relaxation should be fractional"
        cuts = gomory_cuts(simplex, form)
        assert cuts, "a fractional basis row should produce a cut"
        for coefs, rhs in cuts:
            _assert_valid_cut(form, coefs, rhs)
            assert float(np.dot(coefs, solution.x)) > rhs + 1e-9, (
                "a Gomory cut must separate the LP point"
            )

    def test_integral_relaxation_produces_no_cuts(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=0, ub=3, integer=True)
        lp.add_constraint(x <= 2)
        lp.set_objective(-1 * x)
        form = lp.to_standard_form()
        simplex = RevisedSimplex(form)
        assert simplex.solve().status is LPStatus.OPTIMAL
        assert gomory_cuts(simplex, form) == []

    def test_requires_a_prior_solve(self):
        form = self._fractional_instance()
        simplex = RevisedSimplex(form)
        assert gomory_cuts(simplex, form) == []


class TestCoverCuts:
    def _knapsack(self):
        # 3x1 + 3x2 + 3x3 <= 5 over binaries: any two items overflow.
        lp = LinearProgram()
        xs = [lp.add_binary(f"x{i}") for i in range(3)]
        lp.add_constraint(3 * xs[0] + 3 * xs[1] + 3 * xs[2] <= 5)
        lp.set_objective(-1 * xs[0] - 1 * xs[1] - 1 * xs[2])
        return lp.to_standard_form()

    def test_violated_cover_found(self):
        form = self._knapsack()
        x_lp = np.array([0.9, 0.767, 0.0])  # fractional LP-ish point
        cuts = cover_cuts(form, x_lp)
        assert cuts
        for coefs, rhs in cuts:
            _assert_valid_cut(form, coefs, rhs)
            assert float(np.dot(coefs, x_lp)) > rhs + 1e-9

    def test_integral_point_yields_nothing(self):
        form = self._knapsack()
        assert cover_cuts(form, np.array([1.0, 0.0, 0.0])) == []

    def test_non_knapsack_rows_skipped(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=0, ub=10)  # continuous: not a knapsack
        y = lp.add_binary("y")
        lp.add_constraint(2 * x + 3 * y <= 4)
        lp.set_objective(-1 * x)
        form = lp.to_standard_form()
        assert cover_cuts(form, np.array([0.5, 0.9])) == []


class TestCutsInsideBranchAndBound:
    def test_cuts_do_not_change_the_answer(self):
        from repro.solver.branch_bound import BranchAndBoundSolver, MIPStatus

        lp = LinearProgram()
        xs = [lp.add_var(f"x{i}", lb=0, ub=5, integer=True) for i in range(4)]
        lp.add_constraint(6 * xs[0] + 5 * xs[1] + 4 * xs[2] + 3 * xs[3] <= 13)
        lp.add_constraint(2 * xs[0] + 3 * xs[1] + 5 * xs[2] + 7 * xs[3] <= 11)
        lp.set_objective(-9 * xs[0] - 7 * xs[1] - 6 * xs[2] - 4 * xs[3])
        with_cuts = BranchAndBoundSolver(cuts=2).solve(lp)
        without = BranchAndBoundSolver(cuts=0).solve(lp)
        assert with_cuts.status is MIPStatus.OPTIMAL
        assert with_cuts.objective == pytest.approx(without.objective, abs=1e-9)
        np.testing.assert_allclose(with_cuts.x, without.x, atol=1e-9)
