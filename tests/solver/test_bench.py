"""Tests for the solvebench document and its CI regression gate."""

import json

import pytest

from repro.cli import main
from repro.solver.bench import BENCH_SCHEMA, compare_benchmarks, write_bench


def _doc(**overrides):
    base = {
        "schema": BENCH_SCHEMA,
        "suite_uncached": {"before_seconds": 85.7, "after_seconds": 35.2},
        "mip": [
            {
                "name": "a/S4",
                "status": "optimal",
                "parity": True,
                "warm_identical": True,
                "nodes": 100,
                "pivots": 500,
                "warm_nodes": 100,
                "wall_seconds": 1.0,
            }
        ],
        "partition": [
            {
                "name": "a",
                "parity": True,
                "warm_identical": True,
                "nodes": 50,
                "warm_nodes": 50,
                "wall_seconds": 0.1,
            }
        ],
        "portfolio": [
            {
                "name": "a",
                "boundaries": [2],
                "parity": True,
                "winner": "bnb",
                "raced": True,
                "highs_verified": True,
                "highs_certified": True,
                "bnb_wall_seconds": 0.1,
                "highs_wall_seconds": 0.2,
                "race_wall_seconds": 0.1,
            }
        ],
        "portfolio_wins": {"bnb": 1},
    }
    base.update(overrides)
    return base


class TestCompareBenchmarks:
    def test_identical_documents_pass(self):
        assert compare_benchmarks(_doc(), _doc()) == []

    def test_wall_time_is_ignored(self):
        slow = _doc()
        slow["mip"][0]["wall_seconds"] = 999.0
        assert compare_benchmarks(slow, _doc()) == []

    def test_parity_regression_fails(self):
        bad = _doc()
        bad["mip"][0]["parity"] = False
        failures = compare_benchmarks(bad, _doc())
        assert any("parity" in f for f in failures)

    def test_node_regression_fails_beyond_25_percent(self):
        worse = _doc()
        worse["mip"][0]["nodes"] = 126  # > 1.25 * 100
        failures = compare_benchmarks(worse, _doc())
        assert any("node count" in f for f in failures)
        borderline = _doc()
        borderline["mip"][0]["nodes"] = 125  # exactly 1.25x: allowed
        assert compare_benchmarks(borderline, _doc()) == []

    def test_node_improvement_passes(self):
        better = _doc()
        better["mip"][0]["nodes"] = 10
        assert compare_benchmarks(better, _doc()) == []

    def test_warm_divergence_fails(self):
        bad = _doc()
        bad["partition"][0]["warm_identical"] = False
        failures = compare_benchmarks(bad, _doc())
        assert any("warm" in f for f in failures)

    def test_missing_instance_fails_both_ways(self):
        shrunk = _doc(mip=[])
        assert any(
            "missing from current" in f for f in compare_benchmarks(shrunk, _doc())
        )
        assert any(
            "missing from baseline" in f for f in compare_benchmarks(_doc(), shrunk)
        )

    def test_portfolio_divergence_fails(self):
        bad = _doc()
        bad["portfolio"] = [dict(bad["portfolio"][0], parity=False, winner="highs")]
        failures = compare_benchmarks(bad, _doc())
        assert any("diverged from solo B&B" in f for f in failures)

    def test_portfolio_divergence_fails_even_without_baseline_row(self):
        # Parity is an invariant, not a baseline comparison: a diverging
        # race fails the gate even when the baseline predates portfolios.
        baseline = _doc()
        del baseline["portfolio"], baseline["portfolio_wins"]
        bad = _doc()
        bad["portfolio"][0]["parity"] = False
        assert any(
            "diverged from solo B&B" in f
            for f in compare_benchmarks(bad, baseline)
        )

    def test_portfolio_decertification_fails(self):
        # A cell whose highs verification exhausts but loses the shadow
        # certificate silently stops racing: the gate must say so.
        bad = _doc()
        bad["portfolio"][0]["highs_certified"] = False
        failures = compare_benchmarks(bad, _doc())
        assert any("shadow certificate" in f for f in failures)
        # Truncated verification (unverified) is hardware-budget-dependent
        # and is not gated.
        truncated = _doc()
        truncated["portfolio"][0]["highs_verified"] = False
        truncated["portfolio"][0]["highs_certified"] = False
        assert compare_benchmarks(truncated, _doc()) == []

    def test_portfolio_row_missing_from_current_fails(self):
        shrunk = _doc(portfolio=[], portfolio_wins={})
        failures = compare_benchmarks(shrunk, _doc())
        assert any("portfolio:a: instance missing from current" in f
                   for f in failures)

    def test_portfolio_winner_and_walls_are_not_gated(self):
        # Which backend wins is hardware-dependent; only parity is gated.
        current = _doc()
        current["portfolio"] = [dict(
            current["portfolio"][0], winner="highs", race_wall_seconds=99.0,
        )]
        current["portfolio_wins"] = {"highs": 1}
        assert compare_benchmarks(current, _doc()) == []


class TestSolvebenchCli:
    @pytest.fixture
    def fake_bench(self, monkeypatch):
        import repro.solver.bench as bench

        monkeypatch.setattr(bench, "run_bench", lambda: _doc())
        return _doc()

    def test_smoke_text_output(self, fake_bench, capsys):
        assert main(["solvebench"]) == 0
        out = capsys.readouterr().out
        assert "a/S4" in out and "[ok]" in out

    def test_json_to_file_and_gate(self, fake_bench, tmp_path, capsys):
        out_path = tmp_path / "BENCH_solver.json"
        assert main(["solvebench", "--json", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["schema"] == BENCH_SCHEMA
        capsys.readouterr()
        assert (
            main(["solvebench", "--check-against", str(out_path)]) == 0
        )

    def test_gate_fails_on_regression(self, fake_bench, tmp_path, capsys):
        baseline = _doc()
        baseline["mip"][0]["nodes"] = 10  # current (100) is a 10x regression
        path = tmp_path / "baseline.json"
        write_bench(path, baseline)
        assert main(["solvebench", "--check-against", str(path)]) == 1
        assert "node count regressed" in capsys.readouterr().err

    def test_committed_baseline_matches_schema(self):
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        committed = json.loads((repo_root / "BENCH_solver.json").read_text())
        assert committed["schema"] == BENCH_SCHEMA
        assert committed["suite_uncached"]["before_seconds"] == 85.7
        assert committed["suite_uncached"]["after_seconds"] is not None
        assert (
            committed["suite_uncached"]["after_seconds"]
            <= committed["suite_uncached"]["before_seconds"] / 2
        ), "the suite speedup gate of this PR: >= 2x uncached"
        for row in committed["mip"]:
            assert row["parity"] and row["warm_identical"]
        for row in committed["partition"]:
            assert row["warm_identical"]
        assert committed["portfolio"], "baseline must carry portfolio rows"
        for row in committed["portfolio"]:
            assert row["parity"], "committed portfolio rows must be bit-identical"
            assert row["winner"] in ("bnb", "highs")
        assert sum(committed["portfolio_wins"].values()) == len(
            committed["portfolio"]
        )
