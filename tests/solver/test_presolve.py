"""Tests for presolve reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.branch_bound import BranchAndBoundSolver, MIPStatus
from repro.solver.model import LinearProgram
from repro.solver.presolve import postsolve, presolve


class TestReductions:
    def test_fixed_variable_removed(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=3, ub=3)
        y = lp.add_var("y", ub=5)
        lp.add_constraint(x + y <= 7)
        lp.set_objective(x + y)
        result = presolve(lp.to_standard_form())
        assert result.n_removed == 1
        assert list(result.kept) == [1]
        # Propagation absorbed the whole row into y's bound (y <= 4), which
        # makes the row redundant against the tightened box.
        assert result.form.a_ub.shape[0] == 0
        assert result.form.ub[0] == pytest.approx(4.0)

    def test_singleton_row_becomes_bound(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10)
        y = lp.add_var("y", ub=10)
        lp.add_constraint(2 * x <= 6)  # -> x <= 3
        lp.add_constraint(x + y <= 12)
        lp.set_objective(-x - y)
        result = presolve(lp.to_standard_form())
        assert result.form.a_ub.shape[0] == 1  # singleton row removed
        assert result.form.ub[0] == pytest.approx(3.0)

    def test_negative_singleton_tightens_lower_bound(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10)
        lp.add_constraint(x >= 2)  # becomes -x <= -2
        lp.set_objective(x)
        result = presolve(lp.to_standard_form())
        assert result.form.lb[0] == pytest.approx(2.0)

    def test_integer_bound_rounding_fixes_variable(self):
        lp = LinearProgram()
        x = lp.add_binary("x")
        lp.add_constraint(x <= 0.4)  # integrality forces x = 0
        lp.set_objective(x)
        result = presolve(lp.to_standard_form())
        assert result.n_removed == 1
        assert result.fixed_values[0] == 0.0

    def test_infeasible_bounds_detected(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=0, ub=1)
        lp.add_constraint(x >= 2)
        lp.set_objective(x)
        assert presolve(lp.to_standard_form()).infeasible

    def test_empty_row_feasibility(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=1)
        lp.add_constraint(0.0 * x <= -1.0)  # trivially infeasible
        lp.set_objective(x)
        assert presolve(lp.to_standard_form()).infeasible

    def test_postsolve_lifts_solution(self):
        lp = LinearProgram()
        lp.add_var("x", lb=2, ub=2)
        lp.add_var("y", ub=5)
        lp.set_objective(0.0)
        result = presolve(lp.to_standard_form())
        lifted = postsolve(result, np.array([4.0]))
        np.testing.assert_allclose(lifted, [2.0, 4.0])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_presolve_preserves_optimum(seed):
    """Property: presolved B&B matches plain B&B on random knapsacks with
    fixed variables and singleton rows mixed in."""
    rng = np.random.default_rng(seed)
    lp = LinearProgram()
    xs = [lp.add_binary(f"x{i}") for i in range(5)]
    fixed = lp.add_var("fixed", lb=2, ub=2)
    weights = rng.integers(1, 6, size=5)
    lp.add_constraint(sum(int(w) * x for w, x in zip(weights, xs)) + fixed <= 9)
    lp.add_constraint(xs[0] <= float(rng.integers(0, 2)))  # singleton row
    values = rng.integers(1, 6, size=5)
    lp.set_objective(sum(int(v) * x for v, x in zip(values, xs)) + fixed, minimize=False)

    plain = BranchAndBoundSolver().solve(lp)
    reduced = BranchAndBoundSolver(presolve=True).solve(lp)
    assert plain.status == reduced.status
    if plain.status is MIPStatus.OPTIMAL:
        assert reduced.objective == pytest.approx(plain.objective, abs=1e-6)


class TestPropagateBounds:
    """Edge cases of the incremental activity-based propagator."""

    def _run(self, a_ub, b_ub, lb, ub, integer=None, **kw):
        import numpy as np

        from repro.solver.presolve import propagate_bounds

        a_ub = np.asarray(a_ub, dtype=float).reshape(len(b_ub), -1)
        integer = (
            np.zeros(len(lb), dtype=bool)
            if integer is None
            else np.asarray(integer, dtype=bool)
        )
        return propagate_bounds(
            a_ub,
            np.asarray(b_ub, dtype=float),
            np.asarray(lb, dtype=float),
            np.asarray(ub, dtype=float),
            integer,
            **kw,
        )

    def test_simple_tightening(self):
        # x + y <= 4 with y >= 3 forces x <= 1.
        lb, ub, feasible = self._run([[1, 1]], [4], [0, 3], [10, 10])
        assert feasible
        assert ub[0] == pytest.approx(1.0)

    def test_negative_coefficient_raises_lower_bound(self):
        # -x + y <= -2 (i.e. x >= y + 2) with y >= 1 forces x >= 3.
        lb, ub, feasible = self._run([[-1, 1]], [-2], [0, 1], [10, 10])
        assert feasible
        assert lb[0] == pytest.approx(3.0)

    def test_integer_rounding(self):
        # 2x <= 5 over an integer x gives x <= 2, not 2.5.
        lb, ub, feasible = self._run([[2]], [5], [0], [10], integer=[True])
        assert feasible
        assert ub[0] == pytest.approx(2.0)

    def test_min_activity_infeasibility(self):
        lb, ub, feasible = self._run([[1, 1]], [1], [2, 2], [5, 5])
        assert not feasible

    def test_crossed_input_bounds_rejected(self):
        lb, ub, feasible = self._run([[1]], [10], [5], [3])
        assert not feasible

    def test_two_infinite_terms_learn_nothing(self):
        import math

        lb, ub, feasible = self._run(
            [[1, 1]], [4], [-math.inf, -math.inf], [math.inf, math.inf]
        )
        assert feasible
        assert math.isinf(ub[0]) and math.isinf(ub[1])

    def test_one_infinite_term_still_bounds_it(self):
        import math

        # x + y <= 4, y in [1, 2], x unbounded below: learn x <= 3.
        lb, ub, feasible = self._run(
            [[1, 1]], [4], [-math.inf, 1], [math.inf, 2]
        )
        assert feasible
        assert ub[0] == pytest.approx(3.0)

    def test_fixpoint_chains_across_rows(self):
        # x <= 1 then x + y >= 3 (as -x - y <= -3) forces y >= 2.
        lb, ub, feasible = self._run(
            [[1, 0], [-1, -1]], [1, -3], [0, 0], [10, 10]
        )
        assert feasible
        assert lb[1] == pytest.approx(2.0)


class TestRowReductions:
    def test_redundant_row_dropped(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=2)
        y = lp.add_var("y", ub=2)
        lp.add_constraint(x + y <= 100)  # max activity is 4: redundant
        lp.set_objective(-x - y)
        result = presolve(lp.to_standard_form())
        assert result.form.a_ub.shape[0] == 0

    def test_duplicate_rows_keep_tightest_rhs(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10)
        y = lp.add_var("y", ub=10)
        lp.add_constraint(x + y <= 9)
        lp.add_constraint(x + y <= 7)
        lp.set_objective(-x - y)
        result = presolve(lp.to_standard_form())
        assert result.form.a_ub.shape[0] == 1
        assert result.form.b_ub[0] == pytest.approx(7.0)

    def test_gcd_reduction_tightens_integer_row(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10, integer=True)
        y = lp.add_var("y", ub=10, integer=True)
        lp.add_constraint(2 * x + 2 * y <= 5)  # divide by 2, floor: x+y <= 2
        lp.set_objective(-x - y)
        result = presolve(lp.to_standard_form())
        solution = BranchAndBoundSolver().solve(lp)
        assert solution.objective == pytest.approx(-2.0)
        row = result.form.a_ub[0]
        rhs = result.form.b_ub[0]
        assert rhs == pytest.approx(2.0)
        np.testing.assert_allclose(row[np.abs(row) > 1e-9], [1.0, 1.0])

    def test_presolve_infeasibility_via_propagation(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=0, ub=1, integer=True)
        y = lp.add_var("y", lb=0, ub=1, integer=True)
        lp.add_constraint(x + y >= 3)  # two binaries cannot reach 3
        lp.set_objective(x + y)
        assert presolve(lp.to_standard_form()).infeasible

    def test_postsolve_round_trip_through_solver(self):
        lp = LinearProgram()
        fixed = lp.add_var("fixed", lb=3, ub=3, integer=True)
        x = lp.add_var("x", ub=4, integer=True)
        y = lp.add_var("y", ub=4)
        lp.add_constraint(fixed + x + y <= 8)
        lp.set_objective(-fixed - 2 * x - y)
        plain = BranchAndBoundSolver().solve(lp)
        reduced = BranchAndBoundSolver(presolve=True).solve(lp)
        assert len(reduced.x) == 3  # lifted back to the original space
        assert reduced.x[0] == pytest.approx(3.0)
        assert reduced.objective == pytest.approx(plain.objective, abs=1e-9)
