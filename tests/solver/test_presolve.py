"""Tests for presolve reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.branch_bound import BranchAndBoundSolver, MIPStatus
from repro.solver.model import LinearProgram
from repro.solver.presolve import postsolve, presolve


class TestReductions:
    def test_fixed_variable_removed(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=3, ub=3)
        y = lp.add_var("y", ub=5)
        lp.add_constraint(x + y <= 7)
        lp.set_objective(x + y)
        result = presolve(lp.to_standard_form())
        assert result.n_removed == 1
        assert list(result.kept) == [1]
        # RHS absorbed the fixed value: y <= 4.
        np.testing.assert_allclose(result.form.b_ub, [4.0])

    def test_singleton_row_becomes_bound(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10)
        y = lp.add_var("y", ub=10)
        lp.add_constraint(2 * x <= 6)  # -> x <= 3
        lp.add_constraint(x + y <= 12)
        lp.set_objective(-x - y)
        result = presolve(lp.to_standard_form())
        assert result.form.a_ub.shape[0] == 1  # singleton row removed
        assert result.form.ub[0] == pytest.approx(3.0)

    def test_negative_singleton_tightens_lower_bound(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10)
        lp.add_constraint(x >= 2)  # becomes -x <= -2
        lp.set_objective(x)
        result = presolve(lp.to_standard_form())
        assert result.form.lb[0] == pytest.approx(2.0)

    def test_integer_bound_rounding_fixes_variable(self):
        lp = LinearProgram()
        x = lp.add_binary("x")
        lp.add_constraint(x <= 0.4)  # integrality forces x = 0
        lp.set_objective(x)
        result = presolve(lp.to_standard_form())
        assert result.n_removed == 1
        assert result.fixed_values[0] == 0.0

    def test_infeasible_bounds_detected(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=0, ub=1)
        lp.add_constraint(x >= 2)
        lp.set_objective(x)
        assert presolve(lp.to_standard_form()).infeasible

    def test_empty_row_feasibility(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=1)
        lp.add_constraint(0.0 * x <= -1.0)  # trivially infeasible
        lp.set_objective(x)
        assert presolve(lp.to_standard_form()).infeasible

    def test_postsolve_lifts_solution(self):
        lp = LinearProgram()
        lp.add_var("x", lb=2, ub=2)
        lp.add_var("y", ub=5)
        lp.set_objective(0.0)
        result = presolve(lp.to_standard_form())
        lifted = postsolve(result, np.array([4.0]))
        np.testing.assert_allclose(lifted, [2.0, 4.0])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_presolve_preserves_optimum(seed):
    """Property: presolved B&B matches plain B&B on random knapsacks with
    fixed variables and singleton rows mixed in."""
    rng = np.random.default_rng(seed)
    lp = LinearProgram()
    xs = [lp.add_binary(f"x{i}") for i in range(5)]
    fixed = lp.add_var("fixed", lb=2, ub=2)
    weights = rng.integers(1, 6, size=5)
    lp.add_constraint(sum(int(w) * x for w, x in zip(weights, xs)) + fixed <= 9)
    lp.add_constraint(xs[0] <= float(rng.integers(0, 2)))  # singleton row
    values = rng.integers(1, 6, size=5)
    lp.set_objective(sum(int(v) * x for v, x in zip(values, xs)) + fixed, minimize=False)

    plain = BranchAndBoundSolver().solve(lp)
    reduced = BranchAndBoundSolver(presolve=True).solve(lp)
    assert plain.status == reduced.status
    if plain.status is MIPStatus.OPTIMAL:
        assert reduced.objective == pytest.approx(plain.objective, abs=1e-6)
