"""Suite runner: timing report, bench output, name resolution."""

import io
import json

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.suite import (
    BenchOverwriteError,
    check_identity,
    check_suite_document,
    resolve_names,
    run_suite,
    write_bench,
)
from repro.perf.cache import CACHE_VERSION

CHEAP = ["fig2_deepspeed_cdf", "sec23_deepspeed_profile"]


class TestResolveNames:
    def test_all_keyword(self):
        assert resolve_names(["all"]) == list(ALL_EXPERIMENTS)

    def test_prefix_match_preserves_paper_order(self):
        assert resolve_names(["fig2", "table1"]) == ["table1_gpus", "fig2_deepspeed_cdf"]

    def test_unknown_prefix_empty(self):
        assert resolve_names(["fig99"]) == []


class TestRunSuite:
    def test_cheap_figure_runs_and_reports(self, tmp_path):
        stream = io.StringIO()
        bench = tmp_path / "BENCH_suite.json"
        report = run_suite(
            ["table1_gpus"],
            fast=True,
            jobs=1,
            use_cache=True,
            cache_dir=str(tmp_path / "cache"),
            bench_path=str(bench),
            stream=stream,
        )
        output = stream.getvalue()
        assert "3090-Ti" in output
        assert "Suite timing report" in output
        assert report.figures[0].name == "table1_gpus"
        assert report.figures[0].seconds >= 0

        document = json.loads(bench.read_text())
        assert document["schema"] == "mobius-bench-suite/2"
        assert document["cache"]["version"] == CACHE_VERSION
        assert document["figures"][0]["name"] == "table1_gpus"
        assert document["total_seconds"] > 0
        assert document["output_fingerprint"] == report.output_fingerprint
        # table1 enumerates no cells, but the schedule section still exists.
        assert document["schedule"]["cells_enumerated"] == 0

    def test_no_cache_mode(self, tmp_path):
        stream = io.StringIO()
        report = run_suite(
            ["table1_gpus"],
            fast=True,
            use_cache=False,
            stream=stream,
        )
        assert not report.use_cache
        assert report.cache_totals == {"hits": 0, "misses": 0}

    def test_bench_records_baseline_speedup(self, tmp_path):
        stream = io.StringIO()
        kwargs = dict(fast=True, use_cache=False, stream=stream)
        baseline = run_suite(["table1_gpus"], **kwargs)
        optimized = run_suite(["table1_gpus"], **kwargs)
        path = tmp_path / "bench.json"
        document = write_bench(optimized, str(path), baseline=baseline)
        assert "baseline" in document
        assert document["speedup_vs_baseline"] > 0
        assert json.loads(path.read_text())["baseline"]["total_seconds"] > 0

    def test_bench_records_cold_pass(self, tmp_path):
        stream = io.StringIO()
        kwargs = dict(fast=True, use_cache=False, stream=stream)
        baseline = run_suite(["table1_gpus"], **kwargs)
        cold = run_suite(["table1_gpus"], **kwargs)
        warm = run_suite(["table1_gpus"], **kwargs)
        document = write_bench(
            warm, str(tmp_path / "bench.json"), baseline=baseline, cold=cold
        )
        assert document["cold_cache"]["total_seconds"] > 0
        assert document["speedup_cold_vs_baseline"] > 0


class TestScheduledSuite:
    def test_assembly_is_pure_cache_hits(self, tmp_path):
        """The tentpole guarantee: after the drain, figures never miss."""
        report = run_suite(
            CHEAP,
            fast=True,
            jobs=1,
            use_cache=True,
            cache_dir=str(tmp_path / "cache"),
            stream=io.StringIO(),
        )
        assert report.cache_totals["misses"] == 0
        assert report.cache_totals["hits"] > 0
        assert report.schedule["cells_deduped"] >= 1  # fig2 == sec23
        assert report.schedule["duplicate_solves"] == 0

    def test_aggregate_system_misses_pinned_across_jobs(self, tmp_path):
        """Satellite pin: total system computes identical for jobs=1 vs 2."""
        reports = {}
        for jobs in (1, 2):
            reports[jobs] = run_suite(
                CHEAP + ["fig12_overhead"],
                fast=True,
                jobs=jobs,
                use_cache=True,
                cache_dir=str(tmp_path / f"cache{jobs}"),
                stream=io.StringIO(),
            )
        misses = {
            jobs: report.aggregate_cache["system"]["misses"]
            for jobs, report in reports.items()
        }
        assert misses[1] == misses[2] == reports[1].schedule["cells_unique"]
        assert (
            reports[1].schedule["cells_fingerprint"]
            == reports[2].schedule["cells_fingerprint"]
        )

    def test_check_identity_passes(self, tmp_path):
        report = run_suite(
            ["fig2_deepspeed_cdf"],
            fast=True,
            jobs=2,
            use_cache=True,
            cache_dir=str(tmp_path / "cache"),
            stream=io.StringIO(),
        )
        verdict = check_identity(
            report,
            ["fig2_deepspeed_cdf"],
            fast=True,
            cache_dir=str(tmp_path / "cache"),
        )
        assert verdict["ok"]
        assert verdict["cells_match"] and verdict["outputs_match"]

    def test_check_identity_requires_schedule(self):
        report = run_suite(
            ["table1_gpus"], fast=True, use_cache=False, stream=io.StringIO()
        )
        with pytest.raises(ValueError):
            check_identity(report, ["table1_gpus"], fast=True)


class TestWriteBenchGuard:
    def _report(self, tmp_path, **kwargs):
        return run_suite(
            ["table1_gpus"],
            fast=True,
            use_cache=True,
            cache_dir=str(tmp_path / "cache"),
            stream=io.StringIO(),
            **kwargs,
        )

    def test_refuses_to_overwrite_fuller_report(self, tmp_path):
        report = self._report(tmp_path)
        path = tmp_path / "bench.json"
        full = report.as_dict()
        full["fast"] = False  # a committed full-sweep baseline
        path.write_text(json.dumps(full))
        with pytest.raises(BenchOverwriteError):
            write_bench(report, str(path))
        # Same or better coverage writes fine; force always writes.
        write_bench(report, str(path), force=True)
        assert json.loads(path.read_text())["fast"] is True
        write_bench(report, str(path))

    def test_unreadable_existing_report_is_not_protected(self, tmp_path):
        report = self._report(tmp_path)
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        write_bench(report, str(path))
        assert json.loads(path.read_text())["schema"] == "mobius-bench-suite/2"


class TestCheckSuiteDocument:
    def _document(self, tmp_path):
        report = run_suite(
            CHEAP,
            fast=True,
            jobs=1,
            use_cache=True,
            cache_dir=str(tmp_path / "cache"),
            stream=io.StringIO(),
        )
        return report.as_dict()

    def test_good_document_passes(self, tmp_path):
        document = self._document(tmp_path)
        assert check_suite_document(document) == []
        # Against itself as the reference: throughput trivially equal.
        assert check_suite_document(document, document) == []

    def test_flags_duplicate_solves_and_missing_reuse(self, tmp_path):
        document = self._document(tmp_path)
        document["schedule"]["duplicate_solves"] = 3
        document["schedule"]["cells_deduped"] = 0
        document["schedule"]["cells_precached"] = 0
        document["schedule"]["cells_shared"] = 0
        document["schedule"]["cells_coalesced"] = 0
        problems = check_suite_document(document)
        assert any("duplicate" in p for p in problems)
        assert any("reuse" in p for p in problems)

    def test_flags_failed_identity(self, tmp_path):
        document = self._document(tmp_path)
        document["identity"] = {"ok": False, "cells_match": False, "outputs_match": True}
        assert any("identity" in p for p in check_suite_document(document))

    def test_throughput_gate_needs_multiple_cpus(self, tmp_path):
        document = self._document(tmp_path)
        reference = json.loads(json.dumps(document))
        # Pretend the reference machine was 8x faster per unique cell.
        reference["machine"]["cpus"] = 8
        reference["total_seconds"] = document["total_seconds"] / 8
        document["machine"]["cpus"] = 1
        assert check_suite_document(document, reference) == []  # 1 CPU: skipped
        document["machine"]["cpus"] = 8
        problems = check_suite_document(document, reference)
        assert any("throughput" in p for p in problems)
