"""Suite runner: timing report, bench output, name resolution."""

import io
import json

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.suite import resolve_names, run_suite, write_bench
from repro.perf.cache import CACHE_VERSION


class TestResolveNames:
    def test_all_keyword(self):
        assert resolve_names(["all"]) == list(ALL_EXPERIMENTS)

    def test_prefix_match_preserves_paper_order(self):
        assert resolve_names(["fig2", "table1"]) == ["table1_gpus", "fig2_deepspeed_cdf"]

    def test_unknown_prefix_empty(self):
        assert resolve_names(["fig99"]) == []


class TestRunSuite:
    def test_cheap_figure_runs_and_reports(self, tmp_path):
        stream = io.StringIO()
        bench = tmp_path / "BENCH_suite.json"
        report = run_suite(
            ["table1_gpus"],
            fast=True,
            jobs=1,
            use_cache=True,
            cache_dir=str(tmp_path / "cache"),
            bench_path=str(bench),
            stream=stream,
        )
        output = stream.getvalue()
        assert "3090-Ti" in output
        assert "Suite timing report" in output
        assert report.figures[0].name == "table1_gpus"
        assert report.figures[0].seconds >= 0

        document = json.loads(bench.read_text())
        assert document["schema"] == "mobius-bench-suite/1"
        assert document["cache"]["version"] == CACHE_VERSION
        assert document["figures"][0]["name"] == "table1_gpus"
        assert document["total_seconds"] > 0

    def test_no_cache_mode(self, tmp_path):
        stream = io.StringIO()
        report = run_suite(
            ["table1_gpus"],
            fast=True,
            use_cache=False,
            stream=stream,
        )
        assert not report.use_cache
        assert report.cache_totals == {"hits": 0, "misses": 0}

    def test_bench_records_baseline_speedup(self, tmp_path):
        stream = io.StringIO()
        kwargs = dict(fast=True, use_cache=False, stream=stream)
        baseline = run_suite(["table1_gpus"], **kwargs)
        optimized = run_suite(["table1_gpus"], **kwargs)
        path = tmp_path / "bench.json"
        document = write_bench(optimized, str(path), baseline=baseline)
        assert "baseline" in document
        assert document["speedup_vs_baseline"] > 0
        assert json.loads(path.read_text())["baseline"]["total_seconds"] > 0

    def test_bench_records_cold_pass(self, tmp_path):
        stream = io.StringIO()
        kwargs = dict(fast=True, use_cache=False, stream=stream)
        baseline = run_suite(["table1_gpus"], **kwargs)
        cold = run_suite(["table1_gpus"], **kwargs)
        warm = run_suite(["table1_gpus"], **kwargs)
        document = write_bench(
            warm, str(tmp_path / "bench.json"), baseline=baseline, cold=cold
        )
        assert document["cold_cache"]["total_seconds"] > 0
        assert document["speedup_cold_vs_baseline"] > 0
