"""Parallel experiment runner: determinism and OOM passthrough."""

import math

import pytest

from repro.experiments.runner import (
    ExperimentCell,
    default_jobs,
    run_system,
    run_systems_parallel,
)
from repro.hardware.topology import topo_2_2
from repro.models.zoo import gpt_8b
from repro.perf.cache import cache_overridden


def _comparable(result):
    """The deterministic face of a SystemResult (drops wall-clock extras)."""
    return (
        result.system,
        result.status,
        result.step_seconds if not math.isnan(result.step_seconds) else "nan",
        tuple(result.trace.compute) if result.trace is not None else None,
        tuple(result.trace.transfers) if result.trace is not None else None,
    )


@pytest.fixture
def cells(tiny_model):
    topology = topo_2_2()
    return [
        ExperimentCell("mobius", tiny_model, topology, microbatch_size=1),
        ExperimentCell("gpipe", gpt_8b(), topology, microbatch_size=1),  # OOM
        ExperimentCell("gpipe", tiny_model, topology, microbatch_size=1),
        ExperimentCell("deepspeed", tiny_model, topology, microbatch_size=1),
    ]


class TestDefaultJobs:
    """Satellite: REPRO_JOBS beats a (often wrong) container CPU count."""

    def test_env_override_wins_over_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert default_jobs() == 6

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 3)
        assert default_jobs() == 3

    def test_cpu_count_none_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert default_jobs() == 1

    @pytest.mark.parametrize("bad", ["0", "-2", "many"])
    def test_invalid_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()

    def test_run_systems_parallel_defers_to_env(self, monkeypatch, tiny_model):
        """jobs=None must consult default_jobs(); REPRO_JOBS=1 keeps the
        run serial in-process (no pool), which we observe via a poisoned
        ProcessPoolExecutor.
        """
        import repro.experiments.runner as runner_module

        monkeypatch.setenv("REPRO_JOBS", "1")

        def boom(*args, **kwargs):  # pragma: no cover - would fail the test
            raise AssertionError("pool should not be created with REPRO_JOBS=1")

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", boom)
        cells = [
            ExperimentCell("gpipe", tiny_model, topo_2_2(), microbatch_size=1),
            ExperimentCell("deepspeed", tiny_model, topo_2_2(), microbatch_size=1),
        ]
        with cache_overridden(memory=True, disk=False):
            results = run_systems_parallel(cells)
        assert [r.status for r in results] == ["ok", "ok"]


class TestRunSystemsParallel:
    def test_order_and_values_match_serial(self, cells, tmp_path):
        with cache_overridden(memory=False, disk=False):
            serial = [cell.run() for cell in cells]
        with cache_overridden(memory=True, disk=True, directory=str(tmp_path)):
            parallel = run_systems_parallel(cells, jobs=2)
        assert [_comparable(r) for r in parallel] == [_comparable(r) for r in serial]

    def test_oom_cells_pass_through(self, cells, tmp_path):
        with cache_overridden(memory=True, disk=True, directory=str(tmp_path)):
            results = run_systems_parallel(cells, jobs=2)
        assert results[1].status == "oom"
        assert not results[1].ok and results[1].trace is None

    def test_serial_fallback_matches(self, cells):
        with cache_overridden(memory=True, disk=False):
            via_jobs1 = run_systems_parallel(cells, jobs=1)
            serial = [cell.run() for cell in cells]
        assert [_comparable(r) for r in via_jobs1] == [_comparable(r) for r in serial]

    def test_results_seed_parent_cache(self, cells, tmp_path):
        with cache_overridden(memory=True, disk=True, directory=str(tmp_path)) as cache:
            run_systems_parallel(cells, jobs=2)
            cache.reset_stats()
            rerun = cells[0].run()
            assert cache.stats["system"].memory_hits == 1
            assert rerun.status == "ok"

    def test_warm_cache_skips_worker_roundtrip(self, cells, tmp_path):
        with cache_overridden(memory=True, disk=True, directory=str(tmp_path)):
            first = run_systems_parallel(cells, jobs=2)
            second = run_systems_parallel(cells, jobs=2)  # all hits, no pool needed
        assert [_comparable(r) for r in first] == [_comparable(r) for r in second]

    def test_identical_tables_from_serial_cached_and_parallel(self, cells, tmp_path):
        """The acceptance check: identical numbers whichever way cells run."""
        from repro.experiments.runner import ExperimentTable

        def build_table(results):
            table = ExperimentTable("determinism", ("system", "step_s", "traffic"))
            for result in results:
                table.add_row(
                    result.system,
                    result.step_seconds,
                    result.trace.total_transfer_bytes() if result.trace else None,
                )
            return table.format()

        with cache_overridden(memory=False, disk=False):
            cold = build_table([cell.run() for cell in cells])
        with cache_overridden(memory=True, disk=True, directory=str(tmp_path)):
            warm_parallel = build_table(run_systems_parallel(cells, jobs=2))
            warm_cached = build_table([cell.run() for cell in cells])
        assert cold == warm_parallel == warm_cached
