"""Suite-wide cell scheduler: enumeration, ordering, leases, drains."""

from __future__ import annotations

import os

import pytest

from repro.core.api import MobiusConfig
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.runner import ExperimentCell
from repro.experiments.schedule import (
    LEASE_DIRNAME,
    build_schedule,
    cell_result_fingerprint,
    drain,
    enumerate_cells,
    figure_cells,
    run_cells,
)
from repro.hardware.topology import commodity_server
from repro.perf.cache import CACHE_VERSION, LeaseTable, cache_overridden, get_cache
from repro.perf.fingerprint import fingerprint

#: Modules cheap enough to actually drain inside a unit test.
CHEAP = ["fig2_deepspeed_cdf", "sec23_deepspeed_profile", "fig12_overhead"]


class TestEnumeration:
    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_every_module_enumerates(self, name):
        """The tripwire: cells() exists, returns cells, and fast ⊆ full."""
        fast = figure_cells(name, fast=True)
        full = figure_cells(name, fast=False)
        assert all(isinstance(cell, ExperimentCell) for cell in fast + full)
        fast_keys = {fingerprint(cell) for cell in fast}
        full_keys = {fingerprint(cell) for cell in full}
        assert fast_keys <= full_keys, f"{name}: fast cells not a subset of full"

    def test_suite_wide_dedup_exists(self):
        """Figures genuinely share cells (fig2/sec23, fig10/fig11, fig7⊇fig8)."""
        schedule = build_schedule(enumerate_cells(ALL_EXPERIMENTS, fast=False))
        assert schedule.cells_deduped > 0
        assert schedule.warm_chains >= 1
        shared = [node for node in schedule.nodes if len(node.figures) > 1]
        assert shared, "no cell is claimed by more than one figure"

    def test_graph_is_acyclic_and_rank_ordered(self):
        schedule = build_schedule(enumerate_cells(ALL_EXPERIMENTS, fast=False))
        # Every edge points from lower-or-equal stage rank to higher (hint
        # chains) or within a rank (solve groups) — so Kahn's algorithm
        # must consume every node.
        indegree = {node.index: len(node.deps) for node in schedule.nodes}
        frontier = [i for i, d in indegree.items() if d == 0]
        seen = 0
        while frontier:
            index = frontier.pop()
            seen += 1
            for dependent in schedule.nodes[index].dependents:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    frontier.append(dependent)
        assert seen == len(schedule.nodes), "cycle in the schedule graph"
        for node in schedule.nodes:
            for dep in node.deps:
                assert (
                    schedule.nodes[dep].cell.topology.n_gpus
                    <= node.cell.topology.n_gpus
                )

    def test_sweep_orders_stage_counts(self):
        """fig14's N-GPU cell precedes every (N+1)-GPU cell."""
        schedule = build_schedule(enumerate_cells(["fig14_scalability"], fast=False))
        ranks = sorted({node.cell.topology.n_gpus for node in schedule.nodes})
        assert len(ranks) >= 3
        for node in schedule.nodes:
            rank = node.cell.topology.n_gpus
            if rank > min(ranks):
                dep_ranks = {schedule.nodes[d].cell.topology.n_gpus for d in node.deps}
                assert dep_ranks, f"{rank}-GPU cell has no warm-start predecessor"
                assert max(dep_ranks) < rank


class TestLeaseTable:
    def test_acquire_release_cycle(self, tmp_path):
        table = LeaseTable(str(tmp_path))
        assert table.acquire("system", "abc")
        assert not table.acquire("system", "abc")
        assert table.holder("system", "abc") == os.getpid()
        table.release("system", "abc")
        assert table.acquire("system", "abc")
        table.release("system", "abc")

    def test_wait_sees_release(self, tmp_path):
        table = LeaseTable(str(tmp_path))
        assert table.acquire("system", "abc")
        polls = []

        def sleeper(seconds):
            polls.append(seconds)
            table.release("system", "abc")

        waiter = LeaseTable(str(tmp_path), sleeper=sleeper)
        assert waiter.wait("system", "abc") == "released"
        assert polls

    def test_wait_breaks_stale_lease_of_dead_holder(self, tmp_path):
        table = LeaseTable(str(tmp_path))
        path = table._path("system", "abc")
        path.parent.mkdir(parents=True, exist_ok=True)
        # A PID that cannot be a live process holds the lease.
        path.write_text("999999999")
        waiter = LeaseTable(str(tmp_path), sleeper=lambda _: None)
        assert waiter.wait("system", "abc") == "broken"
        assert waiter.acquire("system", "abc")
        waiter.release("system", "abc")

    def test_wait_times_out(self, tmp_path):
        table = LeaseTable(str(tmp_path))
        assert table.acquire("system", "abc")
        waiter = LeaseTable(str(tmp_path), max_polls=3, sleeper=lambda _: None)
        assert waiter.wait("system", "abc") == "timeout"
        table.release("system", "abc")

    def test_release_without_acquire_is_noop(self, tmp_path):
        LeaseTable(str(tmp_path)).release("system", "never-acquired")


class TestDrain:
    def test_jobs_identity_and_counter_pin(self, tmp_path):
        """jobs=1 and jobs=2 drains: same fingerprint, same total misses."""
        reports = {}
        for jobs in (1, 2):
            with cache_overridden(
                memory=True, disk=True, directory=str(tmp_path / f"j{jobs}")
            ):
                reports[jobs] = run_cells(CHEAP, fast=True, jobs=jobs)
        solo, pool = reports[1], reports[2]
        assert solo.cells_fingerprint == pool.cells_fingerprint
        assert solo.cells_unique == pool.cells_unique
        assert solo.duplicate_solves == pool.duplicate_solves == 0
        # The satellite pin: total "system" misses across all processes is
        # exactly the unique-cell count, independent of the worker count.
        for report in (solo, pool):
            assert (
                report.worker_cache["system"]["misses"] == report.cells_unique
            ), report
        # fig2 and sec23 share their cell; fig12 contributes plan-only cells.
        assert pool.cells_deduped >= 1
        assert pool.cells_computed == pool.cells_unique

    def test_second_drain_is_fully_precached(self, tmp_path):
        with cache_overridden(memory=True, disk=True, directory=str(tmp_path)):
            first = run_cells(CHEAP, fast=True, jobs=1)
            again = run_cells(CHEAP, fast=True, jobs=1)
        assert again.cells_precached == first.cells_unique
        assert again.cells_computed == 0
        assert again.cells_fingerprint == first.cells_fingerprint

    def test_plan_only_cells_have_plans_not_traces(self, tmp_path):
        with cache_overridden(memory=True, disk=True, directory=str(tmp_path)):
            run_cells(["fig12_overhead"], fast=True, jobs=1)
            cache = get_cache()
            for cell in figure_cells("fig12_overhead", fast=True):
                result, found = cache.lookup("system", cell)
                assert found
                assert result.trace is None
                assert result.extras["plan_report"].plan is not None

    def test_contended_cell_coalesces_under_held_lease(self, tmp_path, monkeypatch):
        """A lease held by a live process makes the drain wait, then read."""
        from repro.experiments import schedule as schedule_mod

        cell = figure_cells("fig2_deepspeed_cdf", fast=True)[0]
        digest = fingerprint(cell)
        with cache_overridden(memory=True, disk=True, directory=str(tmp_path)):
            cache = get_cache()
            lease_dir = str(tmp_path / f"v{CACHE_VERSION}" / LEASE_DIRNAME)
            holder = LeaseTable(lease_dir)
            assert holder.acquire("system", digest)

            # While "another process" (this test, same live PID) holds the
            # lease, it computes and publishes the result; our waiter polls,
            # sees the release, and reads the published value.
            def release_and_publish(_seconds):
                from repro.experiments.runner import run_cell

                result = run_cell(cell)
                cache.store("system", cell, result)
                holder.release("system", digest)

            monkeypatch.setattr(
                schedule_mod,
                "LeaseTable",
                lambda directory: LeaseTable(directory, sleeper=release_and_publish),
            )
            report = drain([("fig2", cell)], jobs=1)
        assert report.cells_coalesced == 1
        assert report.cells_computed == 0


def _sweep_cell(tiny_model, n_gpus: int) -> ExperimentCell:
    groups = [n_gpus - n_gpus // 2, n_gpus // 2]
    return ExperimentCell(
        system="mobius",
        model=tiny_model,
        topology=commodity_server(groups),
        mobius_config=MobiusConfig(microbatch_size=1, partition_time_limit=1.0),
    )


class TestCrossProcessWarmStart:
    def test_hint_flows_through_durable_store(self, tiny_model, tmp_path):
        """The (N+1)-GPU solve in a *fresh process* consumes the N hint.

        Each drain uses ``jobs=2``, so the solve happens in a pool worker
        whose in-memory hint registry starts empty: the only way the second
        drain's worker can warm-start is the durable hint store under the
        shared cache directory.
        """
        n2 = _sweep_cell(tiny_model, 2)
        n3 = _sweep_cell(tiny_model, 3)

        # Cold reference: n3 solved alone, no hint anywhere.
        with cache_overridden(
            memory=True, disk=True, directory=str(tmp_path / "solo")
        ):
            solo = drain([("sweep", n3)], jobs=2)
            cold = get_cache().lookup("system", n3)[0]
        cold_partition = cold.extras["plan_report"].partition_result
        assert not cold_partition.warm_started

        # Warm path: n2 first (publishes its hint durably), n3 second.
        with cache_overridden(
            memory=True, disk=True, directory=str(tmp_path / "chain")
        ):
            drain([("sweep", n2)], jobs=2)
            chained = drain([("sweep", n3)], jobs=2)
            warm = get_cache().lookup("system", n3)[0]
        warm_partition = warm.extras["plan_report"].partition_result
        assert warm_partition.warm_started
        assert warm_partition.nodes_explored <= cold_partition.nodes_explored

        # Warm starts must be invisible in results: identical partitions,
        # identical deterministic faces, identical drain fingerprints.
        assert (
            warm_partition.partition.boundaries == cold_partition.partition.boundaries
        )
        assert cell_result_fingerprint(warm) == cell_result_fingerprint(cold)
        assert chained.cells_fingerprint == solo.cells_fingerprint
