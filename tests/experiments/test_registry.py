"""Every registered experiment module conforms to the harness contract."""

import importlib
import inspect

import pytest

from repro.experiments import ALL_EXPERIMENTS


@pytest.mark.parametrize("name", ALL_EXPERIMENTS)
def test_experiment_module_contract(name):
    module = importlib.import_module(f"repro.experiments.{name}")
    assert callable(module.run), name
    assert callable(module.main), name
    # run() takes at most `fast` plus an optional `jobs` fan-out knob.
    params = inspect.signature(module.run).parameters
    assert set(params) <= {"fast", "jobs"}, name
    for extra in set(params) - {"fast"}:
        assert params[extra].default is None, (name, extra)
    # cells() is the scheduler's enumeration protocol: every module must
    # expose it (cell-less figures return an empty tuple) so the suite
    # drain can never silently skip a figure's work.
    assert callable(module.cells), name
    assert set(inspect.signature(module.cells).parameters) == {"fast"}, name


def test_registry_matches_files():
    import pathlib

    import repro.experiments as pkg

    directory = pathlib.Path(pkg.__file__).parent
    # Infrastructure modules (not figure reproductions) are exempt.
    modules = {
        p.stem
        for p in directory.glob("*.py")
        if p.stem not in ("__init__", "runner", "schedule", "suite")
    }
    assert modules == set(ALL_EXPERIMENTS)
