"""Every registered experiment module conforms to the harness contract."""

import importlib
import inspect

import pytest

from repro.experiments import ALL_EXPERIMENTS


@pytest.mark.parametrize("name", ALL_EXPERIMENTS)
def test_experiment_module_contract(name):
    module = importlib.import_module(f"repro.experiments.{name}")
    assert callable(module.run), name
    assert callable(module.main), name
    # run() takes at most `fast` plus an optional `jobs` fan-out knob.
    params = inspect.signature(module.run).parameters
    assert set(params) <= {"fast", "jobs"}, name
    for extra in set(params) - {"fast"}:
        assert params[extra].default is None, (name, extra)


def test_registry_matches_files():
    import pathlib

    import repro.experiments as pkg

    directory = pathlib.Path(pkg.__file__).parent
    # Infrastructure modules (not figure reproductions) are exempt.
    modules = {
        p.stem
        for p in directory.glob("*.py")
        if p.stem not in ("__init__", "runner", "suite")
    }
    assert modules == set(ALL_EXPERIMENTS)
