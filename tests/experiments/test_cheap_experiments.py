"""Smoke tests for the fastest experiment harnesses (the benchmark suite
covers the rest with full shape assertions)."""

from repro.experiments import fig2_deepspeed_cdf, fig6_traffic, sec23_deepspeed_profile


class TestCheapExperiments:
    def test_fig2_cdf_shape(self):
        table = fig2_deepspeed_cdf.run()
        cdf = table.column("cdf")
        assert cdf == sorted(cdf)  # monotone
        assert cdf[-1] == 1.0

    def test_fig6_fast(self):
        table = fig6_traffic.run(fast=True)
        assert len(table.rows) == 2
        for row in table.rows:
            assert float(row[6]) > 3 * float(row[7])  # DS moves much more

    def test_sec23_profile(self):
        table = sec23_deepspeed_profile.run()
        measured = dict(zip(table.column("metric"), table.column("measured")))
        assert float(measured["comm fraction of step"]) > 0.7
