"""Tests for the experiment infrastructure and cheap experiments."""

import pytest

from repro.experiments.runner import (
    ExperimentTable,
    PlanInfeasibleError,
    run_system,
)
from repro.experiments.table1_gpus import run as run_table1
from repro.hardware.topology import commodity_server, topo_2_2


class TestExperimentTable:
    def test_add_row_validates_length(self):
        table = ExperimentTable("t", ("a", "b"))
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_contains_values(self):
        table = ExperimentTable("demo", ("name", "value"))
        table.add_row("x", 1.5)
        text = table.format()
        assert "demo" in text and "1.500" in text

    def test_column_extraction(self):
        table = ExperimentTable("t", ("a", "b"))
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_unknown_column_raises_keyerror_naming_columns(self):
        table = ExperimentTable("t", ("model", "step_s"))
        with pytest.raises(KeyError, match=r"no column 'stepz'.*model, step_s"):
            table.column("stepz")

    def test_format_renders_missing_cells_as_dash(self):
        table = ExperimentTable("t", ("a", "b", "c"))
        table.add_row(None, float("nan"), 1.5)
        lines = table.format().splitlines()
        assert lines[-1].split() == ["-", "-", "1.500"]

    def test_notes_rendered(self):
        table = ExperimentTable("t", ("a",))
        table.notes.append("hello")
        assert "note: hello" in table.format()


class TestRunSystem:
    def test_unknown_system_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            run_system("megatron", tiny_model, topo_2_2())

    def test_oom_reported_not_raised(self):
        from repro.models.zoo import gpt_8b

        result = run_system("gpipe", gpt_8b(), topo_2_2(), microbatch_size=1)
        assert result.status == "oom"
        assert not result.ok

    def test_mobius_result_has_plan(self, tiny_model):
        result = run_system("mobius", tiny_model, topo_2_2(), microbatch_size=1)
        assert result.ok
        assert "plan_report" in result.extras

    def test_infeasible_plan_raises_typed_error(self):
        # A single block larger than GPU memory: no partition can ever fit,
        # which must surface as PlanInfeasibleError (a ValueError subclass),
        # never a bare ValueError — the chaos harness catches it by type.
        from repro.models.spec import build_gpt_like

        monster = build_gpt_like(
            "monster",
            n_blocks=2,
            hidden_dim=65536,
            n_heads=64,
            default_microbatch_size=1,
        )
        with pytest.raises(PlanInfeasibleError):
            run_system("mobius", monster, commodity_server([1]), microbatch_size=1)


class TestTable1:
    def test_reproduces_paper_rows(self):
        table = run_table1()
        assert len(table.rows) == 5
        attrs = table.column("attribute")
        assert "Price" in attrs and "GPUDirect P2P" in attrs
