"""Numeric gradient checks for the fused NN operations."""

import numpy as np
import pytest

from repro.autograd.ops import (
    causal_mask_fill,
    cross_entropy_logits,
    dropout,
    embedding,
    gelu,
    layer_norm,
    softmax,
)
from repro.autograd.tensor import Tensor

from tests.autograd.test_tensor import numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestGelu:
    def test_known_values(self):
        x = Tensor([0.0])
        assert gelu(x).data[0] == pytest.approx(0.0)
        x = Tensor([100.0])
        assert gelu(x).data[0] == pytest.approx(100.0, rel=1e-4)

    def test_numeric_grad(self, rng):
        x = Tensor(rng.normal(size=6).astype(np.float32), requires_grad=True)
        gelu(x).sum().backward()
        ng = numeric_grad(lambda: float(gelu(Tensor(x.data)).sum().data), x)
        np.testing.assert_allclose(x.grad, ng, atol=2e-2)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        out = softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3), atol=1e-6)

    def test_stability_with_large_logits(self):
        out = softmax(Tensor([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_numeric_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 4)).astype(np.float32), requires_grad=True)
        w = rng.normal(size=(2, 4)).astype(np.float32)
        (softmax(x) * Tensor(w)).sum().backward()
        ng = numeric_grad(
            lambda: float((softmax(Tensor(x.data)) * Tensor(w)).sum().data), x
        )
        np.testing.assert_allclose(x.grad, ng, atol=2e-2)


class TestCrossEntropy:
    def test_uniform_logits_log_vocab(self):
        logits = Tensor(np.zeros((2, 8)))
        loss = cross_entropy_logits(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(8), rel=1e-5)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((1, 4), -100.0)
        logits[0, 2] = 100.0
        loss = cross_entropy_logits(Tensor(logits), np.array([2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_grad_sums_to_zero(self, rng):
        logits = Tensor(rng.normal(size=(3, 5)).astype(np.float32), requires_grad=True)
        cross_entropy_logits(logits, np.array([0, 1, 2])).backward()
        np.testing.assert_allclose(logits.grad.sum(axis=-1), np.zeros(3), atol=1e-6)

    def test_numeric_grad(self, rng):
        logits = Tensor(rng.normal(size=(2, 4)).astype(np.float32), requires_grad=True)
        targets = np.array([1, 3])
        cross_entropy_logits(logits, targets).backward()
        ng = numeric_grad(
            lambda: float(cross_entropy_logits(Tensor(logits.data), targets).data),
            logits,
        )
        np.testing.assert_allclose(logits.grad, ng, atol=1e-2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy_logits(Tensor(np.zeros((2, 4))), np.array([0, 1, 2]))

    def test_3d_logits(self, rng):
        logits = Tensor(rng.normal(size=(2, 3, 5)).astype(np.float32), requires_grad=True)
        targets = rng.integers(0, 5, size=(2, 3))
        loss = cross_entropy_logits(logits, targets)
        loss.backward()
        assert logits.grad.shape == (2, 3, 5)


class TestLayerNorm:
    def test_normalises(self, rng):
        x = Tensor(rng.normal(size=(4, 8)) * 5 + 3)
        w = Tensor(np.ones(8))
        b = Tensor(np.zeros(8))
        out = layer_norm(x, w, b)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-2)

    def test_numeric_grads_all_inputs(self, rng):
        x = Tensor(rng.normal(size=(2, 6)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=6).astype(np.float32), requires_grad=True)
        b = Tensor(rng.normal(size=6).astype(np.float32), requires_grad=True)
        mix = rng.normal(size=(2, 6)).astype(np.float32)
        (layer_norm(x, w, b) * Tensor(mix)).sum().backward()

        def value():
            return float(
                (layer_norm(Tensor(x.data), Tensor(w.data), Tensor(b.data)) * Tensor(mix))
                .sum()
                .data
            )

        np.testing.assert_allclose(x.grad, numeric_grad(value, x), atol=3e-2)
        np.testing.assert_allclose(w.grad, numeric_grad(value, w), atol=3e-2)
        np.testing.assert_allclose(b.grad, numeric_grad(value, b), atol=3e-2)


class TestEmbedding:
    def test_lookup(self):
        table = Tensor(np.arange(12.0).reshape(4, 3))
        out = embedding(table, np.array([[0, 2]]))
        np.testing.assert_allclose(out.data, [[[0, 1, 2], [6, 7, 8]]])

    def test_repeated_indices_accumulate(self):
        table = Tensor(np.zeros((3, 2)), requires_grad=True)
        embedding(table, np.array([1, 1, 1])).sum().backward()
        np.testing.assert_allclose(table.grad, [[0, 0], [3, 3], [0, 0]])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=10))
        out = dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_p_is_identity(self, rng):
        x = Tensor(rng.normal(size=10))
        assert dropout(x, 0.0, rng) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(100_000))
        out = dropout(x, 0.5, rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_grad_matches_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(64).astype(np.float32), requires_grad=True)
        out = dropout(x, 0.5, rng)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)

    def test_invalid_p_rejected(self, rng):
        with pytest.raises(ValueError):
            dropout(Tensor([1.0]), 1.0, rng)


class TestCausalMask:
    def test_future_positions_masked(self):
        scores = Tensor(np.zeros((1, 3, 3)))
        out = causal_mask_fill(scores)
        assert out.data[0, 0, 1] == -1e9
        assert out.data[0, 2, 2] == 0.0

    def test_grad_zero_on_masked(self):
        scores = Tensor(np.zeros((2, 2)).astype(np.float32), requires_grad=True)
        causal_mask_fill(scores).sum().backward()
        np.testing.assert_allclose(scores.grad, [[1, 0], [1, 1]])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            causal_mask_fill(Tensor(np.zeros((2, 3))))
