"""Tests for learning-rate schedules and gradient clipping."""

import math

import numpy as np
import pytest

from repro.autograd.optim import SGD
from repro.autograd.schedule import WarmupCosine, WarmupLinear, clip_grad_norm
from repro.autograd.tensor import Tensor


def make_optimizer(lr=1.0):
    p = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
    return SGD([p], lr=lr), p


class TestWarmupCosine:
    def test_warmup_ramps_linearly(self):
        opt, _ = make_optimizer()
        schedule = WarmupCosine(opt, warmup_steps=10, total_steps=100)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[-1] == pytest.approx(1.0)
        assert all(a < b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_decays_to_min(self):
        opt, _ = make_optimizer()
        schedule = WarmupCosine(opt, warmup_steps=0, total_steps=50, min_lr=0.1)
        for _ in range(50):
            lr = schedule.step()
        assert lr == pytest.approx(0.1, abs=1e-6)

    def test_midpoint_is_half(self):
        opt, _ = make_optimizer()
        schedule = WarmupCosine(opt, warmup_steps=0, total_steps=100)
        assert schedule.lr_at(50) == pytest.approx(0.5, abs=1e-6)

    def test_sets_optimizer_lr(self):
        opt, _ = make_optimizer()
        schedule = WarmupCosine(opt, warmup_steps=5, total_steps=50)
        schedule.step()
        assert opt.lr == pytest.approx(0.2)

    def test_invalid_configuration(self):
        opt, _ = make_optimizer()
        with pytest.raises(ValueError):
            WarmupCosine(opt, warmup_steps=10, total_steps=5)


class TestWarmupLinear:
    def test_decays_to_zero(self):
        opt, _ = make_optimizer()
        schedule = WarmupLinear(opt, warmup_steps=0, total_steps=20)
        for _ in range(20):
            lr = schedule.step()
        assert lr == pytest.approx(0.0, abs=1e-9)

    def test_peak_at_warmup_end(self):
        opt, _ = make_optimizer()
        schedule = WarmupLinear(opt, warmup_steps=4, total_steps=20)
        assert schedule.lr_at(4) == pytest.approx(1.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        p.grad = np.full(4, 0.1, dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(math.sqrt(4 * 0.01))
        np.testing.assert_allclose(p.grad, np.full(4, 0.1))

    def test_clips_to_max_norm(self):
        p = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        p.grad = np.full(4, 10.0, dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        assert math.sqrt(float(np.sum(p.grad**2))) == pytest.approx(1.0, rel=1e-5)

    def test_global_norm_across_params(self):
        a = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        a.grad = np.array([3.0], dtype=np.float32)
        b.grad = np.array([4.0], dtype=np.float32)
        norm = clip_grad_norm([a, b], max_norm=2.5)
        assert norm == pytest.approx(5.0)
        # Both scaled by the same factor (2.5 / 5).
        assert a.grad[0] == pytest.approx(1.5)
        assert b.grad[0] == pytest.approx(2.0)

    def test_skips_missing_grads(self):
        p = Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)
