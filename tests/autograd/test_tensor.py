"""Tests for the autograd tensor core: arithmetic, shapes, backward."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd.tensor import Tensor, no_grad


def numeric_grad(f, x, eps=1e-3):
    """Central-difference gradient of scalar f w.r.t. tensor x's data."""
    grad = np.zeros_like(x.data)
    it = np.nditer(x.data, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x.data[idx]
        x.data[idx] = orig + eps
        hi = f()
        x.data[idx] = orig - eps
        lo = f()
        x.data[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestArithmetic:
    def test_add_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = Tensor([3.0, 4.0], requires_grad=True)
        (x + y).sum().backward()
        np.testing.assert_allclose(x.grad, [1, 1])
        np.testing.assert_allclose(y.grad, [1, 1])

    def test_mul_backward(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        y = Tensor([5.0, 7.0], requires_grad=True)
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, [5, 7])
        np.testing.assert_allclose(y.grad, [2, 3])

    def test_broadcast_add_unbroadcasts_grad(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [2, 2, 2])

    def test_scalar_operations(self):
        x = Tensor([2.0], requires_grad=True)
        y = 3 * x + 1 - x / 2
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [2.5])

    def test_pow_backward(self):
        x = Tensor([3.0], requires_grad=True)
        (x**2).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [6.0])

    def test_div_backward(self):
        x = Tensor([4.0], requires_grad=True)
        (1.0 / x).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [-1 / 16])

    def test_matmul_backward_numeric(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (x @ w).sum().backward()
        ng = numeric_grad(lambda: float((Tensor(x.data) @ Tensor(w.data)).sum().data), x)
        np.testing.assert_allclose(x.grad, ng, atol=1e-2)

    def test_batched_matmul(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        out = x @ w
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert x.grad.shape == x.shape
        assert w.grad.shape == w.shape


class TestShapes:
    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_transpose_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.transpose(1, 0)
        assert y.shape == (3, 2)
        (y * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        assert x.grad.shape == (2, 3)

    def test_default_transpose_reverses(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)

    def test_getitem_grad_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[np.array([1, 1, 3])].sum().backward()
        np.testing.assert_allclose(x.grad, [0, 2, 0, 1, 0])

    def test_slice_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x[0].sum().backward()
        np.testing.assert_allclose(x.grad, [[1, 1, 1], [0, 0, 0]])


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        y = x.sum(axis=1, keepdims=True)
        assert y.shape == (2, 1)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_negative_axis(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.sum(axis=-1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_scales_grad(self):
        x = Tensor(np.ones(4), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))

    def test_exp_log_tanh_numeric(self):
        rng = np.random.default_rng(2)
        for op in ("exp", "log", "tanh"):
            data = np.abs(rng.normal(size=4)) + 0.5
            x = Tensor(data, requires_grad=True)
            getattr(x, op)().sum().backward()
            ng = numeric_grad(
                lambda op=op, x=x: float(getattr(Tensor(x.data), op)().sum().data), x
            )
            np.testing.assert_allclose(x.grad, ng, atol=1e-2)


class TestAutogradMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2 + x * 3
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [5.0])

    def test_backward_needs_scalar_or_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        assert not x.detach().requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward(np.array([1.0]))
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_single_traversal(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3
        b = a + a  # a used twice
        b.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [6.0])

    def test_float32_storage(self):
        assert Tensor([1.0]).data.dtype == np.float32


@settings(max_examples=20, deadline=None)
@given(
    data=hnp.arrays(
        np.float32,
        hnp.array_shapes(min_dims=1, max_dims=2, max_side=4),
        elements=st.floats(min_value=-3, max_value=3, width=32),
    )
)
def test_sum_grad_is_ones(data):
    """Property: d(sum(x))/dx == 1 for any shape."""
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))
