"""Tests for optimizers and the loss scaler."""

import numpy as np
import pytest

from repro.autograd.optim import SGD, Adam, LossScaler
from repro.autograd.tensor import Tensor


def make_param(value):
    return Tensor(np.array(value, dtype=np.float32), requires_grad=True)


class TestSGD:
    def test_plain_step(self):
        p = make_param([1.0])
        p.grad = np.array([0.5], dtype=np.float32)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v = 1, p = -1
        opt.step()  # v = 1.9, p = -2.9
        np.testing.assert_allclose(p.data, [-2.9], atol=1e-6)

    def test_skips_params_without_grad(self):
        p = make_param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.array([1.0], dtype=np.float32)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_no_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.0)


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        # With bias correction, |step 1| == lr regardless of grad scale.
        p = make_param([0.0])
        p.grad = np.array([123.0], dtype=np.float32)
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(np.abs(p.data), [0.01], rtol=1e-4)

    def test_descends_quadratic(self):
        p = make_param([5.0])
        opt = Adam([p], lr=0.5)
        for _ in range(200):
            opt.zero_grad()
            p.grad = 2 * p.data  # d/dp p^2
            opt.step()
        assert abs(float(p.data[0])) < 0.1

    def test_weight_decay_pulls_to_zero(self):
        p = make_param([1.0])
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        for _ in range(100):
            opt.zero_grad()
            p.grad = np.zeros(1, dtype=np.float32)
            opt.step()
        assert abs(float(p.data[0])) < 0.5


class TestLossScaler:
    def test_scale_and_unscale_roundtrip(self):
        p = make_param([1.0])
        loss = (p * 3.0).sum()
        scaler = LossScaler(scale=1024.0)
        scaler.scale_loss(loss).backward()
        assert scaler.unscale_([p])
        np.testing.assert_allclose(p.grad, [3.0], rtol=1e-5)

    def test_overflow_detection(self):
        p = make_param([1.0])
        p.grad = np.array([np.inf], dtype=np.float32)
        assert not LossScaler().unscale_([p])
