"""Tests for the GPT model and synthetic corpus."""

import numpy as np
import pytest

from repro.autograd.optim import Adam
from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPTConfig, GPTModel


@pytest.fixture
def config():
    return GPTConfig(vocab_size=64, seq_len=16, dim=32, n_heads=4, n_blocks=2)


class TestGPTModel:
    def test_logits_shape(self, config):
        model = GPTModel(config)
        tokens = np.zeros((3, 16), dtype=np.int64)
        assert model(tokens).shape == (3, 16, 64)

    def test_pipeline_layer_count(self, config):
        model = GPTModel(config)
        assert model.n_pipeline_layers == config.n_blocks + 2

    def test_initial_loss_near_uniform(self, config):
        model = GPTModel(config)
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 64, size=(4, 16))
        targets = rng.integers(0, 64, size=(4, 16))
        loss = model.loss(tokens, targets)
        assert loss.item() == pytest.approx(np.log(64), rel=0.15)

    def test_deterministic_init(self, config):
        a, b = GPTModel(config, seed=3), GPTModel(config, seed=3)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_overfits_tiny_batch(self, config):
        """A real end-to-end learning test: loss drops on a fixed batch."""
        model = GPTModel(config, seed=0)
        opt = Adam(model.parameters(), lr=1e-2)
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 64, size=(2, 16))
        targets = rng.integers(0, 64, size=(2, 16))
        first = None
        for _ in range(30):
            opt.zero_grad()
            loss = model.loss(tokens, targets)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.5


class TestSyntheticCorpus:
    def test_token_range(self):
        corpus = SyntheticCorpus(vocab_size=32, n_tokens=1000)
        assert corpus.tokens.min() >= 0
        assert corpus.tokens.max() < 32

    def test_deterministic(self):
        a = SyntheticCorpus(vocab_size=32, n_tokens=500, seed=1)
        b = SyntheticCorpus(vocab_size=32, n_tokens=500, seed=1)
        np.testing.assert_array_equal(a.tokens, b.tokens)

    def test_batches_shapes_and_shift(self):
        corpus = SyntheticCorpus(vocab_size=32, n_tokens=2000)
        batch = next(corpus.batches(4, 10, seed=0))
        assert batch.inputs.shape == (4, 10)
        # Targets are inputs shifted by one within the corpus.
        np.testing.assert_array_equal(batch.inputs[:, 1:], batch.targets[:, :-1])

    def test_markov_structure_learnable(self):
        """Bigram statistics beat unigram: the corpus has sequential signal."""
        corpus = SyntheticCorpus(vocab_size=16, n_tokens=30_000, markov_weight=0.9)
        tokens = corpus.tokens
        # Empirical bigram conditional entropy < unigram entropy.
        unigram = np.bincount(tokens, minlength=16) / len(tokens)
        h_unigram = -np.sum(unigram[unigram > 0] * np.log(unigram[unigram > 0]))
        joint = np.zeros((16, 16))
        for a, b in zip(tokens[:-1], tokens[1:]):
            joint[a, b] += 1
        joint /= joint.sum()
        marginal = joint.sum(axis=1, keepdims=True)
        cond = np.divide(joint, marginal, out=np.zeros_like(joint), where=marginal > 0)
        h_cond = -np.sum(joint[cond > 0] * np.log(cond[cond > 0]))
        assert h_cond < 0.7 * h_unigram

    def test_corpus_too_short_rejected(self):
        corpus = SyntheticCorpus(vocab_size=16, n_tokens=5)
        with pytest.raises(ValueError):
            next(corpus.batches(1, 10))

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(vocab_size=2)
        with pytest.raises(ValueError):
            SyntheticCorpus(markov_weight=1.5)
