"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.nn.serialization import load_model, load_state_dict, save_model, state_dict
from repro.nn.transformer import GPTConfig, GPTModel

CONFIG = GPTConfig(vocab_size=32, seq_len=8, dim=16, n_heads=2, n_blocks=2)


class TestStateDict:
    def test_roundtrip_restores_weights(self):
        source = GPTModel(CONFIG, seed=1)
        target = GPTModel(CONFIG, seed=2)
        load_state_dict(target, state_dict(source))
        for a, b in zip(source.parameters(), target.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        model = GPTModel(CONFIG, seed=1)
        state = state_dict(model)
        key = next(iter(state))
        state[key][...] = 123.0
        assert not np.any(next(iter(_vals(model, key))) == 123.0)

    def test_covers_all_parameters(self):
        model = GPTModel(CONFIG, seed=1)
        state = state_dict(model)
        total = sum(v.size for v in state.values())
        assert total == model.n_parameters()

    def test_strict_missing_key(self):
        model = GPTModel(CONFIG, seed=1)
        state = state_dict(model)
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            load_state_dict(model, state)

    def test_strict_unexpected_key(self):
        model = GPTModel(CONFIG, seed=1)
        state = state_dict(model)
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            load_state_dict(model, state)

    def test_non_strict_partial_load(self):
        model = GPTModel(CONFIG, seed=1)
        state = state_dict(model)
        key = next(iter(state))
        loaded = load_state_dict(model, {key: state[key]}, strict=False)
        assert loaded == [key]

    def test_shape_mismatch(self):
        model = GPTModel(CONFIG, seed=1)
        state = state_dict(model)
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            load_state_dict(model, state)


def _vals(model, key):
    from repro.nn.serialization import _named_parameters

    yield _named_parameters(model)[key].data


class TestNpzRoundtrip:
    def test_save_load(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        source = GPTModel(CONFIG, seed=1)
        save_model(source, path)
        target = GPTModel(CONFIG, seed=9)
        load_model(target, path)
        for a, b in zip(source.parameters(), target.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_pretrain_then_finetune_workflow(self, tmp_path):
        """The §2.1 workflow: pretrain, checkpoint, fine-tune from it."""
        from repro.nn.data import SyntheticCorpus
        from repro.training.microbatch import ReferenceTrainer

        path = str(tmp_path / "pretrained.npz")
        corpus = SyntheticCorpus(vocab_size=32, n_tokens=3000, seed=0)
        pretrain_model = GPTModel(CONFIG, seed=0)
        trainer = ReferenceTrainer(pretrain_model, n_microbatches=2, lr=1e-2)
        stream = corpus.batches(4, 8, seed=1)
        for _, batch in zip(range(10), stream):
            trainer.step(batch)
        save_model(pretrain_model, path)

        finetune_model = GPTModel(CONFIG, seed=42)
        load_model(finetune_model, path)
        downstream = SyntheticCorpus(vocab_size=32, n_tokens=3000, seed=7)
        batch = next(downstream.batches(4, 8, seed=2))
        warm_loss = finetune_model.loss(batch.inputs, batch.targets).item()
        cold_loss = GPTModel(CONFIG, seed=42).loss(batch.inputs, batch.targets).item()
        # The pretrained start is better than random init even on new data.
        assert warm_loss < cold_loss
