"""Tests for the NN module system and basic layers."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModule:
    def test_parameter_discovery_recursive(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(4, 4, rng=rng)
                self.blocks = [Linear(4, 4, rng=rng), Linear(4, 4, rng=rng)]

        net = Net()
        params = list(net.parameters())
        assert len(params) == 6  # 3 linears x (weight, bias)

    def test_parameters_deduplicated(self, rng):
        class Tied(Module):
            def __init__(self):
                super().__init__()
                self.w = Tensor(np.ones(3), requires_grad=True)
                self.alias = self.w

        assert len(list(Tied().parameters())) == 1

    def test_train_eval_propagates(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5, rng=rng)

        net = Net()
        net.eval()
        assert not net.drop.training
        net.train()
        assert net.drop.training

    def test_n_parameters(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer.n_parameters() == 4 * 3 + 3


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(8, 3, rng=rng)
        out = layer(Tensor(np.ones((2, 5, 8))))
        assert out.shape == (2, 5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng=rng, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_gradients_reach_weights(self, rng):
        layer = Linear(4, 2, rng=rng)
        layer(Tensor(np.ones((3, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [3.0, 3.0])


class TestLayerNorm:
    def test_output_normalised(self, rng):
        layer = LayerNorm(16)
        x = Tensor(rng.normal(size=(4, 16)) * 10)
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-5)

    def test_two_parameters(self):
        assert len(list(LayerNorm(8).parameters())) == 2


class TestEmbedding:
    def test_lookup_shape(self, rng):
        table = Embedding(100, 16, rng=rng)
        out = table(np.zeros((2, 5), dtype=np.int64))
        assert out.shape == (2, 5, 16)

    def test_init_std(self, rng):
        table = Embedding(10_000, 64, rng=rng, std=0.02)
        assert table.weight.data.std() == pytest.approx(0.02, rel=0.1)


class TestDropout:
    def test_identity_in_eval(self, rng):
        layer = Dropout(0.9, rng=rng)
        layer.eval()
        x = Tensor(np.ones(10))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng=rng)
