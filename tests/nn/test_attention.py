"""Tests for causal self-attention."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn.attention import CausalSelfAttention


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestCausalSelfAttention:
    def test_output_shape(self, rng):
        attn = CausalSelfAttention(32, 4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 7, 32))))
        assert out.shape == (2, 7, 32)

    def test_causality(self, rng):
        """Changing a future token must not affect earlier outputs."""
        attn = CausalSelfAttention(16, 4, rng=rng)
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        base = attn(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 4] += 10.0  # poke token 4
        out = attn(Tensor(perturbed)).data
        np.testing.assert_allclose(out[0, :4], base[0, :4], atol=1e-5)
        assert not np.allclose(out[0, 4], base[0, 4])

    def test_heads_must_divide_dim(self, rng):
        with pytest.raises(ValueError):
            CausalSelfAttention(30, 4, rng=rng)

    def test_gradients_flow_to_all_weights(self, rng):
        attn = CausalSelfAttention(16, 2, rng=rng)
        attn(Tensor(rng.normal(size=(1, 4, 16)), requires_grad=True)).sum().backward()
        for param in attn.parameters():
            assert param.grad is not None

    def test_single_token_sequence(self, rng):
        attn = CausalSelfAttention(16, 2, rng=rng)
        out = attn(Tensor(rng.normal(size=(1, 1, 16))))
        assert out.shape == (1, 1, 16)
