"""Tests for sampling and perplexity evaluation."""

import numpy as np
import pytest

from repro.nn.data import SyntheticCorpus
from repro.nn.generate import generate, perplexity
from repro.nn.transformer import GPTConfig, GPTModel

CONFIG = GPTConfig(vocab_size=32, seq_len=16, dim=32, n_heads=4, n_blocks=2)


@pytest.fixture
def model():
    return GPTModel(CONFIG, seed=0)


class TestGenerate:
    def test_appends_requested_tokens(self, model):
        out = generate(model, np.array([1, 2, 3]), max_new_tokens=5)
        assert out.shape == (8,)
        np.testing.assert_array_equal(out[:3], [1, 2, 3])

    def test_tokens_in_vocab(self, model):
        out = generate(model, np.array([0]), max_new_tokens=20)
        assert out.min() >= 0 and out.max() < CONFIG.vocab_size

    def test_greedy_is_deterministic(self, model):
        a = generate(model, np.array([5]), max_new_tokens=8, temperature=0.0)
        b = generate(model, np.array([5]), max_new_tokens=8, temperature=0.0)
        np.testing.assert_array_equal(a, b)

    def test_sampling_reproducible_with_rng(self, model):
        a = generate(
            model, np.array([5]), max_new_tokens=8, rng=np.random.default_rng(1)
        )
        b = generate(
            model, np.array([5]), max_new_tokens=8, rng=np.random.default_rng(1)
        )
        np.testing.assert_array_equal(a, b)

    def test_top_k_restricts_support(self, model):
        # With top_k=1, sampling degenerates to greedy.
        greedy = generate(model, np.array([5]), max_new_tokens=6, temperature=0.0)
        topk = generate(model, np.array([5]), max_new_tokens=6, top_k=1)
        np.testing.assert_array_equal(greedy, topk)

    def test_window_longer_than_seq_len(self, model):
        prompt = np.arange(10) % CONFIG.vocab_size
        out = generate(model, prompt, max_new_tokens=CONFIG.seq_len + 4)
        assert len(out) == 10 + CONFIG.seq_len + 4

    def test_invalid_inputs(self, model):
        with pytest.raises(ValueError):
            generate(model, np.array([]), max_new_tokens=1)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), temperature=-1.0)

    def test_model_left_in_train_mode(self, model):
        generate(model, np.array([1]), max_new_tokens=1)
        assert model.training


class TestPerplexity:
    def test_random_model_near_uniform(self, model):
        corpus = SyntheticCorpus(vocab_size=32, n_tokens=2000, seed=0)
        ppl = perplexity(model, corpus, n_batches=2, batch_size=4)
        assert ppl == pytest.approx(32.0, rel=0.3)

    def test_training_reduces_perplexity(self, model):
        from repro.training.microbatch import ReferenceTrainer

        corpus = SyntheticCorpus(vocab_size=32, n_tokens=5000, seed=0)
        before = perplexity(model, corpus, n_batches=2, batch_size=4)
        trainer = ReferenceTrainer(model, n_microbatches=2, lr=3e-3)
        for _, batch in zip(range(15), corpus.batches(4, CONFIG.seq_len, seed=1)):
            trainer.step(batch)
        after = perplexity(model, corpus, n_batches=2, batch_size=4)
        assert after < before

    def test_invalid_batches(self, model):
        corpus = SyntheticCorpus(vocab_size=32, n_tokens=2000)
        with pytest.raises(ValueError):
            perplexity(model, corpus, n_batches=0)
