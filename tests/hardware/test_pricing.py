"""Tests for server pricing (Figure 15b inputs)."""

import pytest

from repro.hardware.pricing import (
    COMMODITY_4X3090TI,
    COMMODITY_8X3090TI,
    EC2_P3_8XLARGE,
    ServerRental,
    per_step_price,
)


class TestRentals:
    def test_ec2_p3_rate(self):
        assert EC2_P3_8XLARGE.hourly_usd == pytest.approx(12.24)
        assert EC2_P3_8XLARGE.n_gpus == 4

    def test_commodity_cheaper_per_hour(self):
        assert COMMODITY_4X3090TI.hourly_usd < EC2_P3_8XLARGE.hourly_usd

    def test_8gpu_scales_4gpu(self):
        assert COMMODITY_8X3090TI.hourly_usd == pytest.approx(
            2 * COMMODITY_4X3090TI.hourly_usd
        )

    def test_price_for_one_hour(self):
        assert EC2_P3_8XLARGE.price_for(3600.0) == pytest.approx(12.24)

    def test_price_linear_in_time(self):
        rental = ServerRental("x", 10.0, 1)
        assert rental.price_for(360.0) == pytest.approx(1.0)
        assert rental.price_for(720.0) == pytest.approx(2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EC2_P3_8XLARGE.price_for(-1.0)

    def test_per_step_price_helper(self):
        assert per_step_price(EC2_P3_8XLARGE, 3600.0) == pytest.approx(12.24)
