"""Tests for GPU device models."""

import pytest

from repro.hardware.gpu import (
    A100,
    GPU_PRESETS,
    RTX_3090TI,
    V100,
    GPUSpec,
    Precision,
)


class TestPresets:
    def test_table1_prices(self):
        assert RTX_3090TI.price_usd == 2_000
        assert A100.price_usd == 14_000
        assert A100.price_usd / RTX_3090TI.price_usd == 7  # "7x lower price"

    def test_table1_fp32(self):
        assert RTX_3090TI.fp32_tflops == 40.0
        assert A100.fp32_tflops == 19.0

    def test_table1_tensor_cores(self):
        assert RTX_3090TI.tensor_cores == 336
        assert A100.tensor_cores == 432

    def test_table1_connectivity(self):
        assert not RTX_3090TI.supports_p2p
        assert not RTX_3090TI.supports_nvlink
        assert A100.supports_p2p and A100.supports_nvlink
        assert V100.supports_p2p and V100.supports_nvlink

    def test_commodity_memory_is_24gb(self):
        assert RTX_3090TI.memory_bytes == 24 * 1024**3

    def test_presets_indexed_by_name(self):
        assert GPU_PRESETS["RTX 3090-Ti"] is RTX_3090TI
        assert set(GPU_PRESETS) == {"RTX 3090-Ti", "A100", "V100"}


class TestComputeSeconds:
    def test_linear_in_flops(self):
        one = RTX_3090TI.compute_seconds(1e12)
        two = RTX_3090TI.compute_seconds(2e12)
        assert two == pytest.approx(2 * one)

    def test_zero_flops_is_instant(self):
        assert RTX_3090TI.compute_seconds(0.0) == 0.0

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            RTX_3090TI.compute_seconds(-1.0)

    def test_fp32_slower_than_fp16(self):
        fp16 = RTX_3090TI.compute_seconds(1e12, Precision.FP16)
        fp32 = RTX_3090TI.compute_seconds(1e12, Precision.FP32)
        assert fp32 > fp16

    def test_utilization_derates_peak(self):
        spec = GPUSpec(
            name="x",
            memory_bytes=1,
            fp32_tflops=1.0,
            fp16_tflops=10.0,
            tensor_cores=0,
            price_usd=0.0,
            supports_p2p=False,
            supports_nvlink=False,
            utilization=0.5,
        )
        # 1e13 FLOPs at 10 TFLOP/s * 0.5 = 2 seconds.
        assert spec.compute_seconds(1e13) == pytest.approx(2.0)

    def test_peak_flops(self):
        assert RTX_3090TI.peak_flops(Precision.FP32) == pytest.approx(40e12)
        assert RTX_3090TI.peak_flops(Precision.FP16) == pytest.approx(160e12)

    def test_spec_is_immutable(self):
        with pytest.raises(Exception):
            RTX_3090TI.price_usd = 1.0
