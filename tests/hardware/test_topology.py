"""Tests for interconnect topology models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.gpu import RTX_3090TI
from repro.hardware.topology import (
    DRAM_BW,
    NVLINK_BW,
    PCIE_EFFECTIVE_BW,
    Topology,
    commodity_server,
    datacenter_server,
    topo_1_3,
    topo_2_2,
    topo_4,
    topo_4_4,
)


class TestConstruction:
    def test_gpu_counts(self):
        assert topo_4().n_gpus == 4
        assert topo_2_2().n_gpus == 4
        assert topo_1_3().n_gpus == 4
        assert topo_4_4().n_gpus == 8

    def test_root_complex_counts(self):
        assert topo_4().n_root_complexes == 1
        assert topo_2_2().n_root_complexes == 2
        assert topo_4_4().n_root_complexes == 2

    def test_names(self):
        assert topo_2_2().name == "Topo 2+2"
        assert topo_4().name == "Topo 4"
        assert topo_1_3().name == "Topo 1+3"

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            Topology(RTX_3090TI, [])
        with pytest.raises(ValueError):
            Topology(RTX_3090TI, [2, 0])

    def test_commodity_has_no_p2p(self):
        assert not topo_2_2().has_p2p

    def test_datacenter_has_p2p(self):
        assert datacenter_server().has_p2p

    def test_datacenter_rejects_odd_count(self):
        with pytest.raises(ValueError):
            datacenter_server(3)


class TestRootComplexes:
    def test_topo_2_2_grouping(self):
        topo = topo_2_2()
        assert topo.root_complex_of(0) == topo.root_complex_of(1) == 0
        assert topo.root_complex_of(2) == topo.root_complex_of(3) == 1

    def test_topo_1_3_grouping(self):
        topo = topo_1_3()
        assert topo.gpus_under_root_complex(0) == (0,)
        assert topo.gpus_under_root_complex(1) == (1, 2, 3)

    def test_share_root_complex(self):
        topo = topo_2_2()
        assert topo.share_root_complex(0, 1)
        assert not topo.share_root_complex(1, 2)

    def test_shared_group_size_eq12(self):
        # shared(i, j) of Eq. 12: GPUs under the common root complex.
        topo = topo_1_3()
        assert topo.shared_group_size(1, 2) == 3
        assert topo.shared_group_size(0, 1) == 0
        assert topo.shared_group_size(0, 0) == 1

    def test_gpu_out_of_range(self):
        with pytest.raises(ValueError):
            topo_4().root_complex_of(4)
        with pytest.raises(ValueError):
            topo_4().root_complex_of(-1)

    def test_unknown_root_complex(self):
        with pytest.raises(ValueError):
            topo_4().gpus_under_root_complex(1)


class TestPaths:
    def test_dram_path_traverses_switch_and_rc(self):
        topo = topo_2_2()
        assert topo.path_to_dram(2) == (("gpu2", "sw1"), ("sw1", "rc1"), ("rc1", "dram"))

    def test_from_dram_reverses_direction(self):
        topo = topo_2_2()
        down = topo.path_from_dram(2)
        up = topo.path_to_dram(2)
        assert down == tuple((v, u) for (u, v) in reversed(up))

    def test_gpu_to_gpu_bounces_without_p2p(self):
        topo = topo_2_2()
        path = topo.gpu_to_gpu_path(0, 2)
        assert path == topo.path_to_dram(0) + topo.path_from_dram(2)

    def test_gpu_to_gpu_direct_with_nvlink(self):
        topo = datacenter_server()
        assert topo.gpu_to_gpu_path(0, 2) == (("gpu0", "gpu2"),)

    def test_same_gpu_transfer_is_empty(self):
        assert topo_2_2().gpu_to_gpu_path(1, 1) == ()

    def test_full_duplex_edges_are_independent(self):
        topo = topo_2_2()
        assert topo.bandwidth_of(("gpu0", "sw0")) == PCIE_EFFECTIVE_BW
        assert topo.bandwidth_of(("sw0", "gpu0")) == PCIE_EFFECTIVE_BW

    def test_dram_edge_bandwidth(self):
        assert topo_2_2().bandwidth_of(("rc0", "dram")) == DRAM_BW

    def test_nvlink_edge_bandwidth(self):
        assert datacenter_server().bandwidth_of(("gpu0", "gpu1")) == NVLINK_BW

    def test_unknown_edge_raises(self):
        with pytest.raises(KeyError):
            topo_2_2().bandwidth_of(("gpu0", "dram"))

    def test_path_bandwidth_is_min_edge(self):
        topo = topo_2_2()
        assert topo.path_bandwidth(topo.path_to_dram(0)) == PCIE_EFFECTIVE_BW

    def test_empty_path_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            topo_2_2().path_bandwidth(())


@given(groups=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4))
def test_every_gpu_reaches_dram(groups):
    """Property: on any commodity server, each GPU has a 3-edge DRAM path
    whose edges all exist in the topology with positive bandwidth."""
    topo = commodity_server(groups)
    for gpu in range(topo.n_gpus):
        for path in (topo.path_to_dram(gpu), topo.path_from_dram(gpu)):
            assert len(path) == 3
            for edge in path:
                assert topo.bandwidth_of(edge) > 0


@given(groups=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3))
def test_group_partition_is_consistent(groups):
    """Property: root-complex membership partitions the GPU set exactly."""
    topo = commodity_server(groups)
    seen = []
    for rc in range(topo.n_root_complexes):
        members = topo.gpus_under_root_complex(rc)
        assert len(members) == groups[rc]
        for gpu in members:
            assert topo.root_complex_of(gpu) == rc
        seen.extend(members)
    assert sorted(seen) == list(range(topo.n_gpus))
