"""PlanService end-to-end: coalescing, caching, the degrade ladder, shutdown."""

import pytest

from repro.core.api import MobiusConfig, plan_mobius
from repro.faults.recovery import RetryPolicy
from repro.perf.cache import cache_overridden, get_cache
from repro.serve.daemon import PlanService, ServiceConfig
from repro.serve.requests import AdmissionRejected, Deadline, PlanRequest
from repro.serve.supervisor import SupervisorConfig

CONFIG = MobiusConfig(partition_time_limit=1.0)


def _request(tiny_model, topo22, **kwargs) -> PlanRequest:
    return PlanRequest(model=tiny_model, topology=topo22, config=CONFIG, **kwargs)


def _service(**cfg) -> PlanService:
    return PlanService(ServiceConfig(**cfg), sleeper=lambda _s: None)


class TestHappyPath:
    def test_solver_then_cache(self, tiny_model, topo22):
        with cache_overridden(), _service() as service:
            first = service.plan(_request(tiny_model, topo22))
            second = service.plan(_request(tiny_model, topo22))
        assert first.ok and first.status == "ok" and first.source == "solver"
        assert second.ok and second.source == "cache"
        assert first.plan_fingerprint == second.plan_fingerprint
        assert service.completed == 2

    def test_stats_shape(self, tiny_model, topo22):
        with cache_overridden(), _service() as service:
            service.plan(_request(tiny_model, topo22))
            stats = service.stats()
        assert stats["completed"] == 1
        assert stats["supervisor"] == {"crashes": 0, "restarts": 0}
        assert stats["store"] == {}  # memory-only service

    def test_unknown_worker_kind_rejected(self):
        with pytest.raises(ValueError, match="worker kind"):
            PlanService(ServiceConfig(worker="accelerated"))


class TestCoalescing:
    def test_identical_requests_share_one_solve(self, tiny_model, topo22):
        with cache_overridden(), _service(autostart=False) as service:
            tickets = [
                service.submit(_request(tiny_model, topo22, tenant=f"t{i}"))
                for i in range(3)
            ]
            assert [t.coalesced for t in tickets] == [False, True, True]
            service.start()
            responses = [service.result(t) for t in tickets]
        assert service.completed == 1
        assert service.coalesced_joins == 2
        assert {r.plan_fingerprint for r in responses} == {
            responses[0].plan_fingerprint
        }
        assert all(r.coalesced == 3 for r in responses)
        # Each tenant gets its own response envelope back.
        assert [r.tenant for r in responses] == ["t0", "t1", "t2"]


class TestDeadlineLadder:
    def test_cold_miss_serves_truncated_incumbent(self, tiny_model, topo22):
        tight = _request(tiny_model, topo22, deadline=Deadline(max_nodes=1))
        with cache_overridden(), _service() as service:
            resp = service.plan(tight)
        assert resp.status == "degraded" and resp.ok
        assert resp.source == "solver"
        assert resp.degraded and not resp.stale and not resp.optimal
        assert "budget-truncated incumbent" in resp.reason
        assert service.deadline_misses == 1

    def test_warm_miss_serves_last_known_good(self, tiny_model, topo22):
        full = _request(tiny_model, topo22)
        tight = _request(tiny_model, topo22, deadline=Deadline(max_nodes=1))
        with cache_overridden(), _service() as service:
            baseline = service.plan(full)
            resp = service.plan(tight)
        assert baseline.status == "ok" and baseline.optimal
        assert resp.status == "degraded" and resp.source == "stale"
        assert resp.stale and resp.optimal  # full-quality plan, just stale
        assert resp.plan_fingerprint == baseline.plan_fingerprint


class TestDeadWorkerDegrade:
    def _crashing_service(self) -> PlanService:
        service = _service(
            supervisor=SupervisorConfig(
                restart_policy=RetryPolicy(max_attempts=1, base_delay=1e-3),
                quarantine_after=5,
            )
        )
        service.supervisor.sabotage_hook = lambda key, attempt: "crash"
        return service

    def test_heuristic_fallback_without_lkg(self, tiny_model, topo22):
        with cache_overridden(), self._crashing_service() as service:
            resp = service.plan(_request(tiny_model, topo22))
        assert resp.status == "degraded" and resp.ok
        assert resp.source == "heuristic"
        assert "max-stage heuristic" in resp.reason
        assert service.degraded_fallbacks == 1

    def test_stale_fallback_with_lkg(self, tiny_model, topo22):
        with cache_overridden(), self._crashing_service() as service:
            service.supervisor.sabotage_hook = None
            baseline = service.plan(_request(tiny_model, topo22))
            service.supervisor.sabotage_hook = lambda key, attempt: "crash"
            # A deadline changes the solve key, so this misses the cache
            # and hits the (now dead) worker — but the LKG registry has a
            # full-quality plan for the same (model, topology, config).
            resp = service.plan(
                _request(tiny_model, topo22, deadline=Deadline(max_nodes=64))
            )
        assert resp.status == "degraded" and resp.source == "stale"
        assert resp.plan_fingerprint == baseline.plan_fingerprint


class TestShutdownAndQuarantine:
    def test_submit_after_close_is_shed(self, tiny_model, topo22):
        with cache_overridden():
            service = _service()
            service.close()
            with pytest.raises(AdmissionRejected) as exc:
                service.submit(_request(tiny_model, topo22))
        assert exc.value.reason == "shutdown"
        assert service.rejections == {"shutdown": 1}

    def test_quarantined_key_shed_at_the_front_door(self, tiny_model, topo22):
        with cache_overridden(), _service(
            supervisor=SupervisorConfig(
                restart_policy=RetryPolicy(max_attempts=5, base_delay=1e-3),
                quarantine_after=2,
            )
        ) as service:
            service.supervisor.sabotage_hook = lambda key, attempt: "crash"
            first = service.plan(_request(tiny_model, topo22))
            assert first.status == "rejected" and not first.ok
            with pytest.raises(AdmissionRejected) as exc:
                service.submit(_request(tiny_model, topo22))
            assert exc.value.reason == "quarantined"


class TestDurability:
    def test_restarted_service_resumes_from_the_store(
        self, tiny_model, topo22, tmp_path
    ):
        store = str(tmp_path / "serve.sqlite")
        with cache_overridden():
            with _service(store_path=store) as service:
                cold = service.plan(_request(tiny_model, topo22))
        assert cold.source == "solver"
        # "Restart": a fresh cache (new process, in effect) + the same
        # store. The plan comes back from the durable tier, byte-identical.
        with cache_overridden():
            with _service(store_path=store) as service:
                warm = service.plan(_request(tiny_model, topo22))
        assert warm.ok and warm.source == "cache"
        assert warm.plan_fingerprint == cold.plan_fingerprint

    def test_lkg_survives_restart(self, tiny_model, topo22, tmp_path):
        store = str(tmp_path / "serve.sqlite")
        with cache_overridden():
            with _service(store_path=store) as service:
                baseline = service.plan(_request(tiny_model, topo22))
        with cache_overridden():
            with _service(store_path=store) as service:
                # Same-config tight request misses memory LKG but finds the
                # durable copy written before the "restart".
                tight = _request(tiny_model, topo22, deadline=Deadline(max_nodes=1))
                resp = service.plan(tight)
        assert resp.source == "stale"
        assert resp.plan_fingerprint == baseline.plan_fingerprint


class TestMemoCoupling:
    def test_service_plans_warm_direct_plan_mobius(self, tiny_model, topo22):
        request = _request(tiny_model, topo22)
        with cache_overridden(), _service() as service:
            served = service.plan(request)
            hits_before = get_cache().stats["plan"].memory_hits
            report = plan_mobius(tiny_model, topo22, request.effective_config())
            assert get_cache().stats["plan"].memory_hits == hits_before + 1
        assert served.plan_fingerprint is not None
        assert report is not None
