"""Admission control: bounded queue, tenant fairness, coalesce exemption."""

import pytest

from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.requests import AdmissionRejected


def _controller(max_pending=3, max_pending_per_tenant=2) -> AdmissionController:
    return AdmissionController(
        AdmissionConfig(
            max_pending=max_pending,
            max_pending_per_tenant=max_pending_per_tenant,
        )
    )


class TestConfig:
    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionConfig(max_pending=0)
        with pytest.raises(ValueError, match="max_pending_per_tenant"):
            AdmissionConfig(max_pending_per_tenant=0)


class TestGlobalBound:
    def test_queue_full_sheds_load(self):
        ctrl = _controller(max_pending=2, max_pending_per_tenant=10)
        ctrl.admit("a", "k1", coalesced=False)
        ctrl.admit("a", "k2", coalesced=False)
        with pytest.raises(AdmissionRejected) as exc:
            ctrl.admit("b", "k3", coalesced=False)
        assert exc.value.reason == "queue-full"
        assert exc.value.tenant == "b"
        assert ctrl.rejections == {"queue-full": 1}

    def test_release_reopens_the_queue(self):
        ctrl = _controller(max_pending=1, max_pending_per_tenant=10)
        ctrl.admit("a", "k1", coalesced=False)
        ctrl.release("a", coalesced=False)
        ctrl.admit("a", "k2", coalesced=False)  # does not raise
        assert ctrl.snapshot()["pending"] == 1

    def test_coalesced_exempt_from_global_bound(self):
        # Joining an in-flight solve adds no solver work, so a full queue
        # must not reject it.
        ctrl = _controller(max_pending=1, max_pending_per_tenant=10)
        ctrl.admit("a", "k1", coalesced=False)
        ctrl.admit("b", "k1", coalesced=True)
        assert ctrl.snapshot()["pending"] == 1
        assert ctrl.snapshot()["per_tenant"] == {"a": 1, "b": 1}


class TestTenantFairness:
    def test_tenant_quota_binds_before_global(self):
        ctrl = _controller(max_pending=10, max_pending_per_tenant=2)
        ctrl.admit("greedy", "k1", coalesced=False)
        ctrl.admit("greedy", "k2", coalesced=False)
        with pytest.raises(AdmissionRejected) as exc:
            ctrl.admit("greedy", "k3", coalesced=False)
        assert exc.value.reason == "tenant-quota"
        # Other tenants still get in.
        ctrl.admit("polite", "k4", coalesced=False)

    def test_coalesced_still_charged_to_tenant(self):
        # The fairness bound counts every ticket: one tenant replaying the
        # same request coalesces, but cannot hold unbounded fan-out slots.
        ctrl = _controller(max_pending=10, max_pending_per_tenant=2)
        ctrl.admit("a", "k1", coalesced=False)
        ctrl.admit("a", "k1", coalesced=True)
        with pytest.raises(AdmissionRejected) as exc:
            ctrl.admit("a", "k1", coalesced=True)
        assert exc.value.reason == "tenant-quota"

    def test_release_clears_tenant_slot(self):
        ctrl = _controller(max_pending=10, max_pending_per_tenant=1)
        ctrl.admit("a", "k1", coalesced=False)
        ctrl.release("a", coalesced=False)
        assert ctrl.snapshot()["per_tenant"] == {}
        ctrl.admit("a", "k2", coalesced=False)


class TestSnapshot:
    def test_counters_accumulate_by_reason(self):
        ctrl = _controller(max_pending=1, max_pending_per_tenant=1)
        ctrl.admit("a", "k1", coalesced=False)
        for _ in range(2):
            with pytest.raises(AdmissionRejected):
                ctrl.admit("a", "k2", coalesced=False)  # tenant-quota
        with pytest.raises(AdmissionRejected):
            ctrl.admit("b", "k3", coalesced=False)  # queue-full
        snap = ctrl.snapshot()
        assert snap["rejections"] == {"queue-full": 1, "tenant-quota": 2}
        assert snap["pending"] == 1
