"""The chaos harness itself is tier-1: every scenario must hold."""

from repro.serve.chaos import SCENARIOS, run_chaos


def test_every_scenario_passes(tmp_path):
    rows = run_chaos(workdir=str(tmp_path))
    assert len(rows) == len(SCENARIOS)
    assert len({row["name"] for row in rows}) == len(rows)  # names are unique
    failures = [row for row in rows if not row["ok"]]
    assert not failures, failures
