"""Request content-addressing: solve keys, deadlines, and the memo-key pin."""

import dataclasses

import pytest

from repro.core.api import MobiusConfig, plan_mobius
from repro.perf.cache import cache_overridden, get_cache
from repro.serve.requests import Deadline, PlanRequest


def _request(tiny_model, topo22, **kwargs) -> PlanRequest:
    return PlanRequest(
        model=tiny_model,
        topology=topo22,
        config=MobiusConfig(partition_time_limit=1.0),
        **kwargs,
    )


class TestDeadline:
    def test_requires_positive_budget(self):
        with pytest.raises(ValueError, match="max_nodes"):
            Deadline(max_nodes=0)

    def test_folds_into_the_effective_config(self, tiny_model, topo22):
        request = _request(tiny_model, topo22, deadline=Deadline(max_nodes=7))
        assert request.effective_config().partition_max_nodes == 7
        assert request.config.partition_max_nodes is None  # original untouched

    def test_no_deadline_keeps_the_config(self, tiny_model, topo22):
        request = _request(tiny_model, topo22)
        assert request.effective_config() is request.config


class TestSolveKey:
    def test_tenant_excluded_for_cross_tenant_coalescing(self, tiny_model, topo22):
        a = _request(tiny_model, topo22, tenant="alpha")
        b = _request(tiny_model, topo22, tenant="beta")
        assert a.solve_key() == b.solve_key()

    def test_deadline_included(self, tiny_model, topo22):
        full = _request(tiny_model, topo22)
        tight = _request(tiny_model, topo22, deadline=Deadline(max_nodes=1))
        assert full.solve_key() != tight.solve_key()

    def test_quality_key_ignores_the_deadline(self, tiny_model, topo22):
        full = _request(tiny_model, topo22)
        tight = _request(tiny_model, topo22, deadline=Deadline(max_nodes=1))
        assert full.quality_key() == tight.quality_key()
        assert full.quality_key() != full.solve_key()  # distinct namespaces

    def test_frozen(self, tiny_model, topo22):
        request = _request(tiny_model, topo22)
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.tenant = "other"


class TestMemoKeyPin:
    def test_memo_key_matches_plan_mobius_cache_key(self, tiny_model, topo22):
        """Pin the coupling: daemon-side lookups must hit plan_mobius entries.

        PlanRequest.memo_key() mirrors the exact memoize key used inside
        plan_mobius; if either side changes shape, the daemon silently
        stops seeing worker-computed plans — this test is the tripwire.
        """
        request = _request(tiny_model, topo22, deadline=Deadline(max_nodes=64))
        with cache_overridden():
            _, found_before = get_cache().lookup("plan", request.memo_key())
            assert not found_before
            report = plan_mobius(tiny_model, topo22, request.effective_config())
            value, found = get_cache().lookup("plan", request.memo_key())
            assert found
            assert value is report


class TestSolverModeNormalization:
    """solver_mode is an execution strategy, not plan content: all keys
    and cache entries are shared between solo and portfolio requests."""

    def test_memo_key_ignores_solver_mode(self, tiny_model, topo22):
        solo = _request(tiny_model, topo22)
        portfolio = _request(
            tiny_model,
            topo22,
        )
        portfolio = dataclasses.replace(
            portfolio,
            config=dataclasses.replace(portfolio.config, solver_mode="portfolio"),
        )
        assert solo.memo_key() == portfolio.memo_key()
        assert solo.quality_key() == portfolio.quality_key()

    def test_solve_key_still_separates_real_config_changes(
        self, tiny_model, topo22
    ):
        solo = _request(tiny_model, topo22)
        other = dataclasses.replace(
            solo, config=dataclasses.replace(solo.config, n_microbatches=8)
        )
        assert solo.memo_key() != other.memo_key()

    def test_portfolio_request_hits_the_solo_cache_entry(
        self, tiny_model, topo22
    ):
        solo_config = MobiusConfig(partition_time_limit=1.0)
        portfolio_config = dataclasses.replace(
            solo_config, solver_mode="portfolio"
        )
        with cache_overridden():
            report = plan_mobius(tiny_model, topo22, solo_config)
            again = plan_mobius(tiny_model, topo22, portfolio_config)
        assert again is report  # cache hit: no second solve, no divergence
