"""DurableStore crash-safety: checksums, quarantine, whole-file recovery."""

import sqlite3

from repro.serve.store import DurableStore


def _flip_payload(path, garbage=b"\x00\x01\x02"):
    conn = sqlite3.connect(str(path))
    try:
        with conn:
            return conn.execute(
                "UPDATE entries SET payload = ?", (garbage,)
            ).rowcount
    finally:
        conn.close()


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            store.put("ns", "digest-1", {"answer": 42})
            value, found = store.get("ns", "digest-1")
            assert found and value == {"answer": 42}

    def test_miss(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            assert store.get("ns", "nope") == (None, False)

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with DurableStore(path) as store:
            store.put("ns", "digest-1", ("tuple", 1))
        with DurableStore(path) as store:
            assert store.get("ns", "digest-1") == (("tuple", 1), True)

    def test_overwrite_replaces(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            store.put("ns", "d", "old")
            store.put("ns", "d", "new")
            assert store.get("ns", "d") == ("new", True)

    def test_counts(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            store.put("a", "1", 1)
            store.put("a", "2", 2)
            store.put("b", "1", 3)
            assert store.counts() == {"a": 2, "b": 1}

    def test_unpicklable_value_is_a_noop(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            store.put("ns", "d", lambda: None)  # functions cannot pickle
            assert store.get("ns", "d") == (None, False)


class TestEntryQuarantine:
    def test_checksum_mismatch_reads_as_miss(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with DurableStore(path) as store:
            store.put("ns", "d", "value")
        assert _flip_payload(path) == 1
        with DurableStore(path) as store:
            assert store.get("ns", "d") == (None, False)
            assert store.quarantined_entries == 1
            # The entry moved to the quarantine table — not silently lost.
            assert store.counts() == {"quarantine": 1}
            # And the recomputed value can be stored again and read back.
            store.put("ns", "d", "recomputed")
            assert store.get("ns", "d") == ("recomputed", True)

    def test_unpicklable_payload_quarantined(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with DurableStore(path) as store:
            store.put("ns", "d", "value")
        # Valid checksum over garbage bytes: passes verification, fails
        # unpickling — the second line of defence.
        import hashlib

        garbage = b"not a pickle"
        conn = sqlite3.connect(str(path))
        try:
            with conn:
                conn.execute(
                    "UPDATE entries SET payload = ?, checksum = ?",
                    (garbage, hashlib.sha256(garbage).hexdigest()),
                )
        finally:
            conn.close()
        with DurableStore(path) as store:
            assert store.get("ns", "d") == (None, False)
            assert store.quarantined_entries == 1


class TestFileRecovery:
    def test_garbage_file_set_aside_and_recreated(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with DurableStore(path) as store:
            store.put("ns", "d", "value")
        path.write_bytes(b"definitely not a sqlite database")
        with DurableStore(path) as store:
            assert store.recovered_files == 1
            assert store.get("ns", "d") == (None, False)  # cold, not crashed
            store.put("ns", "d", "fresh")
            assert store.get("ns", "d") == ("fresh", True)
        corpses = list(tmp_path.glob("s.sqlite.corrupt.*"))
        assert len(corpses) == 1  # preserved for diagnosis

    def test_repeated_recoveries_number_the_corpses(self, tmp_path):
        path = tmp_path / "s.sqlite"
        for _ in range(2):
            path.write_bytes(b"garbage")
            DurableStore(path).close()
        names = sorted(p.name for p in tmp_path.glob("s.sqlite.corrupt.*"))
        assert names == ["s.sqlite.corrupt.1", "s.sqlite.corrupt.2"]


class TestProtocols:
    def test_result_cache_backend_namespacing(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            store.store("plan", "digest", "report")
            assert store.load("plan", "digest") == ("report", True)
            # Prefixed so cache namespaces cannot collide with hint/lkg.
            assert store.get("cache/plan", "digest") == ("report", True)
            assert store.get("plan", "digest") == (None, False)

    def test_hint_protocol_round_trip(self, tmp_path):
        key = ("model", 12, "gpu", 2)
        with DurableStore(tmp_path / "s.sqlite") as store:
            assert store.get_hint(key) is None
            store.put_hint(key, {"boundaries": (1, 4, 8)})
            assert store.get_hint(key) == {"boundaries": (1, 4, 8)}


class _FlakyConnection:
    """Proxy that raises SQLITE_BUSY for the first ``failures`` executes."""

    def __init__(self, conn, failures, message="database is locked"):
        self._conn = conn
        self.failures = failures
        self.message = message

    def __getattr__(self, name):
        return getattr(self._conn, name)

    def __enter__(self):
        return self._conn.__enter__()

    def __exit__(self, *exc_info):
        return self._conn.__exit__(*exc_info)

    def execute(self, *args, **kwargs):
        if self.failures > 0:
            self.failures -= 1
            raise sqlite3.OperationalError(self.message)
        return self._conn.execute(*args, **kwargs)


class TestBusyRetries:
    """SQLITE_BUSY is contention, not corruption: retry, then miss."""

    def _flaky_store(self, tmp_path, failures, **kwargs):
        sleeps = []
        store = DurableStore(
            tmp_path / "s.db", sleeper=sleeps.append, **kwargs
        )
        store._conn = _FlakyConnection(store._conn, failures)
        return store, sleeps

    def test_transient_contention_is_absorbed(self, tmp_path):
        store, sleeps = self._flaky_store(tmp_path, failures=2)
        store.put("ns", "k", {"v": 1})
        assert store.get("ns", "k") == ({"v": 1}, True)
        assert store.busy_events == 2
        assert store.recovered_files == 0  # the file was never touched
        assert len(sleeps) == 2
        assert sleeps == sorted(sleeps)  # paced: delays grow per attempt
        store.close()

    def test_contention_outlasting_the_budget_degrades_to_a_miss(
        self, tmp_path
    ):
        store, _ = self._flaky_store(tmp_path, failures=99, busy_retries=3)
        store.put("ns", "k", "value")  # all 4 attempts busy: no-op, no raise
        assert store.busy_events == 4
        assert store.recovered_files == 0
        # The store stays usable once the contention clears.
        store._conn.failures = 0
        store.put("ns", "k", "value")
        assert store.get("ns", "k") == ("value", True)
        store.close()

    def test_sqlite_locked_variant_is_also_retryable(self, tmp_path):
        store = DurableStore(tmp_path / "s.db", sleeper=lambda _s: None)
        store._conn = _FlakyConnection(
            store._conn, 1, message="database table is locked"
        )
        store.put("ns", "k", 7)
        assert store.busy_events == 1
        assert store.recovered_files == 0
        assert store.get("ns", "k") == (7, True)
        store.close()

    def test_genuine_database_error_still_recovers_the_file(self, tmp_path):
        store = DurableStore(tmp_path / "s.db", sleeper=lambda _s: None)
        store.put("ns", "k", 1)

        class _Corrupt:
            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def execute(self, *args, **kwargs):
                raise sqlite3.DatabaseError("database disk image is malformed")

            def close(self):
                pass

        store._conn = _Corrupt()
        store.put("ns", "k2", 2)
        assert store.busy_events == 0
        assert store.recovered_files == 1  # recovery, not retry
        # Recovery swapped in a fresh database: old entries are gone,
        # new writes land.
        store.put("ns", "k3", 3)
        assert store.get("ns", "k3") == (3, True)
        assert store.get("ns", "k") == (None, False)
        store.close()

    def test_negative_retry_budget_rejected(self, tmp_path):
        import pytest

        with pytest.raises(ValueError, match="busy_retries"):
            DurableStore(tmp_path / "s.db", busy_retries=-1)


class TestTwoWriterContention:
    def test_two_threads_one_file_no_recovery(self, tmp_path):
        """Two writers hammering one WAL file: every entry lands, the
        busy-retry path absorbs any collision, and neither store ever
        escalates to whole-file recovery."""
        import threading

        path = tmp_path / "shared.db"
        stores = [DurableStore(path, busy_timeout=5.0) for _ in range(2)]
        errors = []

        def hammer(store, who):
            try:
                for i in range(50):
                    store.put("ns", f"{who}-{i}", (who, i))
            except Exception as err:  # pragma: no cover - the assertion
                errors.append(err)

        threads = [
            threading.Thread(target=hammer, args=(store, who))
            for who, store in enumerate(stores)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert errors == []
        assert all(store.recovered_files == 0 for store in stores)
        reader = stores[0]
        for who in range(2):
            for i in range(50):
                assert reader.get("ns", f"{who}-{i}") == ((who, i), True)
        assert reader.counts()["ns"] == 100
        for store in stores:
            store.close()
