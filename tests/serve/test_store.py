"""DurableStore crash-safety: checksums, quarantine, whole-file recovery."""

import sqlite3

from repro.serve.store import DurableStore


def _flip_payload(path, garbage=b"\x00\x01\x02"):
    conn = sqlite3.connect(str(path))
    try:
        with conn:
            return conn.execute(
                "UPDATE entries SET payload = ?", (garbage,)
            ).rowcount
    finally:
        conn.close()


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            store.put("ns", "digest-1", {"answer": 42})
            value, found = store.get("ns", "digest-1")
            assert found and value == {"answer": 42}

    def test_miss(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            assert store.get("ns", "nope") == (None, False)

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with DurableStore(path) as store:
            store.put("ns", "digest-1", ("tuple", 1))
        with DurableStore(path) as store:
            assert store.get("ns", "digest-1") == (("tuple", 1), True)

    def test_overwrite_replaces(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            store.put("ns", "d", "old")
            store.put("ns", "d", "new")
            assert store.get("ns", "d") == ("new", True)

    def test_counts(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            store.put("a", "1", 1)
            store.put("a", "2", 2)
            store.put("b", "1", 3)
            assert store.counts() == {"a": 2, "b": 1}

    def test_unpicklable_value_is_a_noop(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            store.put("ns", "d", lambda: None)  # functions cannot pickle
            assert store.get("ns", "d") == (None, False)


class TestEntryQuarantine:
    def test_checksum_mismatch_reads_as_miss(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with DurableStore(path) as store:
            store.put("ns", "d", "value")
        assert _flip_payload(path) == 1
        with DurableStore(path) as store:
            assert store.get("ns", "d") == (None, False)
            assert store.quarantined_entries == 1
            # The entry moved to the quarantine table — not silently lost.
            assert store.counts() == {"quarantine": 1}
            # And the recomputed value can be stored again and read back.
            store.put("ns", "d", "recomputed")
            assert store.get("ns", "d") == ("recomputed", True)

    def test_unpicklable_payload_quarantined(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with DurableStore(path) as store:
            store.put("ns", "d", "value")
        # Valid checksum over garbage bytes: passes verification, fails
        # unpickling — the second line of defence.
        import hashlib

        garbage = b"not a pickle"
        conn = sqlite3.connect(str(path))
        try:
            with conn:
                conn.execute(
                    "UPDATE entries SET payload = ?, checksum = ?",
                    (garbage, hashlib.sha256(garbage).hexdigest()),
                )
        finally:
            conn.close()
        with DurableStore(path) as store:
            assert store.get("ns", "d") == (None, False)
            assert store.quarantined_entries == 1


class TestFileRecovery:
    def test_garbage_file_set_aside_and_recreated(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with DurableStore(path) as store:
            store.put("ns", "d", "value")
        path.write_bytes(b"definitely not a sqlite database")
        with DurableStore(path) as store:
            assert store.recovered_files == 1
            assert store.get("ns", "d") == (None, False)  # cold, not crashed
            store.put("ns", "d", "fresh")
            assert store.get("ns", "d") == ("fresh", True)
        corpses = list(tmp_path.glob("s.sqlite.corrupt.*"))
        assert len(corpses) == 1  # preserved for diagnosis

    def test_repeated_recoveries_number_the_corpses(self, tmp_path):
        path = tmp_path / "s.sqlite"
        for _ in range(2):
            path.write_bytes(b"garbage")
            DurableStore(path).close()
        names = sorted(p.name for p in tmp_path.glob("s.sqlite.corrupt.*"))
        assert names == ["s.sqlite.corrupt.1", "s.sqlite.corrupt.2"]


class TestProtocols:
    def test_result_cache_backend_namespacing(self, tmp_path):
        with DurableStore(tmp_path / "s.sqlite") as store:
            store.store("plan", "digest", "report")
            assert store.load("plan", "digest") == ("report", True)
            # Prefixed so cache namespaces cannot collide with hint/lkg.
            assert store.get("cache/plan", "digest") == ("report", True)
            assert store.get("plan", "digest") == (None, False)

    def test_hint_protocol_round_trip(self, tmp_path):
        key = ("model", 12, "gpu", 2)
        with DurableStore(tmp_path / "s.sqlite") as store:
            assert store.get_hint(key) is None
            store.put_hint(key, {"boundaries": (1, 4, 8)})
            assert store.get_hint(key) == {"boundaries": (1, 4, 8)}
