"""Supervisor crash ladder: restart pacing, quarantine, solve-error passthrough."""

import pytest

from repro.core.api import MobiusConfig
from repro.faults.recovery import RetryPolicy
from repro.perf.cache import cache_overridden
from repro.perf.fingerprint import fingerprint
from repro.serve.supervisor import (
    InlineWorker,
    ProcessWorker,
    RequestQuarantined,
    Supervisor,
    SupervisorConfig,
    WorkerSolveError,
    WorkerUnavailable,
)

CONFIG = MobiusConfig(partition_time_limit=1.0)


def _supervisor(sleeps=None, **cfg) -> Supervisor:
    cfg.setdefault(
        "restart_policy", RetryPolicy(max_attempts=3, base_delay=1e-3, max_delay=0.25)
    )
    sleeper = sleeps.append if sleeps is not None else (lambda _s: None)
    return Supervisor(InlineWorker, SupervisorConfig(**cfg), sleeper=sleeper)


class TestConfig:
    def test_quarantine_after_validated(self):
        with pytest.raises(ValueError, match="quarantine_after"):
            SupervisorConfig(quarantine_after=0)


class TestRecovery:
    def test_crash_then_recover(self, tiny_model, topo22):
        sleeps = []
        sup = _supervisor(sleeps)
        sup.sabotage_hook = lambda key, attempt: "crash" if attempt == 1 else None
        with cache_overridden():
            outcome = sup.solve(tiny_model, topo22, CONFIG, "key-1")
        assert outcome.attempts == 2
        assert outcome.restarts == 1
        assert sup.crashes == 1
        # The restart was paced by the policy's deterministic schedule.
        assert sleeps == [sup.config.restart_policy.backoff(1)]
        # Success clears the crash count: the key is not on a poison path.
        assert sup._crash_counts == {}

    def test_restart_budget_exhaustion(self, tiny_model, topo22):
        sleeps = []
        sup = _supervisor(
            sleeps,
            restart_policy=RetryPolicy(max_attempts=2, base_delay=1e-3),
            quarantine_after=10,
        )
        sup.sabotage_hook = lambda key, attempt: "crash"
        with pytest.raises(WorkerUnavailable) as exc:
            sup.solve(tiny_model, topo22, CONFIG, "key-1")
        assert exc.value.attempts == 2
        # The last failed attempt is never followed by a wait.
        assert sleeps == [sup.config.restart_policy.backoff(1)]


class TestQuarantine:
    def test_poison_key_quarantined_then_refused(self, tiny_model, topo22):
        sup = _supervisor(quarantine_after=2, restart_policy=RetryPolicy(max_attempts=5))
        sup.sabotage_hook = lambda key, attempt: "crash"
        with pytest.raises(RequestQuarantined) as exc:
            sup.solve(tiny_model, topo22, CONFIG, "poison")
        assert exc.value.crashes == 2
        assert sup.is_quarantined("poison")
        # Re-submission is refused immediately: no worker is risked.
        crashes_before = sup.crashes
        with pytest.raises(RequestQuarantined):
            sup.solve(tiny_model, topo22, CONFIG, "poison")
        assert sup.crashes == crashes_before

    def test_crash_counts_accumulate_across_requests(self, tiny_model, topo22):
        # One crash per request, quarantine_after=2, single-attempt budget:
        # the first request fails as unavailable, the second tips the key
        # into quarantine — poison detection spans requests.
        sup = _supervisor(
            quarantine_after=2, restart_policy=RetryPolicy(max_attempts=1)
        )
        sup.sabotage_hook = lambda key, attempt: "crash"
        with pytest.raises(WorkerUnavailable):
            sup.solve(tiny_model, topo22, CONFIG, "poison")
        with pytest.raises(RequestQuarantined):
            sup.solve(tiny_model, topo22, CONFIG, "poison")

    def test_other_keys_unaffected(self, tiny_model, topo22):
        sup = _supervisor(quarantine_after=1)
        sup.sabotage_hook = (
            lambda key, attempt: "crash" if key == "poison" else None
        )
        with pytest.raises(RequestQuarantined):
            sup.solve(tiny_model, topo22, CONFIG, "poison")
        with cache_overridden():
            outcome = sup.solve(tiny_model, topo22, CONFIG, "healthy")
        assert outcome.report is not None


class TestWorkerLeases:
    def test_factory_failure_returns_the_lease(self):
        calls = {"n": 0}

        def flaky_factory():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError("spawn failed under fd pressure")
            return InlineWorker()

        sup = Supervisor(
            flaky_factory, SupervisorConfig(), sleeper=lambda _s: None, pool_size=1
        )
        for _ in range(2):
            with pytest.raises(OSError):
                sup._checkout_worker()
            # The failed checkout handed its lease back; a leak here would
            # leave pool_size=1 permanently consumed and the next checkout
            # blocking in wait() forever.
            assert sup._leased == 0
        worker = sup._checkout_worker()
        assert isinstance(worker, InlineWorker)
        assert sup._leased == 1
        sup._checkin_worker(worker, discard=False)
        assert sup._leased == 0


class TestSolveErrors:
    def test_solver_exceptions_are_not_retried(self, tiny_model, topo22):
        class FailingWorker:
            alive = True
            calls = 0

            def solve(self, model, topology, config, sabotage=None):
                FailingWorker.calls += 1
                raise WorkerSolveError("deterministic solver bug")

            def close(self):
                pass

        sup = Supervisor(FailingWorker, sleeper=lambda _s: None)
        with pytest.raises(WorkerSolveError):
            sup.solve(tiny_model, topo22, CONFIG, "key-1")
        # Planning is deterministic: a retry would fail identically.
        assert FailingWorker.calls == 1


class TestProcessWorker:
    """Real child-process tests, bounded to a handful of spawns."""

    def test_crash_detection_and_restart(self, tiny_model, topo22, tmp_path):
        sup = Supervisor(
            lambda: ProcessWorker(tmp_path / "serve.sqlite"),
            sleeper=lambda _s: None,
        )
        sup.sabotage_hook = lambda key, attempt: "crash" if attempt == 1 else None
        try:
            with cache_overridden():
                outcome = sup.solve(tiny_model, topo22, CONFIG, "key-1")
        finally:
            sup.close()
        assert outcome.attempts == 2
        assert outcome.restarts == 1
        assert sup.crashes == 1
        assert fingerprint(outcome.report.plan)

    def test_kill_seam_then_fresh_solve(self, tiny_model, topo22):
        worker = ProcessWorker()
        try:
            with cache_overridden():
                first = worker.solve(tiny_model, topo22, CONFIG)
            worker.kill()
            assert not worker.alive
            with cache_overridden():
                second = worker.solve(tiny_model, topo22, CONFIG)  # restarts
        finally:
            worker.close()
        assert fingerprint(first.plan) == fingerprint(second.plan)
