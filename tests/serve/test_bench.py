"""compare_benchmarks gate logic on synthetic documents (no bench run)."""

from repro.serve.bench import BENCH_SCHEMA, compare_benchmarks


def _document(**overrides) -> dict:
    document = {
        "schema": BENCH_SCHEMA,
        "throughput": [
            {"name": "cold", "plans": 4, "wall_seconds": 0.04,
             "plans_per_second": 100.0},
            {"name": "warm", "plans": 4, "wall_seconds": 0.004,
             "plans_per_second": 1000.0},
        ],
        "plans": [
            {"name": "gpt-a/topo_2_2", "fingerprint": "aaaa1111", "consistent": True},
            {"name": "gpt-b/topo_2_2", "fingerprint": "bbbb2222", "consistent": True},
        ],
        "recovery": [
            {"name": "worker-crash-midsolve", "ok": True},
            {"name": "overload-burst", "ok": True},
        ],
        "scaling": {
            "cpus": 8,
            "rows": [
                {"workers": 1, "plans": 20, "wall_seconds": 4.0,
                 "plans_per_second": 5.0},
                {"workers": 2, "plans": 20, "wall_seconds": 2.2,
                 "plans_per_second": 9.1},
                {"workers": 4, "plans": 20, "wall_seconds": 1.6,
                 "plans_per_second": 12.5},
            ],
            "top_workers": 4,
            "speedup_top_vs_1": 2.5,
            "consistent": True,
        },
    }
    document.update(overrides)
    return document


def _scaled(**changes) -> dict:
    document = _document()
    document["scaling"] = dict(document["scaling"], **changes)
    return document


def _mutated(section, index, **changes) -> dict:
    document = _document()
    document[section] = [dict(row) for row in document[section]]
    document[section][index].update(changes)
    return document


class TestGatePasses:
    def test_identical_documents(self):
        assert compare_benchmarks(_document(), _document()) == []

    def test_faster_is_fine(self):
        current = _mutated("throughput", 0, plans_per_second=500.0)
        assert compare_benchmarks(current, _document()) == []

    def test_small_slowdown_within_tolerance(self):
        current = _mutated("throughput", 0, plans_per_second=85.0)  # > 100/1.25
        assert compare_benchmarks(current, _document()) == []


class TestGateFails:
    def test_fingerprint_divergence(self):
        current = _mutated("plans", 0, fingerprint="cccc3333")
        failures = compare_benchmarks(current, _document())
        assert any("fingerprint diverged" in f for f in failures)

    def test_inconsistent_regimes(self):
        current = _mutated("plans", 1, consistent=False)
        failures = compare_benchmarks(current, _document())
        assert any("divergent fingerprints" in f for f in failures)

    def test_recovery_regression(self):
        current = _mutated("recovery", 0, ok=False)
        failures = compare_benchmarks(current, _document())
        assert failures == [
            "recovery:worker-crash-midsolve: chaos scenario no longer passes"
        ]

    def test_throughput_regression_beyond_ratio(self):
        current = _mutated("throughput", 0, plans_per_second=79.0)  # < 100/1.25
        failures = compare_benchmarks(current, _document())
        assert any("plans/sec regressed" in f for f in failures)

    def test_scaling_fingerprint_divergence_fails_on_any_host(self):
        # Identity across worker counts is gated even on 1-cpu hosts.
        current = _scaled(consistent=False, cpus=1, top_workers=4)
        failures = compare_benchmarks(current, _document())
        assert any(
            "fingerprints diverged across worker counts" in f for f in failures
        )

    def test_scaling_speedup_below_floor_fails_on_big_hosts(self):
        current = _scaled(speedup_top_vs_1=1.4)
        failures = compare_benchmarks(current, _document())
        assert any("below the" in f and "floor" in f for f in failures)
        missing = _scaled(speedup_top_vs_1=None)
        assert any(
            "below the" in f for f in compare_benchmarks(missing, _document())
        )

    def test_scaling_speedup_not_gated_on_small_hosts(self):
        # A 1-cpu runner cannot scale; the floor only applies when the
        # host has >= 4 cpus AND the ladder actually reached 4 workers.
        small_host = _scaled(speedup_top_vs_1=1.0, cpus=1)
        assert compare_benchmarks(small_host, _document()) == []
        short_ladder = _scaled(speedup_top_vs_1=1.0, top_workers=2)
        assert compare_benchmarks(short_ladder, _document()) == []

    def test_scaling_speedup_at_floor_passes(self):
        assert compare_benchmarks(
            _scaled(speedup_top_vs_1=1.8), _document()
        ) == []

    def test_scaling_section_missing_from_current_fails(self):
        current = _document()
        del current["scaling"]
        failures = compare_benchmarks(current, _document())
        assert any("scaling: section missing" in f for f in failures)
        # ... but a pre-scaling baseline doesn't demand the section.
        baseline = _document()
        del baseline["scaling"]
        assert compare_benchmarks(current, baseline) == []

    def test_missing_rows_fail_both_ways(self):
        dropped = _document()
        dropped["plans"] = dropped["plans"][:1]
        dropped["recovery"] = dropped["recovery"][:1]
        dropped["throughput"] = dropped["throughput"][:1]
        missing_current = compare_benchmarks(dropped, _document())
        assert any("missing from current run" in f for f in missing_current)
        missing_baseline = compare_benchmarks(_document(), dropped)
        assert any("missing from baseline" in f for f in missing_baseline)
