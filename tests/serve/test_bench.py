"""compare_benchmarks gate logic on synthetic documents (no bench run)."""

from repro.serve.bench import BENCH_SCHEMA, compare_benchmarks


def _document(**overrides) -> dict:
    document = {
        "schema": BENCH_SCHEMA,
        "throughput": [
            {"name": "cold", "plans": 4, "wall_seconds": 0.04,
             "plans_per_second": 100.0},
            {"name": "warm", "plans": 4, "wall_seconds": 0.004,
             "plans_per_second": 1000.0},
        ],
        "plans": [
            {"name": "gpt-a/topo_2_2", "fingerprint": "aaaa1111", "consistent": True},
            {"name": "gpt-b/topo_2_2", "fingerprint": "bbbb2222", "consistent": True},
        ],
        "recovery": [
            {"name": "worker-crash-midsolve", "ok": True},
            {"name": "overload-burst", "ok": True},
        ],
    }
    document.update(overrides)
    return document


def _mutated(section, index, **changes) -> dict:
    document = _document()
    document[section] = [dict(row) for row in document[section]]
    document[section][index].update(changes)
    return document


class TestGatePasses:
    def test_identical_documents(self):
        assert compare_benchmarks(_document(), _document()) == []

    def test_faster_is_fine(self):
        current = _mutated("throughput", 0, plans_per_second=500.0)
        assert compare_benchmarks(current, _document()) == []

    def test_small_slowdown_within_tolerance(self):
        current = _mutated("throughput", 0, plans_per_second=85.0)  # > 100/1.25
        assert compare_benchmarks(current, _document()) == []


class TestGateFails:
    def test_fingerprint_divergence(self):
        current = _mutated("plans", 0, fingerprint="cccc3333")
        failures = compare_benchmarks(current, _document())
        assert any("fingerprint diverged" in f for f in failures)

    def test_inconsistent_regimes(self):
        current = _mutated("plans", 1, consistent=False)
        failures = compare_benchmarks(current, _document())
        assert any("divergent fingerprints" in f for f in failures)

    def test_recovery_regression(self):
        current = _mutated("recovery", 0, ok=False)
        failures = compare_benchmarks(current, _document())
        assert failures == [
            "recovery:worker-crash-midsolve: chaos scenario no longer passes"
        ]

    def test_throughput_regression_beyond_ratio(self):
        current = _mutated("throughput", 0, plans_per_second=79.0)  # < 100/1.25
        failures = compare_benchmarks(current, _document())
        assert any("plans/sec regressed" in f for f in failures)

    def test_missing_rows_fail_both_ways(self):
        dropped = _document()
        dropped["plans"] = dropped["plans"][:1]
        dropped["recovery"] = dropped["recovery"][:1]
        dropped["throughput"] = dropped["throughput"][:1]
        missing_current = compare_benchmarks(dropped, _document())
        assert any("missing from current run" in f for f in missing_current)
        missing_baseline = compare_benchmarks(_document(), dropped)
        assert any("missing from baseline" in f for f in missing_baseline)
