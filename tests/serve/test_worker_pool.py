"""Multi-worker serving: pool leases, fingerprint identity, coalescing.

The dispatch loop may run N ways in parallel, but every externally
observable contract of the single-worker daemon — plan fingerprints,
solve-key coalescing, the crash ladder, quarantine — must be unchanged.
"""

import dataclasses
import itertools
import threading

import pytest

from repro.core.api import MobiusConfig
from repro.perf.cache import cache_overridden
from repro.serve.daemon import PlanService, ServiceConfig
from repro.serve.requests import PlanRequest
from repro.serve.supervisor import (
    InlineWorker,
    RequestQuarantined,
    Supervisor,
    WorkerUnavailable,
)

CONFIG = MobiusConfig(partition_time_limit=1.0)


def _request(tiny_model, topo22, **kwargs) -> PlanRequest:
    return PlanRequest(model=tiny_model, topology=topo22, config=CONFIG, **kwargs)


def _service(**cfg) -> PlanService:
    return PlanService(ServiceConfig(**cfg), sleeper=lambda _s: None)


def _distinct_requests(tiny_model, topo22, topo4) -> list[PlanRequest]:
    """Independent (non-coalescable) requests: distinct configs/topologies."""
    requests = [
        PlanRequest(
            model=tiny_model,
            topology=topo22,
            config=dataclasses.replace(CONFIG, n_microbatches=n),
            tenant=f"t{n}",
        )
        for n in (2, 4, 8)
    ]
    requests.append(
        PlanRequest(model=tiny_model, topology=topo4, config=CONFIG, tenant="t0")
    )
    return requests


class TestConfig:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ServiceConfig(workers=0)

    def test_zero_pool_size_rejected(self):
        with pytest.raises(ValueError, match="pool_size"):
            Supervisor(InlineWorker, sleeper=lambda _s: None, pool_size=0)

    def test_stats_reports_worker_count(self, tiny_model, topo22):
        with cache_overridden(), _service(workers=3) as service:
            service.plan(_request(tiny_model, topo22))
            assert service.stats()["workers"] == 3


class TestFingerprintIdentity:
    def _fingerprints(self, requests, workers):
        with cache_overridden(), _service(
            workers=workers, autostart=False
        ) as service:
            tickets = [service.submit(r) for r in requests]
            service.start()
            responses = [service.result(t, timeout=120.0) for t in tickets]
        assert all(r.ok for r in responses)
        assert service.completed == len(requests)
        return [r.plan_fingerprint for r in responses]

    def test_four_workers_match_one_worker_bit_for_bit(
        self, tiny_model, topo22, topo4
    ):
        requests = _distinct_requests(tiny_model, topo22, topo4)
        solo = self._fingerprints(requests, workers=1)
        pooled = self._fingerprints(requests, workers=4)
        assert pooled == solo
        assert len(set(solo)) == len(requests)  # genuinely distinct plans


class TestCoalescingAcrossPool:
    def test_identical_requests_still_share_one_solve(self, tiny_model, topo22):
        with cache_overridden(), _service(
            workers=4, autostart=False
        ) as service:
            tickets = [
                service.submit(_request(tiny_model, topo22, tenant=f"t{i}"))
                for i in range(3)
            ]
            assert [t.coalesced for t in tickets] == [False, True, True]
            service.start()
            responses = [service.result(t, timeout=120.0) for t in tickets]
        # Four dispatch threads, one in-flight solve: the key coalesces.
        assert service.completed == 1
        assert service.coalesced_joins == 2
        assert {r.plan_fingerprint for r in responses} == {
            responses[0].plan_fingerprint
        }


class TestSupervisorPool:
    def test_pool_of_two_leases_two_workers_concurrently(
        self, tiny_model, topo22
    ):
        release = threading.Event()
        started = [threading.Event(), threading.Event()]
        slots = itertools.count()

        class GateWorker:
            alive = True

            def solve(self, model, topology, config, sabotage=None):
                started[next(slots)].set()
                assert release.wait(timeout=30.0)
                return "plan"

            def close(self):
                pass

        sup = Supervisor(GateWorker, sleeper=lambda _s: None, pool_size=2)
        threads = [
            threading.Thread(
                target=sup.solve, args=(tiny_model, topo22, CONFIG, f"k{i}")
            )
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        try:
            # Both solves hold a lease at the same time: a pool, not a lock.
            assert started[0].wait(timeout=30.0)
            assert started[1].wait(timeout=30.0)
        finally:
            release.set()
            for thread in threads:
                thread.join(timeout=30.0)
            sup.close()

    def test_idle_workers_are_reused_across_solves(self, tiny_model, topo22):
        built = []

        def factory():
            built.append(object())
            return InlineWorker()

        sup = Supervisor(factory, sleeper=lambda _s: None, pool_size=2)
        other = dataclasses.replace(CONFIG, n_microbatches=8)
        with cache_overridden():
            sup.solve(tiny_model, topo22, CONFIG, "k1")
            sup.solve(tiny_model, topo22, other, "k2")
        sup.close()
        # Sequential solves share one pooled worker; pool_size is a cap,
        # not a preallocation.
        assert len(built) == 1

    def test_crashed_worker_is_discarded_not_reused(self, tiny_model, topo22):
        built = []

        def factory():
            built.append(object())
            return InlineWorker()

        sup = Supervisor(factory, sleeper=lambda _s: None, pool_size=2)
        sup.sabotage_hook = (
            lambda key, attempt: "crash" if attempt == 1 else None
        )
        with cache_overridden():
            outcome = sup.solve(tiny_model, topo22, CONFIG, "k1")
        sup.close()
        assert outcome.attempts == 2
        assert sup.crashes == 1
        assert len(built) == 2  # the crashed worker was replaced

    def test_quarantine_ladder_survives_pooling(self, tiny_model, topo22):
        from repro.serve.supervisor import SupervisorConfig

        sup = Supervisor(
            InlineWorker,
            SupervisorConfig(quarantine_after=2),
            sleeper=lambda _s: None,
            pool_size=4,
        )
        sup.sabotage_hook = lambda key, attempt: "crash"
        with pytest.raises((RequestQuarantined, WorkerUnavailable)):
            sup.solve(tiny_model, topo22, CONFIG, "poison")
        while not sup.is_quarantined("poison"):
            with pytest.raises((RequestQuarantined, WorkerUnavailable)):
                sup.solve(tiny_model, topo22, CONFIG, "poison")
        with pytest.raises(RequestQuarantined):
            sup.solve(tiny_model, topo22, CONFIG, "poison")
        sup.close()

    def test_closed_pool_refuses_new_solves(self, tiny_model, topo22):
        sup = Supervisor(InlineWorker, sleeper=lambda _s: None, pool_size=2)
        sup.close()
        with pytest.raises(WorkerUnavailable):
            sup.solve(tiny_model, topo22, CONFIG, "k1")
