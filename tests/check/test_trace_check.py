"""Tests for the trace/task-graph sanitizer (repro.check.trace_check)."""

from __future__ import annotations

import math

import pytest

from repro.check.trace_check import check_task_graph, sanitize_run, sanitize_trace
from repro.hardware.topology import topo_2_2
from repro.sim.tasks import ComputeTask, TaskGraphRunner, TransferTask
from repro.sim.trace import ComputeSpan, Trace, TransferSpan


def _codes(report):
    return {f.code for f in report}


@pytest.fixture
def topo():
    return topo_2_2()


class TestSanitizeTrace:
    def test_empty_trace_is_clean(self, topo):
        assert sanitize_trace(Trace(4), topo).ok

    def test_clean_trace(self, topo):
        trace = Trace(4)
        trace.add_compute(0, 0.0, 1.0, "F0,0")
        trace.add_compute(0, 1.0, 2.0, "F0,1")  # back-to-back is legal
        trace.add_transfer(1, 0.0, 1.0, 1e9, "stage-upload", "U1")
        assert sanitize_trace(trace, topo).ok

    def test_overlapping_compute_flagged(self, topo):
        trace = Trace(4)
        trace.add_compute(2, 0.0, 1.0, "F0,0")
        trace.add_compute(2, 0.5, 1.5, "F0,1")
        report = sanitize_trace(trace, topo)
        assert _codes(report) == {"TRACE-COMPUTE-OVERLAP"}
        finding = report.findings[0]
        assert finding.subject == "gpu 2"
        assert finding.slack == pytest.approx(-0.5)

    def test_overlap_on_different_gpus_is_fine(self, topo):
        trace = Trace(4)
        trace.add_compute(0, 0.0, 1.0, "F0,0")
        trace.add_compute(1, 0.5, 1.5, "F1,0")
        assert sanitize_trace(trace, topo).ok

    def test_nan_timestamp_flagged(self, topo):
        # The Trace guards reject NaN at insertion; simulate a corrupted
        # trace (e.g. deserialized from a damaged file) by appending the
        # span directly.
        trace = Trace(4)
        trace.compute.append(ComputeSpan(0, float("nan"), 1.0, "F0,0"))
        assert _codes(sanitize_trace(trace, topo)) == {"TRACE-FINITE"}

    def test_backwards_span_flagged(self, topo):
        trace = Trace(4)
        trace.compute.append(ComputeSpan(0, 2.0, 1.0, "F0,0"))
        assert "TRACE-NEG-DURATION" in _codes(sanitize_trace(trace, topo))

    def test_gpu_out_of_range_flagged(self, topo):
        trace = Trace(4)
        trace.compute.append(ComputeSpan(7, 0.0, 1.0, "F0,0"))
        assert "TRACE-GPU-RANGE" in _codes(sanitize_trace(trace, topo))

    def test_negative_bytes_flagged(self, topo):
        trace = Trace(4)
        trace.transfers.append(TransferSpan(0, 0.0, 1.0, -5.0, "x", "x"))
        assert "TRACE-NEG-BYTES" in _codes(sanitize_trace(trace, topo))

    def test_impossible_bandwidth_flagged(self, topo):
        trace = Trace(4)
        # 1 TB in a microsecond: far beyond any PCIe link.
        trace.add_transfer(0, 0.0, 1e-6, 1e12, "stage-upload", "U0")
        report = sanitize_trace(trace, topo)
        assert _codes(report) == {"TRACE-BW-SPEC"}

    def test_bandwidth_at_spec_passes(self, topo):
        trace = Trace(4)
        nbytes = topo.max_link_bandwidth * 2.0  # exactly the fastest link
        trace.add_transfer(0, 0.0, 2.0, nbytes, "stage-upload", "U0")
        assert sanitize_trace(trace, topo).ok

    def test_without_topology_bandwidth_is_not_checked(self):
        trace = Trace(4)
        trace.add_transfer(0, 0.0, 1e-6, 1e12, "stage-upload", "U0")
        assert sanitize_trace(trace).ok


class TestCheckTaskGraph:
    def test_simulated_graph_is_clean(self, topo):
        upload = TransferTask(path=topo.path_from_dram(0), nbytes=1e9, gpu=0)
        work = ComputeTask(gpu=0, seconds=0.5).after(upload)
        runner = TaskGraphRunner(topo)
        trace = runner.execute([upload, work])
        report = sanitize_run([upload, work], trace, topo)
        assert report.ok, report.render()

    def test_causality_violation_flagged(self, topo):
        dep = ComputeTask(label="first", gpu=0, seconds=1.0)
        child = ComputeTask(label="second", gpu=1, seconds=1.0).after(dep)
        runner = TaskGraphRunner(topo)
        runner.execute([dep, child])
        child.start_time = 0.25  # corrupt: starts before dep ends
        child.end_time = 1.25
        report = check_task_graph([dep, child], topo)
        assert "TASK-CAUSALITY" in _codes(report)
        finding = next(f for f in report if f.code == "TASK-CAUSALITY")
        assert finding.subject == "second"
        assert finding.slack == pytest.approx(-0.75)

    def test_duration_mismatch_flagged(self, topo):
        task = ComputeTask(label="k", gpu=0, seconds=1.0)
        runner = TaskGraphRunner(topo)
        runner.execute([task])
        task.end_time = task.start_time + 0.5  # corrupt the realised time
        report = check_task_graph([task], topo)
        assert "TASK-DURATION" in _codes(report)

    def test_incomplete_task_flagged(self, topo):
        task = ComputeTask(label="never-ran", gpu=0, seconds=1.0)
        report = check_task_graph([task], topo)
        assert _codes(report) == {"TASK-INCOMPLETE"}

    def test_path_bandwidth_violation_flagged(self, topo):
        transfer = TransferTask(
            label="U0", path=topo.path_from_dram(0), nbytes=1e9, gpu=0
        )
        runner = TaskGraphRunner(topo)
        runner.execute([transfer])
        assert transfer.start_time is not None
        transfer.end_time = transfer.start_time + 1e-6  # impossibly fast
        report = check_task_graph([transfer], topo)
        assert "TASK-BW-PATH" in _codes(report)
        # The link-conservation law is violated by the same corruption.
        assert "TASK-LINK-CAP" in _codes(report)

    def test_shared_link_conservation_holds_in_sim(self, topo):
        # Two concurrent uploads to GPUs 0 and 1 share the root-complex
        # link; the fluid model must keep their sum within capacity.
        transfers = [
            TransferTask(label=f"U{g}", path=topo.path_from_dram(g), nbytes=2e9, gpu=g)
            for g in (0, 1)
        ]
        runner = TaskGraphRunner(topo)
        trace = runner.execute(transfers)
        report = sanitize_run(transfers, trace, topo)
        assert report.ok, report.render()
        # Sharing really happened: neither transfer got the full link.
        for t in transfers:
            implied = t.nbytes / (t.end_time - t.start_time)
            assert implied < topo.path_bandwidth(t.path) * 0.75


class TestTraceGuards:
    """The Trace.add_* ValueError guards (satellite #2)."""

    def test_rejects_end_before_start(self):
        trace = Trace(2)
        with pytest.raises(ValueError, match="ends before it starts"):
            trace.add_compute(0, 1.0, 0.5, "F0,0")

    def test_rejects_nan_start(self):
        trace = Trace(2)
        with pytest.raises(ValueError, match="finite"):
            trace.add_compute(0, float("nan"), 1.0, "F0,0")

    def test_rejects_inf_end(self):
        trace = Trace(2)
        with pytest.raises(ValueError, match="finite"):
            trace.add_transfer(0, 0.0, math.inf, 10.0, "k", "l")

    def test_rejects_nan_bytes(self):
        trace = Trace(2)
        with pytest.raises(ValueError, match="byte count"):
            trace.add_transfer(0, 0.0, 1.0, float("nan"), "k", "l")

    def test_rejects_negative_bytes(self):
        trace = Trace(2)
        with pytest.raises(ValueError, match="byte count"):
            trace.add_transfer(0, 0.0, 1.0, -1.0, "k", "l")

    def test_zero_duration_span_is_legal(self):
        trace = Trace(2)
        trace.add_compute(0, 1.0, 1.0, "F0,0")
        assert trace.compute[0].start == trace.compute[0].end
