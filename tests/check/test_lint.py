"""Tests for the MOB0xx AST lint rules (repro.check.lint)."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.check.lint import DEFAULT_CONFIG, LintConfig, lint_source, lint_tree


def _codes(report):
    return [f.code for f in report]


def _lint(source: str, rel_path: str, config: LintConfig = DEFAULT_CONFIG):
    return lint_source(textwrap.dedent(source), rel_path, config)


FINGERPRINT_MODULE = DEFAULT_CONFIG.fingerprint_modules[0]
# A hot-path (MOB002) module that is not also strict-clock scoped.
HOT_MODULE = "src/repro/core/synthetic.py"
LABEL_MODULE = DEFAULT_CONFIG.label_modules[0]


class TestMob001FrozenDataclasses:
    def test_frozen_dataclass_passes(self):
        report = _lint(
            """
            import dataclasses

            @dataclasses.dataclass(frozen=True)
            class Plan:
                x: int = 0
            """,
            FINGERPRINT_MODULE,
        )
        assert not [f for f in report if f.code == "MOB001"]

    def test_mutable_dataclass_flagged(self):
        report = _lint(
            """
            import dataclasses

            @dataclasses.dataclass
            class Plan:
                x: int = 0
            """,
            FINGERPRINT_MODULE,
        )
        assert _codes(report) == ["MOB001"]
        assert f"{FINGERPRINT_MODULE}:" in report.findings[0].subject

    def test_bare_decorator_name_flagged(self):
        report = _lint(
            """
            from dataclasses import dataclass

            @dataclass(order=True)
            class Plan:
                x: int = 0
            """,
            FINGERPRINT_MODULE,
        )
        assert _codes(report) == ["MOB001"]

    def test_allowlisted_mutable_passes(self):
        report = _lint(
            """
            import dataclasses

            @dataclasses.dataclass
            class MobiusPlanReport:
                x: int = 0
            """,
            "src/repro/core/api.py",
        )
        assert not [f for f in report if f.code == "MOB001"]

    def test_rule_scoped_to_fingerprint_modules(self):
        report = _lint(
            """
            import dataclasses

            @dataclasses.dataclass
            class Whatever:
                x: int = 0
            """,
            "src/repro/experiments/runner.py",
        )
        assert not report.findings

    def test_real_fingerprint_modules_are_clean(self):
        root = Path(__file__).resolve().parents[2]
        report = lint_tree(root)
        assert report.ok, report.render()


class TestMob002HotPathDeterminism:
    def test_wall_clock_call_flagged(self):
        report = _lint(
            """
            import time

            def now():
                return time.time()
            """,
            HOT_MODULE,
        )
        assert _codes(report) == ["MOB002"]

    def test_perf_counter_allowed(self):
        report = _lint(
            """
            import time

            def elapsed(t0):
                return time.perf_counter() - t0
            """,
            HOT_MODULE,
        )
        assert not report.findings

    def test_from_time_import_time_flagged(self):
        report = _lint("from time import time\n", HOT_MODULE)
        assert _codes(report) == ["MOB002"]

    def test_random_import_flagged(self):
        assert _codes(_lint("import random\n", HOT_MODULE)) == ["MOB002"]
        assert _codes(_lint("from random import choice\n", HOT_MODULE)) == ["MOB002"]

    def test_legacy_numpy_random_flagged(self):
        report = _lint(
            """
            import numpy as np

            def jitter():
                np.random.seed(0)
                return np.random.rand(3)
            """,
            HOT_MODULE,
        )
        assert _codes(report) == ["MOB002", "MOB002"]

    def test_default_rng_allowed(self):
        report = _lint(
            """
            import numpy as np

            def jitter():
                return np.random.default_rng(0).random(3)
            """,
            HOT_MODULE,
        )
        assert not report.findings

    def test_datetime_now_flagged(self):
        report = _lint(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
            HOT_MODULE,
        )
        assert _codes(report) == ["MOB002"]

    def test_rule_scoped_to_hot_paths(self):
        report = _lint("import time\nt = time.time()\n", "src/repro/experiments/x.py")
        assert not report.findings


class TestMob002StrictClock:
    """The strict variant over ``solver/`` and ``sim/``: even monotonic
    clocks are banned outside allowlisted sites, so solver results stay
    budget-deterministic and simulator results virtual-clock-only."""

    SOLVER_MODULE = "src/repro/solver/some_module.py"
    SIM_MODULE = "src/repro/sim/some_module.py"

    def test_perf_counter_flagged_in_solver(self):
        report = _lint(
            """
            import time

            def elapsed(t0):
                return time.perf_counter() - t0
            """,
            self.SOLVER_MODULE,
        )
        assert "MOB002" in _codes(report)

    def test_monotonic_flagged_in_solver(self):
        report = _lint(
            """
            import time

            def tick():
                return time.monotonic()
            """,
            self.SOLVER_MODULE,
        )
        assert "MOB002" in _codes(report)

    def test_from_time_import_flagged(self):
        report = _lint(
            "from time import perf_counter\n", self.SOLVER_MODULE
        )
        assert "MOB002" in _codes(report)

    def test_allowlisted_site_passes(self):
        # The one sanctioned clock site: MIPSolution.solve_seconds reporting.
        report = _lint(
            """
            import time

            class BranchAndBoundSolver:
                def solve(self, program):
                    started = time.perf_counter()
                    return time.perf_counter() - started
            """,
            "src/repro/solver/branch_bound.py",
        )
        assert not report.findings

    def test_other_method_in_allowlisted_file_flagged(self):
        report = _lint(
            """
            import time

            class BranchAndBoundSolver:
                def other(self):
                    return time.perf_counter()
            """,
            "src/repro/solver/branch_bound.py",
        )
        assert "MOB002" in _codes(report)

    def test_perf_counter_flagged_in_sim(self):
        report = _lint(
            """
            import time

            def elapsed(t0):
                return time.perf_counter() - t0
            """,
            self.SIM_MODULE,
        )
        assert "MOB002" in _codes(report)

    def test_sim_bench_reporting_sites_allowlisted(self):
        # The simbench wall-time columns are reporting-only by contract;
        # its three row builders are the sanctioned sim/ clock sites.
        report = _lint(
            """
            import time

            def _run_corpus_rows():
                started = time.perf_counter()
                return time.perf_counter() - started

            def _run_chaos_rows():
                return time.perf_counter()

            def _run_large_rows():
                return time.perf_counter()
            """,
            "src/repro/sim/bench.py",
        )
        assert not report.findings

    def test_dispatch_and_streaming_modules_stay_clock_free(self):
        # The batched-dispatch / columnar-streaming hot paths (DESIGN.md
        # §12) must never read a clock: the large-bench fingerprints are
        # pinned across machines.  Lint the real modules, not fixtures.
        root = Path(__file__).resolve().parents[2]
        for rel in (
            "src/repro/sim/engine.py",
            "src/repro/sim/trace.py",
            "src/repro/sim/workloads.py",
            "src/repro/sim/resources.py",
        ):
            source = (root / rel).read_text()
            report = lint_source(source, rel)
            assert report.ok, f"{rel}:\n{report.render()}"

    def test_other_function_in_sim_bench_flagged(self):
        report = _lint(
            """
            import time

            def run_bench():
                return time.perf_counter()
            """,
            "src/repro/sim/bench.py",
        )
        assert "MOB002" in _codes(report)

    def test_strict_rule_scoped_to_strict_prefixes(self):
        # perf_counter stays legal in ordinary hot paths (core/).
        report = _lint(
            """
            import time

            def elapsed(t0):
                return time.perf_counter() - t0
            """,
            "src/repro/core/some_module.py",
        )
        assert not report.findings


class TestMob002ServeClockDiscipline:
    """The serve layer is strict-clock scoped: deadlines are node budgets,
    and the only sanctioned wall-clock site is the servebench phase
    bracketing (reporting-only by contract)."""

    SERVE_MODULE = "src/repro/serve/some_module.py"

    def test_serve_prefix_is_strict_scoped(self):
        assert "src/repro/serve/" in DEFAULT_CONFIG.strict_clock_prefixes
        assert "src/repro/serve/" in DEFAULT_CONFIG.hot_path_prefixes

    def test_perf_counter_flagged_in_serve(self):
        report = _lint(
            """
            import time

            def deadline_left(t0):
                return time.perf_counter() - t0
            """,
            self.SERVE_MODULE,
        )
        assert "MOB002" in _codes(report)

    def test_wall_clock_flagged_in_serve(self):
        report = _lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            self.SERVE_MODULE,
        )
        assert "MOB002" in _codes(report)

    def test_servebench_reporting_site_allowlisted(self):
        report = _lint(
            """
            import time

            def _run_throughput_rows(workdir):
                started = time.perf_counter()
                return time.perf_counter() - started
            """,
            "src/repro/serve/bench.py",
        )
        assert not report.findings

    def test_other_function_in_serve_bench_flagged(self):
        report = _lint(
            """
            import time

            def run_bench():
                return time.perf_counter()
            """,
            "src/repro/serve/bench.py",
        )
        assert "MOB002" in _codes(report)

    def test_serve_requests_is_fingerprint_scoped(self):
        # PlanRequest/PlanResponse/Deadline are content-addressed payloads:
        # mutable dataclasses there would break solve-key stability.
        assert "src/repro/serve/requests.py" in DEFAULT_CONFIG.fingerprint_modules
        report = _lint(
            """
            import dataclasses

            @dataclasses.dataclass
            class PlanRequest:
                tenant: str = "default"
            """,
            "src/repro/serve/requests.py",
        )
        assert _codes(report) == ["MOB001"]

    def test_real_serve_modules_are_clean(self):
        root = Path(__file__).resolve().parents[2]
        for rel in (
            "src/repro/serve/requests.py",
            "src/repro/serve/admission.py",
            "src/repro/serve/supervisor.py",
            "src/repro/serve/daemon.py",
            "src/repro/serve/store.py",
            "src/repro/serve/chaos.py",
            "src/repro/serve/bench.py",
        ):
            source = (root / rel).read_text()
            report = lint_source(source, rel)
            assert report.ok, f"{rel}:\n{report.render()}"


class TestMob003TaskLabels:
    def test_helper_constructor_passes(self):
        report = _lint(
            """
            from repro.core.labels import compute_label
            from repro.sim.tasks import ComputeTask

            task = ComputeTask(label=compute_label("F", 0, 1), gpu=0, seconds=1.0)
            """,
            LABEL_MODULE,
        )
        assert not report.findings

    def test_module_qualified_helper_passes(self):
        report = _lint(
            """
            import repro.core.labels as labels
            from repro.sim.tasks import ComputeTask

            task = ComputeTask(label=labels.compute_label("F", 0, 1), gpu=0, seconds=1.0)
            """,
            LABEL_MODULE,
        )
        assert not report.findings

    def test_contract_matching_literal_passes(self):
        report = _lint(
            """
            from repro.sim.tasks import ComputeTask

            task = ComputeTask(label="F0,1", gpu=0, seconds=1.0)
            """,
            LABEL_MODULE,
        )
        assert not report.findings

    def test_ad_hoc_literal_flagged(self):
        report = _lint(
            """
            from repro.sim.tasks import ComputeTask

            task = ComputeTask(label="fwd-stage-0-mb-1", gpu=0, seconds=1.0)
            """,
            LABEL_MODULE,
        )
        assert _codes(report) == ["MOB003"]

    def test_ad_hoc_fstring_flagged(self):
        report = _lint(
            """
            from repro.sim.tasks import TransferTask

            def emit(j, kind):
                return TransferTask(label=f"Ub{j}.pre.{kind}", nbytes=1.0)
            """,
            LABEL_MODULE,
        )
        # The anchored contract cannot verify the kind placeholder, so the
        # f-string skeleton fails and authors are pushed to the helpers.
        assert _codes(report) == ["MOB003"]

    def test_fstring_with_blessed_skeleton_passes(self):
        report = _lint(
            """
            from repro.sim.tasks import ComputeTask

            def emit(j, mb):
                return ComputeTask(label=f"F{j},{mb}", gpu=0, seconds=1.0)
            """,
            LABEL_MODULE,
        )
        assert not report.findings

    def test_dynamic_expression_is_warning(self):
        report = _lint(
            """
            from repro.sim.tasks import ComputeTask

            def emit(name):
                return ComputeTask(label=name.upper(), gpu=0, seconds=1.0)
            """,
            LABEL_MODULE,
        )
        assert _codes(report) == ["MOB003"]
        assert report.findings[0].severity == "warning"
        assert report.ok  # warnings do not fail the gate

    def test_rule_scoped_to_pipeline_module(self):
        report = _lint(
            """
            from repro.sim.tasks import ComputeTask

            task = ComputeTask(label="whatever", gpu=0, seconds=1.0)
            """,
            "src/repro/baselines/gpipe.py",
        )
        assert not report.findings


class TestInfrastructure:
    def test_syntax_error_reported_not_raised(self):
        report = _lint("def broken(:\n", HOT_MODULE)
        assert _codes(report) == ["MOB000"]

    def test_lint_tree_on_repo_is_clean(self):
        root = Path(__file__).resolve().parents[2]
        report = lint_tree(root)
        assert report.ok, report.render()
