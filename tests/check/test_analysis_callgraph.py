"""Call-graph resolution and reachability over fixture programs."""

import textwrap

from repro.check.analysis.callgraph import build_call_graph
from repro.check.analysis.program import Program


def _graph(**files: str):
    sources = {
        path.replace("__", "/") + ".py": textwrap.dedent(text)
        for path, text in files.items()
    }
    return build_call_graph(Program.from_sources(sources))


class TestNameCalls:
    def test_module_function_call(self):
        graph = _graph(
            src__repro__a="""
            def outer():
                inner()

            def inner():
                pass
            """
        )
        assert "repro.a.inner" in graph.callees("repro.a.outer")

    def test_imported_function_call(self):
        graph = _graph(
            src__repro__a="""
            from repro.b import helper

            def outer():
                helper()
            """,
            src__repro__b="""
            def helper():
                pass
            """,
        )
        assert "repro.b.helper" in graph.callees("repro.a.outer")

    def test_constructor_links_init_and_post_init(self):
        graph = _graph(
            src__repro__a="""
            class Plain:
                def __init__(self):
                    pass

            class Data:
                def __post_init__(self):
                    pass

            def build():
                Plain()
                Data()
            """
        )
        callees = graph.callees("repro.a.build")
        assert "repro.a.Plain.__init__" in callees
        assert "repro.a.Data.__post_init__" in callees


class TestAttributeCalls:
    def test_self_method_call(self):
        graph = _graph(
            src__repro__a="""
            class Engine:
                def run(self):
                    self._step()

                def _step(self):
                    pass
            """
        )
        assert "repro.a.Engine._step" in graph.callees("repro.a.Engine.run")

    def test_typed_instance_attribute_call(self):
        graph = _graph(
            src__repro__a="""
            class Engine:
                def __init__(self):
                    self.network = FlowNetwork()

                def run(self):
                    self.network.reallocate()

            class FlowNetwork:
                def reallocate(self):
                    pass
            """
        )
        assert "repro.a.FlowNetwork.reallocate" in graph.callees(
            "repro.a.Engine.run"
        )

    def test_module_alias_call(self):
        graph = _graph(
            src__repro__a="""
            import repro.b as b

            def outer():
                b.helper()
            """,
            src__repro__b="""
            def helper():
                pass
            """,
        )
        assert "repro.b.helper" in graph.callees("repro.a.outer")

    def test_constructor_typed_local_call(self):
        graph = _graph(
            src__repro__a="""
            from repro.b import Simulator

            def drive():
                sim = Simulator()
                sim.run()
            """,
            src__repro__b="""
            class Simulator:
                def run(self):
                    pass
            """,
        )
        assert "repro.b.Simulator.run" in graph.callees("repro.a.drive")

    def test_annotated_parameter_call(self):
        graph = _graph(
            src__repro__a="""
            from repro.b import Cell

            def run_cell(cell: Cell):
                cell.run()
            """,
            src__repro__b="""
            class Cell:
                def run(self):
                    pass
            """,
        )
        assert "repro.b.Cell.run" in graph.callees("repro.a.run_cell")

    def test_base_typed_call_fans_out_to_overrides(self):
        graph = _graph(
            src__repro__a="""
            class Runner:
                def execute(self):
                    self._submit()

                def _submit(self):
                    pass

            class FaultRunner(Runner):
                def _submit(self):
                    pass
            """
        )
        callees = graph.callees("repro.a.Runner.execute")
        assert "repro.a.Runner._submit" in callees
        assert "repro.a.FaultRunner._submit" in callees

    def test_fallback_stoplist_blocks_container_vocabulary(self):
        graph = _graph(
            src__repro__a="""
            class Trace:
                def append(self, item):
                    pass

            def hot(events):
                events.append(1)
            """
        )
        assert "repro.a.Trace.append" not in graph.callees("repro.a.hot")


class TestFunctionValuedArguments:
    def test_function_reference_argument_adds_edge(self):
        graph = _graph(
            src__repro__a="""
            import functools

            def outer(items):
                sorted(items, key=rank)
                functools.partial(finalize, 1)

            def rank(item):
                pass

            def finalize(code, item):
                pass
            """
        )
        callees = graph.callees("repro.a.outer")
        assert "repro.a.rank" in callees
        assert "repro.a.finalize" in callees

    def test_seam_registers_referenced_callback(self):
        graph = _graph(
            src__repro__a="""
            class Engine:
                def schedule_call(self, when, fn):
                    pass

            class User:
                def __init__(self):
                    self.engine = Engine()

                def go(self):
                    self.engine.schedule_call(1.0, on_fire)

            def on_fire():
                pass
            """
        )
        assert "repro.a.on_fire" in graph.seam_callbacks
        assert "repro.a.on_fire" in graph.callees("repro.a.User.go")

    def test_seam_lambda_registers_the_enclosing_function(self):
        graph = _graph(
            src__repro__a="""
            class Engine:
                def schedule(self, ev):
                    pass

            class User:
                def __init__(self):
                    self.engine = Engine()

                def go(self):
                    self.engine.schedule(lambda: self.finish())

                def finish(self):
                    pass
            """
        )
        assert "repro.a.User.go" in graph.seam_callbacks

    def test_nested_def_reference_resolves_to_encloser(self):
        graph = _graph(
            src__repro__a="""
            class Engine:
                def submit(self, fn):
                    pass

            class User:
                def __init__(self):
                    self.engine = Engine()

                def go(self):
                    def finish():
                        self.record()

                    self.engine.submit(finish)

                def record(self):
                    pass
            """
        )
        # `finish` folds into `go`; registering it at a seam marks `go`.
        assert "repro.a.User.go" in graph.seam_callbacks
        # And go's folded body reaches record().
        assert "repro.a.User.record" in graph.callees("repro.a.User.go")


class TestReachability:
    def test_bfs_closure_and_chain(self):
        graph = _graph(
            src__repro__a="""
            def entry():
                middle()

            def middle():
                leaf()

            def leaf():
                pass

            def unrelated():
                pass
            """
        )
        parents = graph.reachable(["repro.a.entry"])
        assert set(parents) == {"repro.a.entry", "repro.a.middle", "repro.a.leaf"}
        assert graph.chain(parents, "repro.a.leaf") == [
            "repro.a.entry",
            "repro.a.middle",
            "repro.a.leaf",
        ]
