"""Baseline suppressions, SARIF output, the lint driver, and repo self-checks."""

import json
from pathlib import Path

from repro.check.analysis.baseline import (
    Baseline,
    BaselineEntry,
    apply_baseline,
)
from repro.check.analysis.callgraph import build_call_graph
from repro.check.analysis.driver import run_lint
from repro.check.analysis.program import Program
from repro.check.analysis.sarif import to_sarif
from repro.check.findings import CheckReport

REPO_ROOT = Path(__file__).resolve().parents[2]


def _report_with(*entries: tuple[str, str, str]) -> CheckReport:
    report = CheckReport()
    for code, subject, symbol in entries:
        report.add("analysis", code, f"finding {code}", subject=subject, symbol=symbol)
    return report


class TestBaseline:
    def test_matching_is_by_code_path_symbol_not_line(self):
        baseline = Baseline(
            [BaselineEntry("MOB007", "src/repro/a.py", "repro.a.f", "ok")]
        )
        # Same (code, path, symbol), different line: still suppressed.
        result = apply_baseline(
            _report_with(("MOB007", "src/repro/a.py:999", "repro.a.f")), baseline
        )
        assert len(result.report) == 0
        assert len(result.suppressed) == 1
        assert not result.unused_entries

    def test_non_matching_findings_stay_live(self):
        baseline = Baseline(
            [BaselineEntry("MOB007", "src/repro/a.py", "repro.a.f", "ok")]
        )
        result = apply_baseline(
            _report_with(("MOB007", "src/repro/a.py:3", "repro.a.other")), baseline
        )
        assert len(result.report) == 1
        assert len(result.unused_entries) == 1

    def test_round_trip_through_disk(self, tmp_path):
        baseline = Baseline(
            [BaselineEntry("MOB007", "src/repro/a.py", "repro.a.f", "why")]
        )
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries

    def test_missing_file_loads_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_from_report_deduplicates_keys(self):
        report = _report_with(
            ("MOB007", "src/repro/a.py:3", "repro.a.f"),
            ("MOB007", "src/repro/a.py:9", "repro.a.f"),
        )
        baseline = Baseline.from_report(report)
        assert len(baseline) == 1


class TestSarif:
    def test_document_shape_and_result_fields(self):
        report = _report_with(("MOB004", "src/repro/a.py:12", "repro.a.f"))
        document = json.loads(to_sarif(report))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"MOB000", "MOB004", "MOB007"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "MOB004"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/a.py"
        assert location["region"]["startLine"] == 12
        assert result["properties"]["symbol"] == "repro.a.f"

    def test_empty_report_is_valid_sarif(self):
        document = json.loads(to_sarif(CheckReport()))
        assert document["runs"][0]["results"] == []


class TestRepoGate:
    """The shipped tree must be clean — these pin the acceptance criteria."""

    def test_run_lint_on_repo_has_no_live_findings(self):
        run = run_lint(REPO_ROOT)
        assert run.ok, run.report.render()
        assert not run.unused_entries, run.unused_entries

    def test_checked_in_baseline_has_zero_mob004_entries(self):
        baseline = Baseline.load(REPO_ROOT / "LINT_BASELINE.json")
        mob004 = [e for e in baseline.entries if e.code == "MOB004"]
        assert not mob004, "hot paths must be genuinely clean, not suppressed"

    def test_checked_in_baseline_entries_are_justified(self):
        baseline = Baseline.load(REPO_ROOT / "LINT_BASELINE.json")
        for entry in baseline.entries:
            assert entry.justification.strip(), entry

    def test_path_filter_restricts_reported_findings(self):
        run = run_lint(REPO_ROOT, ["src/repro/sim"], baseline_path="/nonexistent")
        for finding in run.report:
            assert finding.subject.startswith("src/repro/sim/")


class TestSelfCheck:
    """Lint-the-linter: the analyzer's own package must satisfy its rules."""

    def test_analyzer_package_is_clean_under_its_own_rules(self):
        from repro.check.analysis.rules import AnalysisConfig, analyze_program

        program = Program.from_tree(REPO_ROOT, subdir="src/repro/check")
        # Treat EVERY function in the package as a worker entry: any write
        # to module-level mutable state anywhere in repro/check is then a
        # MOB007 finding.  Read-only constant tables remain fine.
        config = AnalysisConfig(
            worker_entry_points=tuple(sorted(program.functions)),
            race_registries=(),
            sync_seams=frozenset(),
        )
        report = analyze_program(program, config)
        assert report.ok, report.render()

    def test_real_tree_call_graph_resolves_known_edges(self):
        """Resolution-regression canary: these edges must survive refactors."""
        program = Program.from_tree(REPO_ROOT)
        graph = build_call_graph(program)
        assert "repro.experiments.runner.run_cell" in graph.callees(
            "repro.experiments.runner.ExperimentCell.run"
        )
        assert "repro.experiments.runner._run_system_uncached" in graph.callees(
            "repro.experiments.runner.run_cell"
        )
        assert "repro.core.api.run_mobius" in graph.callees(
            "repro.experiments.runner._run_system_uncached"
        )
        assert "repro.core.api._put_partition_hint" in graph.callees(
            "repro.core.api._plan_mobius_uncached"
        )
        assert "repro.sim.tasks._next_task_uid" in graph.callees(
            "repro.sim.tasks.Task.__post_init__"
        )

    def test_real_tree_seam_callbacks_cross_the_event_loop(self):
        program = Program.from_tree(REPO_ROOT)
        graph = build_call_graph(program)
        # TaskGraphRunner registers closures at engine seams, so its methods
        # join the event-loop frontier.
        assert any(
            q.startswith("repro.sim.tasks.TaskGraphRunner")
            for q in graph.seam_callbacks
        ), sorted(graph.seam_callbacks)
