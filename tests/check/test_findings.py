"""CheckReport/Finding semantics: merge, ordering, severity, symbol field."""

import json

import pytest

from repro.check.findings import CheckReport, Finding


class TestFinding:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="severity"):
            Finding("lint", "MOB001", "msg", severity="fatal")

    def test_symbol_defaults_empty_and_round_trips(self):
        finding = Finding("analysis", "MOB004", "msg", subject="a.py:3")
        assert finding.symbol == ""
        tagged = Finding(
            "analysis", "MOB007", "msg", subject="a.py:3", symbol="repro.a.f"
        )
        assert tagged.to_dict()["symbol"] == "repro.a.f"

    def test_render_includes_severity_code_subject_and_slack(self):
        finding = Finding(
            "plan", "PLAN-EQ4", "budget exceeded", subject="stage 3", slack=-2.5
        )
        text = finding.render()
        assert "ERROR plan/PLAN-EQ4" in text
        assert "[stage 3]" in text
        assert "slack -2.5" in text


class TestCheckReport:
    def test_empty_report_is_ok(self):
        report = CheckReport()
        assert report.ok
        assert report.render() == "no findings"
        assert len(report) == 0

    def test_warnings_do_not_fail_the_gate(self):
        report = CheckReport()
        report.add("lint", "MOB003", "unverifiable label", severity="warning")
        assert report.ok
        assert len(report.warnings) == 1
        assert not report.errors

    def test_errors_fail_the_gate(self):
        report = CheckReport()
        report.add("lint", "MOB002", "wall clock")
        assert not report.ok
        assert len(report.errors) == 1

    def test_add_returns_the_finding_with_symbol(self):
        report = CheckReport()
        finding = report.add(
            "analysis", "MOB007", "shared write", symbol="repro.m.f"
        )
        assert finding in report.findings
        assert finding.symbol == "repro.m.f"

    def test_extend_merges_reports_preserving_order(self):
        first = CheckReport()
        first.add("a", "C1", "one")
        second = CheckReport()
        second.add("b", "C2", "two")
        second.add("b", "C3", "three")
        merged = first.extend(second)
        assert merged is first
        assert [f.code for f in first] == ["C1", "C2", "C3"]

    def test_extend_accepts_raw_findings(self):
        report = CheckReport()
        report.extend([Finding("x", "C9", "raw")])
        assert [f.code for f in report] == ["C9"]

    def test_prefixed_rewrites_subjects(self):
        report = CheckReport()
        report.add("a", "C1", "one", subject="gpu 0")
        report.add("a", "C2", "two")
        prefixed = report.prefixed("cell-7")
        assert [f.subject for f in prefixed] == ["cell-7: gpu 0", "cell-7"]
        # The original is untouched.
        assert [f.subject for f in report] == ["gpu 0", ""]

    def test_to_json_counts_by_severity(self):
        report = CheckReport()
        report.add("a", "C1", "one")
        report.add("a", "C2", "two", severity="warning")
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["n_errors"] == 1
        assert payload["n_warnings"] == 1
        assert len(payload["findings"]) == 2

    def test_render_summarizes_counts(self):
        report = CheckReport()
        report.add("a", "C1", "one")
        report.add("a", "C2", "two", severity="warning")
        assert report.render().splitlines()[-1] == "1 error(s), 1 warning(s)"
