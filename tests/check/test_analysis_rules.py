"""MOB004-MOB007 rule behavior over fixture programs."""

import textwrap

from repro.check.analysis.program import Program
from repro.check.analysis.rules import AnalysisConfig, analyze_program
from repro.check.lint import lint_source


def _analyze(config: AnalysisConfig | None = None, **files: str):
    sources = {
        path.replace("__", "/") + ".py": textwrap.dedent(text)
        for path, text in files.items()
    }
    program = Program.from_sources(sources)
    return analyze_program(program, config or AnalysisConfig())


def _codes(report):
    return [f.code for f in report]


class TestMob004:
    def test_clock_in_out_of_prefix_helper_reachable_from_sim_hot_path(self):
        """The acceptance fixture: reachability beats prefix matching.

        A wall-clock read lives in ``repro/analysis/`` — a path MOB002
        never looks at — but ``Simulator.run`` calls it, so MOB004 fires.
        """
        helper_source = textwrap.dedent(
            """
            import time

            def estimate_budget(n):
                return time.time() + n
            """
        )
        report = _analyze(
            src__repro__sim__engine="""
            from repro.analysis.helpers import estimate_budget

            class Simulator:
                def run(self):
                    estimate_budget(4)
            """,
            src__repro__analysis__helpers=helper_source,
        )
        mob004 = [f for f in report if f.code == "MOB004"]
        assert len(mob004) == 1
        finding = mob004[0]
        assert finding.subject.startswith("src/repro/analysis/helpers.py:")
        assert finding.symbol == "repro.analysis.helpers.estimate_budget"
        assert "Simulator.run" in finding.message

        # The old prefix-scoped MOB002 pass is blind to this file.
        prefix_report = lint_source(
            helper_source, "src/repro/analysis/helpers.py"
        )
        assert "MOB002" not in _codes(prefix_report)

    def test_unreachable_clock_is_not_flagged(self):
        report = _analyze(
            src__repro__sim__engine="""
            class Simulator:
                def run(self):
                    pass
            """,
            src__repro__analysis__helpers="""
            import time

            def cold_report():
                return time.time()
            """,
        )
        assert "MOB004" not in _codes(report)

    def test_clock_allowlist_site_is_honored(self):
        report = _analyze(
            src__repro__solver__branch_bound="""
            import time

            class BranchAndBoundSolver:
                def solve(self):
                    return time.perf_counter()
            """,
        )
        assert "MOB004" not in _codes(report)

    def test_rng_draw_on_hot_path_is_flagged(self):
        report = _analyze(
            src__repro__sim__engine="""
            import numpy as np

            class Simulator:
                def run(self):
                    return np.random.random()
            """,
        )
        assert _codes(report).count("MOB004") == 1

    def test_callback_registered_at_seam_is_reachable(self):
        report = _analyze(
            src__repro__sim__engine="""
            from repro.perf.metrics import stamp

            class Simulator:
                def run(self):
                    self.schedule_call(1.0, stamp)

                def schedule_call(self, when, fn):
                    pass
            """,
            src__repro__perf__metrics="""
            import time

            def stamp():
                return time.monotonic()
            """,
        )
        mob004 = [f for f in report if f.code == "MOB004"]
        assert len(mob004) == 1
        assert mob004[0].symbol == "repro.perf.metrics.stamp"


class TestMob005:
    def test_set_iteration_feeding_heappush_is_flagged(self):
        report = _analyze(
            src__repro__sim__engine="""
            import heapq

            class Simulator:
                def run(self):
                    heap = []
                    ready = set()
                    for item in ready:
                        heapq.heappush(heap, item)
            """,
        )
        mob005 = [f for f in report if f.code == "MOB005"]
        assert len(mob005) == 1
        assert "sorted" in mob005[0].message

    def test_sorted_wrapper_resolves_the_hazard(self):
        report = _analyze(
            src__repro__sim__engine="""
            import heapq

            class Simulator:
                def run(self):
                    heap = []
                    ready = set()
                    for item in sorted(ready):
                        heapq.heappush(heap, item)
            """,
        )
        assert "MOB005" not in _codes(report)

    def test_set_typed_instance_attribute_iteration_is_flagged(self):
        report = _analyze(
            src__repro__sim__engine="""
            class Simulator:
                def __init__(self):
                    self._frontier = set()

                def run(self):
                    out = []
                    for item in self._frontier:
                        out.append(item)
            """,
        )
        assert _codes(report).count("MOB005") == 1

    def test_membership_only_set_use_is_fine(self):
        report = _analyze(
            src__repro__sim__engine="""
            class Simulator:
                def run(self):
                    seen = set()
                    for item in seen:
                        if item:
                            continue
            """,
        )
        assert "MOB005" not in _codes(report)

    def test_cold_path_set_iteration_is_not_flagged(self):
        report = _analyze(
            src__repro__experiments__report="""
            def summarize():
                out = []
                names = set()
                for name in names:
                    out.append(name)
            """,
        )
        assert "MOB005" not in _codes(report)


class TestMob006:
    def test_attribute_write_after_fingerprint_is_flagged(self):
        report = _analyze(
            src__repro__core__plan="""
            from repro.perf.fingerprint import fingerprint

            def seal(plan):
                digest = fingerprint(plan)
                plan.digest = digest
                return plan
            """,
        )
        mob006 = [f for f in report if f.code == "MOB006"]
        assert len(mob006) == 1
        assert mob006[0].symbol == "repro.core.plan.seal"

    def test_write_before_fingerprint_is_fine(self):
        report = _analyze(
            src__repro__core__plan="""
            from repro.perf.fingerprint import fingerprint

            def seal(plan):
                plan.stage = 3
                return fingerprint(plan)
            """,
        )
        assert "MOB006" not in _codes(report)

    def test_write_to_unhashed_object_is_fine(self):
        report = _analyze(
            src__repro__core__plan="""
            from repro.perf.fingerprint import fingerprint

            def seal(plan, other):
                digest = fingerprint(plan)
                other.digest = digest
            """,
        )
        assert "MOB006" not in _codes(report)


class TestMob007:
    def test_global_write_from_worker_frontier_is_flagged(self):
        report = _analyze(
            src__repro__experiments__runner="""
            from repro.perf.cache import configure

            def _worker_init(config):
                configure(config)
            """,
            src__repro__perf__cache="""
            _cache = {}

            def configure(config):
                global _cache
                _cache = dict(config)
            """,
        )
        mob007 = [f for f in report if f.code == "MOB007"]
        assert len(mob007) == 1
        assert mob007[0].symbol == "repro.perf.cache.configure"
        assert "_worker_init" in mob007[0].message

    def test_sync_seam_write_is_sanctioned(self):
        config = AnalysisConfig(
            sync_seams=frozenset({"repro.perf.cache.configure"})
        )
        report = _analyze(
            config,
            src__repro__experiments__runner="""
            from repro.perf.cache import configure

            def _worker_init(config):
                configure(config)
            """,
            src__repro__perf__cache="""
            _cache = {}

            def configure(config):
                global _cache
                _cache = dict(config)
            """,
        )
        assert "MOB007" not in _codes(report)

    def test_next_on_shared_counter_is_a_write(self):
        report = _analyze(
            src__repro__sim__tasks="""
            import itertools

            _uids = itertools.count()

            class Task:
                def __post_init__(self):
                    self.uid = next(_uids)
            """,
            src__repro__experiments__runner="""
            from repro.sim.tasks import Task

            def _run_cell(cell):
                return Task()
            """,
        )
        mob007 = [f for f in report if f.code == "MOB007"]
        assert len(mob007) == 1
        assert "next() on shared counter" in mob007[0].message

    def test_registry_touching_function_joins_the_frontier(self):
        report = _analyze(
            AnalysisConfig(race_registries=("repro.core.api._PARTITION_HINTS",)),
            src__repro__core__api="""
            _PARTITION_HINTS = {}

            def plan(key, value):
                _PARTITION_HINTS[key] = value
            """,
        )
        mob007 = [f for f in report if f.code == "MOB007"]
        assert len(mob007) == 1
        assert mob007[0].symbol == "repro.core.api.plan"

    def test_reads_and_local_shadows_are_fine(self):
        report = _analyze(
            src__repro__perf__cache="""
            _cache = {}

            def lookup(key):
                return _cache.get(key)

            def local_shadow():
                _cache = {}
                _cache["x"] = 1
            """,
            src__repro__experiments__runner="""
            from repro.perf.cache import lookup, local_shadow

            def _worker_init(config):
                lookup(config)
                local_shadow()
            """,
        )
        assert "MOB007" not in _codes(report)
