"""Program model: symbol tables, imports, mutable globals, resolution."""

import textwrap

from repro.check.analysis.program import Program, module_name_for


def _program(**files: str) -> Program:
    sources = {
        path.replace("__", "/") + ".py": textwrap.dedent(text)
        for path, text in files.items()
    }
    return Program.from_sources(sources)


class TestModuleNames:
    def test_strips_src_and_init(self):
        assert module_name_for("src/repro/sim/engine.py") == "repro.sim.engine"
        assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"


class TestSymbolTables:
    def test_functions_classes_and_methods_are_indexed(self):
        program = _program(
            src__repro__a="""
            class Widget:
                def spin(self):
                    pass

            def helper():
                pass
            """
        )
        assert "repro.a.helper" in program.functions
        assert "repro.a.Widget.spin" in program.functions
        assert "repro.a.Widget" in program.classes
        assert [c.qualname for c in program.classes_by_name["Widget"]] == [
            "repro.a.Widget"
        ]
        assert [m.qualname for m in program.methods_by_name["spin"]] == [
            "repro.a.Widget.spin"
        ]

    def test_site_key_matches_clock_allowlist_format(self):
        program = _program(
            src__repro__a="""
            class Widget:
                def spin(self):
                    pass

            def helper():
                pass
            """
        )
        assert (
            program.functions["repro.a.Widget.spin"].site
            == "src/repro/a.py::Widget.spin"
        )
        assert program.functions["repro.a.helper"].site == "src/repro/a.py::helper"

    def test_import_aliases(self):
        program = _program(
            src__repro__a="""
            import numpy as np
            from repro.b import helper as h
            """,
            src__repro__b="""
            def helper():
                pass
            """,
        )
        imports = program.modules["repro.a"].imports
        assert imports["np"] == "numpy"
        assert imports["h"] == "repro.b.helper"

    def test_syntax_error_modules_are_skipped(self):
        program = Program.from_sources(
            {
                "src/repro/bad.py": "def broken(:\n",
                "src/repro/good.py": "def fine():\n    pass\n",
            }
        )
        assert "repro.bad" not in program.modules
        assert "repro.good.fine" in program.functions


class TestMutableGlobals:
    def test_detects_containers_counters_and_program_classes(self):
        program = _program(
            src__repro__a="""
            import itertools

            class Registry:
                pass

            HINTS = {}
            SEEN = set()
            COUNTER = itertools.count()
            SHARED = Registry()
            LIMIT = 5
            NAMES = ("a", "b")
            FROZEN = frozenset({1})
            """
        )
        globals_ = program.modules["repro.a"].mutable_globals
        assert set(globals_) == {"HINTS", "SEEN", "COUNTER", "SHARED"}

    def test_unknown_constructor_is_not_mutable(self):
        program = _program(
            src__repro__a="""
            import re

            PATTERN = re.compile("x")
            """
        )
        assert program.modules["repro.a"].mutable_globals == {}


class TestInstanceAttrTypes:
    def test_self_assignments_record_constructor_types(self):
        program = _program(
            src__repro__a="""
            class Engine:
                def __init__(self):
                    self.network = FlowNetwork()
                    self.fallback = existing or FlowNetwork()
                    self.count = 0

            class FlowNetwork:
                def start_flow(self):
                    pass
            """
        )
        attr_types = program.modules["repro.a"].classes["Engine"].attr_types
        assert attr_types["network"] == "FlowNetwork"
        assert attr_types["fallback"] == "FlowNetwork"
        assert "count" not in attr_types

    def test_private_class_names_count_as_constructors(self):
        program = _program(
            src__repro__a="""
            class Holder:
                def __init__(self):
                    self.state = _SearchState()

            class _SearchState:
                def run(self):
                    pass
            """
        )
        attr_types = program.modules["repro.a"].classes["Holder"].attr_types
        assert attr_types["state"] == "_SearchState"


class TestResolution:
    def test_resolve_class_through_imports(self):
        program = _program(
            src__repro__a="""
            from repro.b import Widget

            def use():
                pass
            """,
            src__repro__b="""
            class Widget:
                def spin(self):
                    pass
            """,
        )
        module = program.modules["repro.a"]
        cls = program.resolve_class(module, "Widget")
        assert cls is not None and cls.qualname == "repro.b.Widget"

    def test_resolve_method_includes_ancestors_and_overrides(self):
        program = _program(
            src__repro__a="""
            class Base:
                def emit(self):
                    pass

                def shared(self):
                    pass

            class Child(Base):
                def emit(self):
                    pass
            """
        )
        base = program.classes["repro.a.Base"]
        child = program.classes["repro.a.Child"]
        # Through the base, a call may dispatch to the override too.
        emitted = {m.qualname for m in program.resolve_method(base, "emit")}
        assert emitted == {"repro.a.Base.emit", "repro.a.Child.emit"}
        # Through the child, inherited methods resolve upward.
        shared = {m.qualname for m in program.resolve_method(child, "shared")}
        assert shared == {"repro.a.Base.shared"}


class TestFromTree:
    def test_non_utf8_files_are_skipped(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "good.py").write_text("def fine():\n    pass\n")
        (pkg / "binary.py").write_bytes(b"\xff\xfe\x00bad")
        program = Program.from_tree(tmp_path)
        assert "repro.good.fine" in program.functions
        assert "repro.binary" not in program.modules
