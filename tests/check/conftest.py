"""Shared planning fixtures for the repro.check tests.

Planning is the slow part, so the plans are session-scoped: one MIP solve
and one max-stage solve serve every checker test.
"""

from __future__ import annotations

import pytest

from repro.core.api import MobiusConfig, plan_mobius
from repro.hardware.topology import topo_2_2
from repro.models.spec import build_gpt_like


def _tiny_model():
    return build_gpt_like(
        "tiny", n_blocks=6, hidden_dim=1024, n_heads=8, default_microbatch_size=2
    )


@pytest.fixture(scope="session")
def planned_tiny():
    """(MobiusPlanReport, Topology) for the tiny model on the 2+2 server."""
    topology = topo_2_2()
    report = plan_mobius(
        _tiny_model(), topology, MobiusConfig(partition_time_limit=2.0)
    )
    return report, topology


@pytest.fixture(scope="session")
def planned_tiny_many_stages():
    """A block-per-stage plan (S > N), so every prefetch constraint is live."""
    topology = topo_2_2()
    report = plan_mobius(
        _tiny_model(),
        topology,
        MobiusConfig(partition_method="min-stage", partition_time_limit=2.0),
    )
    return report, topology
