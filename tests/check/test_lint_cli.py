"""The ``repro lint`` subcommand: output modes, baselines, exit codes."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A tree with one interprocedural finding: Simulator.run reaches a wall
#: clock in a module no path-prefix rule covers.
_FIXTURE_FILES = {
    "src/repro/sim/engine.py": """
        from repro.analysis.helpers import estimate

        class Simulator:
            def run(self):
                estimate()
        """,
    "src/repro/analysis/helpers.py": """
        import time

        def estimate():
            return time.time()
        """,
}


@pytest.fixture()
def fixture_root(tmp_path):
    for rel_path, source in _FIXTURE_FILES.items():
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


class TestLintCommand:
    def test_repo_tree_is_clean(self, capsys):
        assert main(["lint", "--root", str(REPO_ROOT), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["unused_baseline_entries"] == []

    def test_finding_fails_with_exit_1(self, fixture_root, capsys):
        assert main(["lint", "--root", str(fixture_root), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {f["code"] for f in payload["findings"]}
        assert "MOB004" in codes

    def test_no_analysis_skips_interprocedural_rules(self, fixture_root):
        # The fixture's only finding needs reachability; per-file rules
        # alone see a clean tree.
        assert main(["lint", "--root", str(fixture_root), "--no-analysis"]) == 0

    def test_sarif_output_is_written(self, fixture_root, tmp_path, capsys):
        sarif_path = tmp_path / "out" / "lint.sarif"
        sarif_path.parent.mkdir()
        code = main(
            ["lint", "--root", str(fixture_root), "--sarif", str(sarif_path)]
        )
        assert code == 1
        document = json.loads(sarif_path.read_text())
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"][0]["ruleId"] == "MOB004"

    def test_write_baseline_then_clean(self, fixture_root, capsys):
        baseline_path = fixture_root / "LINT_BASELINE.json"
        assert (
            main(["lint", "--root", str(fixture_root), "--write-baseline"]) == 0
        )
        assert baseline_path.is_file()
        capsys.readouterr()
        # With the generated baseline, the same tree is clean.
        assert main(["lint", "--root", str(fixture_root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["suppressed"]

    def test_paths_restrict_reported_findings(self, fixture_root, capsys):
        # The finding is in src/repro/analysis/; restricting to sim/ hides it.
        assert (
            main(["lint", "--root", str(fixture_root), "src/repro/sim", "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_missing_tree_is_a_usage_error(self, tmp_path, capsys):
        assert main(["lint", "--root", str(tmp_path)]) == 2
        assert "no src/repro" in capsys.readouterr().err


class TestCheckReusesLint:
    def test_check_lint_only_is_clean_on_repo(self, capsys):
        code = main(
            ["check", "--no-corpus", "--json", "--root", str(REPO_ROOT)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_check_surfaces_analysis_findings(self, fixture_root, capsys):
        code = main(
            ["check", "--no-corpus", "--json", "--root", str(fixture_root)]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(f["code"] == "MOB004" for f in payload["findings"])
