"""Tests for the verification corpus and the ``repro check`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.check.corpus import default_corpus
from repro.check.findings import CheckReport, Finding
from repro.cli import main


class TestFindings:
    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            Finding("plan", "X", "msg", severity="fatal")

    def test_report_ok_semantics(self):
        report = CheckReport()
        assert report.ok
        report.add("plan", "X", "soft", severity="warning")
        assert report.ok
        report.add("plan", "Y", "hard")
        assert not report.ok
        assert len(report.errors) == 1
        assert len(report.warnings) == 1

    def test_prefixed_subjects(self):
        report = CheckReport()
        report.add("trace", "A", "msg", subject="gpu 0")
        report.add("trace", "B", "msg")
        cell = report.prefixed("gpt-a/topo_2_2")
        assert cell.findings[0].subject == "gpt-a/topo_2_2: gpu 0"
        assert cell.findings[1].subject == "gpt-a/topo_2_2"

    def test_render_mentions_counts(self):
        report = CheckReport()
        report.add("plan", "X", "msg")
        assert "1 error(s), 0 warning(s)" in report.render()
        assert CheckReport().render() == "no findings"


class TestCorpus:
    def test_default_corpus_has_at_least_four_cells(self):
        cells = default_corpus()
        assert len(cells) >= 4
        assert len({cell.name for cell in cells}) == len(cells)
        # The corpus must exercise more than one topology and model.
        assert len({cell.topology.name for cell in cells}) >= 3
        assert len({cell.model.name for cell in cells}) >= 2


class TestCheckCli:
    def test_lint_only_run_passes(self, capsys):
        # Corpus planning is covered by the (slow) integration test below;
        # the lint half runs in milliseconds and must be clean.
        assert main(["check", "--no-corpus"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["check", "--no-corpus", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []

    @pytest.mark.slow
    def test_full_corpus_gate_passes(self, capsys):
        """The acceptance gate: every checker, every cell, zero findings."""
        assert main(["check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["n_errors"] == 0
