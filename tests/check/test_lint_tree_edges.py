"""lint_tree / lint_file edge cases: broken files and allowlisted clocks."""

import textwrap
from pathlib import Path

from repro.check.findings import CheckReport
from repro.check.lint import DEFAULT_CONFIG, LintConfig, lint_file, lint_tree


def _codes(report: CheckReport) -> list[str]:
    return [f.code for f in report]


def _make_tree(tmp_path: Path, files: dict[str, bytes]) -> Path:
    for rel_path, data in files.items():
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)
    return tmp_path


class TestBrokenFiles:
    def test_syntax_error_file_reports_mob000_and_does_not_abort(self, tmp_path):
        root = _make_tree(
            tmp_path,
            {
                "src/repro/sim/broken.py": b"def oops(:\n",
                "src/repro/sim/fine.py": b"import time\nt = time.time()\n",
            },
        )
        report = lint_tree(root)
        codes = _codes(report)
        assert "MOB000" in codes  # the broken file
        assert "MOB002" in codes  # the fine file was still linted

    def test_empty_file_is_clean(self, tmp_path):
        root = _make_tree(tmp_path, {"src/repro/sim/empty.py": b""})
        assert _codes(lint_tree(root)) == []

    def test_non_utf8_file_reports_mob000_instead_of_raising(self, tmp_path):
        root = _make_tree(
            tmp_path, {"src/repro/sim/binary.py": b"\xff\xfe\x00garbage"}
        )
        report = lint_tree(root)
        assert _codes(report) == ["MOB000"]
        assert "not valid UTF-8" in report.findings[0].message

    def test_lint_file_handles_non_utf8(self, tmp_path):
        root = _make_tree(
            tmp_path, {"src/repro/sim/binary.py": b"\xff\xfe\x00garbage"}
        )
        report = lint_file(root / "src/repro/sim/binary.py", root)
        assert _codes(report) == ["MOB000"]


class TestClockAllowlist:
    def test_allowlisted_site_is_clean_but_other_sites_flagged(self, tmp_path):
        source = textwrap.dedent(
            """
            import time

            class Bench:
                def report(self):
                    return time.perf_counter()

                def hot(self):
                    return time.perf_counter()
            """
        ).encode()
        root = _make_tree(tmp_path, {"src/repro/solver/bench.py": source})
        config = LintConfig(
            fingerprint_modules=(),
            label_modules=(),
            clock_allowlist=frozenset(
                {"src/repro/solver/bench.py::Bench.report"}
            ),
        )
        report = lint_tree(root, config)
        flagged_lines = [f.subject for f in report if f.code == "MOB002"]
        # Only the non-allowlisted method is flagged.
        assert len(flagged_lines) == 1
        assert flagged_lines[0].endswith(":9")

    def test_default_allowlist_covers_repo_reporting_sites(self):
        assert (
            "src/repro/solver/branch_bound.py::BranchAndBoundSolver.solve"
            in DEFAULT_CONFIG.clock_allowlist
        )
