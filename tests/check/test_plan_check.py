"""Tests for the ExecutionPlan constraint replay (repro.check.plan_check)."""

from __future__ import annotations

import dataclasses

from repro.check.plan_check import check_plan


def _codes(report):
    return {f.code for f in report}


class TestCleanPlans:
    def test_planner_output_passes(self, planned_tiny):
        report, topology = planned_tiny
        result = check_plan(report.plan, topology, report.cost_model)
        assert result.ok, result.render()

    def test_max_stage_plan_passes(self, planned_tiny_many_stages):
        report, topology = planned_tiny_many_stages
        plan = report.plan
        assert plan.n_stages > plan.n_gpus  # the Eq. 5 constraints are live
        result = check_plan(plan, topology, report.cost_model)
        assert result.ok, result.render()


class TestSeededViolations:
    def test_wrong_microbatch_count(self, planned_tiny):
        report, topology = planned_tiny
        bad = dataclasses.replace(report.plan, n_microbatches=report.plan.n_gpus + 1)
        result = check_plan(bad, topology, report.cost_model, replay_objective=False)
        assert "PLAN-MN" in _codes(result)
        assert not result.ok

    def test_oversized_prefetch_budget(self, planned_tiny):
        report, topology = planned_tiny
        plan = report.plan
        budgets = list(plan.prefetch_fwd_bytes)
        budgets[-1] = int(report.cost_model.usable_gpu_bytes() * 2)
        bad = dataclasses.replace(plan, prefetch_fwd_bytes=tuple(budgets))
        result = check_plan(bad, topology, report.cost_model, replay_objective=False)
        assert "PLAN-PF-RANGE" in _codes(result)

    def test_negative_prefetch_budget(self, planned_tiny):
        report, topology = planned_tiny
        plan = report.plan
        budgets = list(plan.prefetch_fwd_bytes)
        budgets[0] = -1
        bad = dataclasses.replace(plan, prefetch_fwd_bytes=tuple(budgets))
        result = check_plan(bad, topology, report.cost_model, replay_objective=False)
        finding = next(f for f in result if f.code == "PLAN-PF-RANGE")
        assert finding.slack == -1

    def test_prefetch_overflows_reservation(self, planned_tiny_many_stages):
        """Eq. 5: a budget equal to the whole upload cannot fit beside the
        footprint of the stage currently running on the same GPU."""
        report, topology = planned_tiny_many_stages
        plan = report.plan
        n, s = plan.n_gpus, plan.n_stages
        costs = plan.partition.stage_costs(report.cost_model)
        gpu_memory = report.cost_model.usable_gpu_bytes()

        assert s > n
        j = n  # the first stage whose upload overlaps an executing stage
        room = gpu_memory - costs[j - n].mem_fwd(plan.n_microbatches)
        budgets = list(plan.prefetch_fwd_bytes)
        budgets[j] = int(room) + 1

        bad = dataclasses.replace(plan, prefetch_fwd_bytes=tuple(budgets))
        result = check_plan(bad, topology, report.cost_model, replay_objective=False)
        assert "PLAN-EQ5-FWD" in _codes(result)
        assert all(f.slack < 0 for f in result if f.code == "PLAN-EQ5-FWD")

    def test_resident_tail_with_backward_budget(self, planned_tiny):
        report, topology = planned_tiny
        plan = report.plan
        budgets = list(plan.prefetch_bwd_bytes)
        budgets[-1] = 1024  # the last stage is always in the resident tail
        bad = dataclasses.replace(plan, prefetch_bwd_bytes=tuple(budgets))
        result = check_plan(bad, topology, report.cost_model, replay_objective=False)
        assert "PLAN-RESIDENT" in _codes(result)

    def test_wrong_objective_is_warning_only(self, planned_tiny):
        report, topology = planned_tiny
        bad = dataclasses.replace(
            report.plan,
            estimated_step_seconds=report.plan.estimated_step_seconds * 2,
        )
        result = check_plan(bad, topology, report.cost_model)
        assert "PLAN-OBJ" in _codes(result)
        assert result.ok  # drift is reported but does not fail the gate
        assert result.warnings

    def test_gpu_count_mismatch_short_circuits(self, planned_tiny):
        from repro.hardware.topology import topo_4_4

        report, _ = planned_tiny
        result = check_plan(report.plan, topo_4_4(), report.cost_model)
        assert _codes(result) == {"PLAN-GPUS"}


class TestReportShape:
    def test_findings_name_offending_stage(self, planned_tiny):
        report, topology = planned_tiny
        plan = report.plan
        budgets = list(plan.prefetch_fwd_bytes)
        budgets[2] = -5
        bad = dataclasses.replace(plan, prefetch_fwd_bytes=tuple(budgets))
        result = check_plan(bad, topology, report.cost_model, replay_objective=False)
        finding = next(f for f in result if f.code == "PLAN-PF-RANGE")
        assert "stage 2" in finding.subject
        assert f"gpu {plan.mapping.gpu_of_stage(2)}" in finding.subject

    def test_json_round_trip(self, planned_tiny):
        import json

        report, topology = planned_tiny
        result = check_plan(report.plan, topology, report.cost_model)
        payload = json.loads(result.to_json())
        assert payload["ok"] is True
        assert payload["findings"] == []


def test_infeasible_replay_is_flagged(planned_tiny):
    """A plan whose stages cannot fit is caught by the analytic replay."""
    from repro.models.costmodel import CostModel

    report, topology = planned_tiny
    tiny_gpu = dataclasses.replace(
        report.cost_model.gpu_spec, memory_bytes=64 * 2**20
    )
    shrunk = CostModel(tiny_gpu, report.cost_model.microbatch_size)
    result = check_plan(report.plan, topology, shrunk)
    assert not result.ok
    assert _codes(result) & {"PLAN-EQ4", "PLAN-REPLAY"}
