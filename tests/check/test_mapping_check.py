"""Tests for the contention-degree mapping checker (repro.check.mapping_check)."""

from __future__ import annotations

import pytest

from repro.check.mapping_check import check_mapping, optimal_contention
from repro.core.mapping import contention_degree
from repro.core.plan import Mapping
from repro.hardware.topology import topo_1_3, topo_2_2, topo_4


class TestOptimalContention:
    def test_matches_exhaustive_search(self):
        topo = topo_2_2()
        best = optimal_contention(topo, n_stages=8)
        # Cross mapping on 2+2 alternates root complexes, e.g. (0, 2, 1, 3).
        assert best == pytest.approx(
            contention_degree(topo, Mapping((0, 2, 1, 3)), 8)
        )

    def test_single_root_complex_has_no_slack(self):
        # All four GPUs of topo_4 share one root complex: every permutation
        # has the same contention, so every mapping is optimal.
        topo = topo_4()
        best = optimal_contention(topo, n_stages=8)
        worst = contention_degree(topo, Mapping.sequential(4), 8)
        assert best == pytest.approx(worst)

    def test_rejects_large_servers(self):
        from repro.hardware.topology import commodity_server

        topo = commodity_server([3, 3, 3])
        with pytest.raises(ValueError, match="exact contention search"):
            optimal_contention(topo, n_stages=9)


class TestCheckMapping:
    def test_planner_mapping_is_optimal(self, planned_tiny):
        report, topology = planned_tiny
        plan = report.plan
        result = check_mapping(plan.mapping, topology, plan.n_stages)
        assert result.ok, result.render()

    def test_sequential_mapping_flagged_on_2_2(self):
        topo = topo_2_2()
        result = check_mapping(Mapping.sequential(4), topo, n_stages=8)
        codes = {f.code for f in result}
        assert codes == {"MAP-CONTENTION"}
        finding = result.findings[0]
        # Adjacent stages (0,1) land on GPUs 0 and 1 — same root complex.
        assert "(0,1)" in finding.message
        assert finding.slack is not None and finding.slack < 0

    def test_sequential_mapping_ok_on_asymmetric_server(self):
        # 1+3: GPU 0 is alone on its root complex; the identity permutation
        # may or may not be optimal — but the *optimal* one must pass.
        topo = topo_1_3()
        n_stages = 8
        for perm_result in [check_mapping(Mapping.sequential(4), topo, n_stages)]:
            for finding in perm_result:
                assert finding.code == "MAP-CONTENTION"

    def test_gpu_count_mismatch(self):
        result = check_mapping(Mapping.sequential(2), topo_2_2(), n_stages=4)
        assert {f.code for f in result} == {"MAP-GPUS"}
