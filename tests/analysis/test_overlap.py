"""Tests for overlap statistics (Figure 8)."""

import pytest

from repro.analysis.overlap import overlap_stats
from repro.sim.trace import Trace

GB = 1e9


class TestOverlapStats:
    def test_fully_overlapped(self):
        trace = Trace(1)
        trace.add_compute(0, 0.0, 2.0)
        trace.add_transfer(0, 0.5, 1.5, GB)
        stats = overlap_stats(trace)
        assert stats.non_overlapped_fraction == 0.0
        assert stats.comm_fraction == pytest.approx(0.5)
        assert stats.compute_fraction == pytest.approx(1.0)

    def test_fully_exposed(self):
        trace = Trace(1)
        trace.add_transfer(0, 0.0, 2.0, GB)
        stats = overlap_stats(trace)
        assert stats.non_overlapped_fraction == pytest.approx(1.0)
        assert stats.compute_fraction == 0.0

    def test_partial_overlap(self):
        trace = Trace(1)
        trace.add_compute(0, 0.0, 1.0)
        trace.add_transfer(0, 0.5, 2.0, GB)
        stats = overlap_stats(trace)
        assert stats.step_seconds == pytest.approx(2.0)
        assert stats.non_overlapped_fraction == pytest.approx(0.5)

    def test_mean_over_gpus(self):
        trace = Trace(2)
        trace.add_compute(0, 0.0, 2.0)
        trace.add_transfer(0, 0.0, 2.0, GB)  # overlapped on GPU 0
        trace.add_transfer(1, 0.0, 2.0, GB)  # exposed on GPU 1
        stats = overlap_stats(trace)
        assert stats.non_overlapped_fraction == pytest.approx(0.5)

    def test_empty_trace(self):
        stats = overlap_stats(Trace(1))
        assert stats.step_seconds == 0.0
        assert stats.non_overlapped_fraction == 0.0
