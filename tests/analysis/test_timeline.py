"""Tests for Gantt rendering and Chrome-trace export."""

import json

import pytest

from repro.analysis.timeline import ascii_gantt, to_chrome_trace
from repro.sim.trace import Trace

GB = 1e9


@pytest.fixture
def trace():
    trace = Trace(2)
    trace.add_compute(0, 0.0, 1.0, "F0")
    trace.add_compute(1, 0.5, 1.5, "F1")
    trace.add_transfer(0, 0.0, 0.5, GB, "param-upload", "U0")
    trace.add_transfer(1, 1.0, 1.5, GB, "grad-offload", "G1")
    return trace


class TestAsciiGantt:
    def test_has_rows_per_gpu(self, trace):
        chart = ascii_gantt(trace, width=40)
        assert "gpu0 cmp" in chart and "gpu1 cmp" in chart
        assert "gpu0 com" in chart and "gpu1 com" in chart

    def test_compute_glyphs_present(self, trace):
        chart = ascii_gantt(trace, width=40)
        row = next(l for l in chart.splitlines() if l.startswith("gpu0 cmp"))
        assert "=" in row

    def test_transfer_glyph_direction(self, trace):
        chart = ascii_gantt(trace, width=40)
        gpu0_com = next(l for l in chart.splitlines() if l.startswith("gpu0 com"))
        gpu1_com = next(l for l in chart.splitlines() if l.startswith("gpu1 com"))
        assert "v" in gpu0_com  # upload direction glyph
        assert "^" in gpu1_com  # offload glyph

    def test_bars_have_requested_width(self, trace):
        chart = ascii_gantt(trace, width=25)
        row = next(l for l in chart.splitlines() if l.startswith("gpu0 cmp"))
        bar = row.split("|")[1]
        assert len(bar) == 25

    def test_empty_trace(self):
        assert ascii_gantt(Trace(1)) == "(empty trace)"

    def test_legend_toggle(self, trace):
        assert "legend" in ascii_gantt(trace)
        assert "legend" not in ascii_gantt(trace, label_kinds=False)


class TestChromeTrace:
    def test_valid_json_with_all_events(self, trace):
        payload = json.loads(to_chrome_trace(trace))
        events = payload["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) == 4  # 2 compute + 2 transfers

    def test_durations_in_microseconds(self, trace):
        payload = json.loads(to_chrome_trace(trace))
        compute = [e for e in payload["traceEvents"] if e.get("cat") == "compute"]
        assert compute[0]["dur"] == pytest.approx(1e6)

    def test_transfer_args(self, trace):
        payload = json.loads(to_chrome_trace(trace))
        transfer = next(
            e for e in payload["traceEvents"] if e.get("cat") == "param-upload"
        )
        assert transfer["args"]["bytes"] == GB
        assert transfer["args"]["bandwidth_GBps"] == pytest.approx(2.0)

    def test_process_metadata(self, trace):
        payload = json.loads(to_chrome_trace(trace))
        names = [
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("ph") == "M"
        ]
        assert names == ["GPU 0", "GPU 1"]
