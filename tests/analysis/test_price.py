"""Tests for per-step price analysis (Figure 15b)."""

import pytest

from repro.analysis.price import PricePoint, price_comparison
from repro.hardware.pricing import COMMODITY_4X3090TI, EC2_P3_8XLARGE


class TestPricePoints:
    def test_step_price(self):
        point = PricePoint("DeepSpeed", EC2_P3_8XLARGE, 3600.0)
        assert point.step_price_usd == pytest.approx(12.24)

    def test_commodity_cheaper_despite_slower(self):
        # Paper §4.8: +42% time but -43% price.
        ds_dc = PricePoint("DeepSpeed", EC2_P3_8XLARGE, 10.0)
        mobius_c = PricePoint("Mobius", COMMODITY_4X3090TI, 14.2)
        assert mobius_c.step_seconds > ds_dc.step_seconds
        assert mobius_c.step_price_usd < ds_dc.step_price_usd

    def test_comparison_table(self):
        points = [
            PricePoint("DeepSpeed", EC2_P3_8XLARGE, 10.0),
            PricePoint("Mobius", COMMODITY_4X3090TI, 14.0),
        ]
        rows = price_comparison(points)
        assert len(rows) == 2
        assert rows[0]["system"] == "DeepSpeed"
        assert rows[1]["step_price_usd"] == pytest.approx(
            COMMODITY_4X3090TI.hourly_usd * 14.0 / 3600.0
        )
