"""Tests for the analytic traffic model (Eqs. 1-2)."""

import pytest

from repro.analysis.traffic import (
    deepspeed_traffic,
    mobius_traffic,
    model_size_bytes,
)
from repro.models.spec import FP16_BYTES, FP32_BYTES, build_gpt_like
from repro.models.zoo import gpt_15b


@pytest.fixture
def model():
    return build_gpt_like("m", n_blocks=6, hidden_dim=512, n_heads=8)


class TestMobiusTraffic:
    def test_parameters_2x_fp16(self, model):
        estimate = mobius_traffic(model, 1, 4)
        assert estimate.parameters == 2 * model.param_bytes(FP16_BYTES)

    def test_gradients_1x_fp16(self, model):
        estimate = mobius_traffic(model, 1, 4)
        assert estimate.gradients == model.param_bytes(FP16_BYTES)

    def test_total_about_1_5x_model(self, model):
        estimate = mobius_traffic(model, 1, 4)
        ratio = estimate.relative_to(model_size_bytes(model))
        assert 1.4 <= ratio <= 1.9  # Eq. 1 / Figure 6

    def test_independent_of_gpu_count(self, model):
        # Mobius traffic doesn't scale with N (only activations scale with
        # microbatch count).
        a = mobius_traffic(model, 1, 2)
        b = mobius_traffic(model, 1, 8)
        assert a.parameters == b.parameters
        assert a.gradients == b.gradients
        assert b.activations > a.activations


class TestDeepSpeedTraffic:
    def test_parameters_scale_with_n(self, model):
        four = deepspeed_traffic(model, 1, 4)
        eight = deepspeed_traffic(model, 1, 8)
        assert eight.parameters == pytest.approx(2 * four.parameters)

    def test_total_about_1_5N_model(self, model):
        estimate = deepspeed_traffic(model, 1, 4, overhead=1.0)
        ratio = estimate.relative_to(model_size_bytes(model))
        assert 5.5 <= ratio <= 6.5  # Eq. 2 with N = 4

    def test_measured_overhead_lands_near_7_3(self, model):
        estimate = deepspeed_traffic(model, 1, 4)  # default overhead 1.22
        ratio = estimate.relative_to(model_size_bytes(model))
        assert 6.5 <= ratio <= 7.6  # paper's measured 7.3x

    def test_ratio_ds_over_mobius_about_n(self, model):
        ds = deepspeed_traffic(model, 1, 4, overhead=1.0)
        mobius = mobius_traffic(model, 1, 4)
        assert ds.total / mobius.total == pytest.approx(4.0, rel=0.15)


class TestModelSize:
    def test_fp32_reference(self, model):
        assert model_size_bytes(model) == model.param_bytes(FP32_BYTES)

    def test_15b_reference_line(self):
        # Figure 6's red line for the 15B model sits near 52 GB.
        assert model_size_bytes(gpt_15b()) == pytest.approx(52e9, rel=0.05)
