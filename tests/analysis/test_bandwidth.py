"""Tests for bandwidth CDF analysis."""

import numpy as np
import pytest

from repro.analysis.bandwidth import (
    bandwidth_cdf,
    fraction_of_bytes_above,
    fraction_of_bytes_below,
)
from repro.sim.trace import Trace

GB = 1e9


@pytest.fixture
def trace():
    trace = Trace(2)
    trace.add_transfer(0, 0.0, 1.0, 2 * GB, "a")  # 2 GB/s
    trace.add_transfer(0, 0.0, 1.0, 6 * GB, "a")  # 6 GB/s
    trace.add_transfer(1, 0.0, 1.0, 12 * GB, "b")  # 12 GB/s
    return trace


class TestCDF:
    def test_values_on_grid(self, trace):
        cdf = bandwidth_cdf(trace, grid_gbps=[0, 3, 7, 13])
        assert cdf.cdf == pytest.approx((0.0, 0.1, 0.4, 1.0))

    def test_monotone_and_normalised(self, trace):
        cdf = bandwidth_cdf(trace)
        values = np.array(cdf.cdf)
        assert np.all(np.diff(values) >= 0)
        assert values[-1] == pytest.approx(1.0)

    def test_kind_filter(self, trace):
        cdf = bandwidth_cdf(trace, kinds=["b"], grid_gbps=[0, 13])
        assert cdf.cdf[-1] == pytest.approx(1.0)
        assert cdf.value_at(11.0) == 0.0  # the only "b" transfer is 12 GB/s

    def test_value_at_interpolation(self, trace):
        cdf = bandwidth_cdf(trace, grid_gbps=[0, 3, 7, 13])
        assert cdf.value_at(5.0) == pytest.approx(0.1)
        assert cdf.value_at(-1.0) == 0.0

    def test_rows_pairs(self, trace):
        cdf = bandwidth_cdf(trace, grid_gbps=[0, 13])
        assert cdf.rows() == [(0, 0.0), (13, 1.0)]

    def test_label(self, trace):
        assert bandwidth_cdf(trace, label="DS").label == "DS"


class TestFractions:
    def test_below(self, trace):
        assert fraction_of_bytes_below(trace, 6.5) == pytest.approx(8 / 20)

    def test_above(self, trace):
        assert fraction_of_bytes_above(trace, 6.5) == pytest.approx(12 / 20)

    def test_complementary(self, trace):
        below = fraction_of_bytes_below(trace, 9.0)
        above = fraction_of_bytes_above(trace, 9.0)
        assert below + above == pytest.approx(1.0)

    def test_empty_trace(self):
        empty = Trace(1)
        assert fraction_of_bytes_below(empty, 5.0) == 0.0
        assert fraction_of_bytes_above(empty, 5.0) == 0.0
