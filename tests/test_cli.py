"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_topology, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.model == "15B"
        assert args.topology == "2+2"

    def test_topology_parsing(self):
        assert _parse_topology("2+2", "RTX 3090-Ti").groups == (2, 2)
        assert _parse_topology("4", "RTX 3090-Ti").groups == (4,)
        assert _parse_topology("dc", "RTX 3090-Ti").has_p2p

    def test_bad_topology_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_topology("two plus two", "RTX 3090-Ti")


class TestCommands:
    def test_plan_command(self, capsys):
        code = main(
            ["plan", "--model", "GPT2", "--topology", "2+2", "--time-limit", "0.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stages" in out and "estimated step time" in out

    def test_compare_command(self, capsys):
        code = main(
            ["compare", "--model", "GPT2", "--topology", "2+2", "--microbatch", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for system in ("gpipe", "deepspeed", "mobius"):
            assert system in out

    def test_figures_prefix_match(self, capsys):
        code = main(["figures", "table1"])
        assert code == 0
        assert "3090-Ti" in capsys.readouterr().out

    def test_figures_unknown_name(self, capsys):
        code = main(["figures", "fig99"])
        assert code == 1

    def test_malformed_repro_jobs_fails_fast(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "bogus")
        code = main(["figures", "table1"])
        assert code == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_suite_rejects_malformed_repro_jobs(self, monkeypatch, capsys):
        from repro.experiments.suite import main as suite_main

        monkeypatch.setenv("REPRO_JOBS", "-3")
        code = suite_main(["table1"])
        assert code == 2
        assert "REPRO_JOBS" in capsys.readouterr().err
