"""Docstring examples in key modules stay correct."""

import doctest

import pytest

import repro.sim.engine
import repro.solver.model


@pytest.mark.parametrize(
    "module",
    [repro.sim.engine, repro.solver.model],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} has no doctest examples"
    assert result.failed == 0


def test_task_graph_runner_docstring_example():
    """The TaskGraphRunner class docstring's worked example is accurate."""
    from repro.hardware.topology import topo_2_2
    from repro.sim.tasks import ComputeTask, TaskGraphRunner, TransferTask

    topo = topo_2_2()
    up = TransferTask(path=topo.path_from_dram(0), nbytes=1e9, gpu=0)
    work = ComputeTask(gpu=0, seconds=0.5).after(up)
    trace = TaskGraphRunner(topo).execute([up, work])
    assert round(trace.makespan, 3) == 0.576
