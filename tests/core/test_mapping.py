"""Tests for cross mapping (Eqs. 12-13)."""

import itertools

import pytest

from repro.core.mapping import (
    contention_degree,
    cross_mapping,
    sequential_mapping,
)
from repro.core.plan import Mapping
from repro.hardware.topology import commodity_server, topo_1_3, topo_2_2, topo_4, topo_4_4


class TestContentionDegree:
    def test_matches_hand_computation(self):
        # Topo 2+2, sequential mapping, 4 stages: GPU pairs under the same
        # RC are (0,1) and (2,3) -> stage pairs (0,1) and (2,3), each with
        # shared = 2 and distance 1; same-GPU pairs don't exist for S = 4.
        topo = topo_2_2()
        degree = contention_degree(topo, Mapping.sequential(4), 4)
        assert degree == pytest.approx(2 / 1 + 2 / 1)

    def test_cross_mapping_reduces_hand_case(self):
        # Interleave the two root complexes: adjacent stages never share.
        topo = topo_2_2()
        crossed = Mapping((0, 2, 1, 3))
        assert contention_degree(topo, crossed, 4) < contention_degree(
            topo, Mapping.sequential(4), 4
        )

    def test_single_rc_is_mapping_invariant(self):
        # With all GPUs under one root complex, every permutation scores
        # identically.
        topo = topo_4()
        scores = {
            contention_degree(topo, Mapping(p), 8)
            for p in itertools.permutations(range(4))
        }
        assert len(scores) == 1

    def test_distance_decay(self):
        # Stage pairs further apart contribute less (1 / |i - j|).
        topo = topo_2_2()
        mapping = Mapping.sequential(4)
        short = contention_degree(topo, mapping, 5)
        assert short > contention_degree(topo, mapping, 4)

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            contention_degree(topo_2_2(), Mapping.sequential(4), 0)


class TestCrossMapping:
    @pytest.mark.parametrize("topo_factory", [topo_2_2, topo_1_3, topo_4, topo_4_4])
    def test_exhaustive_optimum(self, topo_factory):
        topo = topo_factory()
        n_stages = 2 * topo.n_gpus
        result = cross_mapping(topo, n_stages)
        best = min(
            contention_degree(topo, Mapping(p), n_stages)
            for p in itertools.permutations(range(topo.n_gpus))
        )
        assert result.contention == pytest.approx(best)

    def test_evaluates_all_permutations(self):
        result = cross_mapping(topo_2_2(), 8)
        assert result.schemes_evaluated == 24

    def test_beats_sequential_on_2_2(self):
        topo = topo_2_2()
        crossed = cross_mapping(topo, 8)
        sequential = contention_degree(topo, Mapping.sequential(4), 8)
        assert crossed.contention < sequential

    def test_adjacent_stages_on_different_rcs_where_possible(self):
        topo = topo_2_2()
        result = cross_mapping(topo, 8)
        perm = result.mapping.perm
        for a, b in zip(perm, perm[1:]):
            assert not topo.share_root_complex(a, b)

    def test_search_time_recorded(self):
        result = cross_mapping(topo_4_4(), 16)
        assert result.search_seconds > 0

    def test_large_server_uses_heuristic(self):
        topo = commodity_server([4, 4, 4])  # 12 GPUs > exact-search limit
        result = cross_mapping(topo, 24)
        assert result.schemes_evaluated == 1
        perm = result.mapping.perm
        assert sorted(perm) == list(range(12))
        # Heuristic interleaves root complexes.
        assert not topo.share_root_complex(perm[0], perm[1])

    def test_sequential_mapping_identity(self):
        result = sequential_mapping(topo_2_2())
        assert result.mapping.perm == (0, 1, 2, 3)
