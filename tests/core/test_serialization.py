"""Tests for execution-plan serialization."""

import pytest

from repro.core.api import MobiusConfig, plan_mobius
from repro.core.pipeline import simulate_mobius
from repro.core.serialization import load_plan, plan_from_json, plan_to_json, save_plan
from repro.hardware.topology import topo_2_2
from repro.models.spec import build_gpt_like


@pytest.fixture
def model():
    return build_gpt_like("ser", n_blocks=6, hidden_dim=512, n_heads=8)


@pytest.fixture
def plan(model):
    return plan_mobius(
        model, topo_2_2(), MobiusConfig(partition_time_limit=0.3)
    ).plan


class TestPlanSerialization:
    def test_roundtrip_preserves_plan(self, model, plan):
        restored = plan_from_json(plan_to_json(plan), model)
        assert restored.partition.boundaries == plan.partition.boundaries
        assert restored.mapping.perm == plan.mapping.perm
        assert restored.prefetch_fwd_bytes == plan.prefetch_fwd_bytes
        assert restored.n_microbatches == plan.n_microbatches

    def test_restored_plan_simulates_identically(self, model, plan):
        from repro.hardware.gpu import RTX_3090TI
        from repro.models.costmodel import CostModel

        topology = topo_2_2()
        cm = CostModel(RTX_3090TI, plan.microbatch_size)
        restored = plan_from_json(plan_to_json(plan), model)
        original = simulate_mobius(plan, topology, cm)
        replayed = simulate_mobius(restored, topology, cm)
        assert replayed.step_seconds == pytest.approx(original.step_seconds)

    def test_file_roundtrip(self, model, plan, tmp_path):
        path = str(tmp_path / "plan.json")
        save_plan(plan, path)
        restored = load_plan(path, model)
        assert restored.partition.boundaries == plan.partition.boundaries

    def test_wrong_model_rejected(self, plan):
        other = build_gpt_like("other", n_blocks=8, hidden_dim=512, n_heads=8)
        with pytest.raises(ValueError, match="plan was built for"):
            plan_from_json(plan_to_json(plan), other)

    def test_unknown_version_rejected(self, model, plan):
        import json

        payload = json.loads(plan_to_json(plan))
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            plan_from_json(json.dumps(payload), model)
