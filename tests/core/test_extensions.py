"""Tests for the beyond-the-paper extensions."""

import pytest

from repro.core.api import MobiusConfig
from repro.core.extensions import (
    advise_microbatch_size,
    simulate_mobius_steps,
    simulate_with_ssd,
)
from repro.hardware.topology import topo_2_2


@pytest.fixture
def config():
    return MobiusConfig(partition_time_limit=1.0)


class TestSSDTier:
    def test_ssd_is_slower(self, tiny_model, config):
        comparison = simulate_with_ssd(tiny_model, topo_2_2(), config=config)
        assert comparison.slowdown > 1.0

    def test_slower_ssd_hurts_more(self, tiny_model, config):
        fast = simulate_with_ssd(
            tiny_model, topo_2_2(), ssd_bandwidth=6e9, config=config
        )
        slow = simulate_with_ssd(
            tiny_model, topo_2_2(), ssd_bandwidth=1.5e9, config=config
        )
        assert slow.ssd_step_seconds > fast.ssd_step_seconds
        assert slow.slowdown > fast.slowdown

    def test_dram_baseline_matches_plain_simulation(self, tiny_model, config):
        from repro.core.api import run_mobius

        comparison = simulate_with_ssd(tiny_model, topo_2_2(), config=config)
        plain = run_mobius(tiny_model, topo_2_2(), config)
        assert comparison.dram_step_seconds == pytest.approx(
            plain.step_seconds, rel=0.05
        )


class TestMultiStep:
    def test_steps_chain(self, tiny_model, config):
        run = simulate_mobius_steps(tiny_model, topo_2_2(), n_steps=3, config=config)
        assert run.n_steps == 3
        assert run.total_seconds > run.first_step_seconds

    def test_amortised_at_most_first_step_plus_epsilon(self, tiny_model, config):
        run = simulate_mobius_steps(tiny_model, topo_2_2(), n_steps=3, config=config)
        # Later steps cannot be faster than the dependency chain allows, but
        # amortised time should stay within ~2x of a single step.
        single = run.first_step_seconds
        assert run.amortised_step_seconds <= 2.0 * single

    def test_invalid_step_count(self, tiny_model, config):
        with pytest.raises(ValueError):
            simulate_mobius_steps(tiny_model, topo_2_2(), n_steps=0, config=config)

    def test_boundaries_monotone(self, tiny_model, config):
        run = simulate_mobius_steps(tiny_model, topo_2_2(), n_steps=3, config=config)
        assert run.step_boundaries == sorted(run.step_boundaries)


class TestMicrobatchAdvisor:
    def test_returns_feasible_choice(self, tiny_model):
        advice = advise_microbatch_size(
            tiny_model, topo_2_2(), candidates=(1, 2, 4)
        )
        assert advice.best_microbatch_size in (1, 2, 4)
        assert advice.throughputs[advice.best_microbatch_size] == max(
            advice.throughputs.values()
        )

    def test_throughput_and_steps_consistent(self, tiny_model):
        advice = advise_microbatch_size(tiny_model, topo_2_2(), candidates=(1, 2))
        for mbs, throughput in advice.throughputs.items():
            samples = 4 * mbs  # 4 GPUs -> M = 4 microbatches
            assert throughput == pytest.approx(samples / advice.step_seconds[mbs])

    def test_all_infeasible_raises(self, tiny_model):
        import dataclasses

        from repro.hardware.gpu import RTX_3090TI
        from repro.hardware.topology import commodity_server

        # A GPU too small for even one layer.
        tiny_gpu = dataclasses.replace(RTX_3090TI, memory_bytes=2 * 1024**3)
        topology = commodity_server([2, 2], tiny_gpu)
        with pytest.raises(ValueError):
            advise_microbatch_size(tiny_model, topology, candidates=(64,))
