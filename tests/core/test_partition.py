"""Tests for the MIP partition algorithm and the §4.3 baselines."""

import pytest

from repro.core.partition import (
    max_stage_partition,
    min_stage_partition,
    mip_partition,
)
from repro.hardware.gpu import RTX_3090TI
from repro.models.costmodel import CostModel
from repro.models.spec import LayerKind, build_gpt_like

BW = 13.1e9


@pytest.fixture
def model():
    return build_gpt_like("m", n_blocks=8, hidden_dim=1024, n_heads=8)


@pytest.fixture
def cm():
    return CostModel(RTX_3090TI, 2)


class TestMipPartition:
    def test_finds_feasible_partition(self, model, cm):
        result = mip_partition(model, cm, 2, 2, BW, time_limit=2.0)
        assert result.timings.feasible
        assert result.partition.n_stages >= 1
        assert result.method == "mip"

    def test_small_instance_solved_to_optimality(self, model, cm):
        result = mip_partition(model, cm, 2, 2, BW, time_limit=30.0)
        assert result.optimal

    def test_beats_or_matches_baselines(self, model, cm):
        mip = mip_partition(model, cm, 2, 2, BW, time_limit=10.0)
        maxs = max_stage_partition(model, cm, 2, 2, BW)
        mins = min_stage_partition(model, cm, 2, 2, BW)
        assert mip.timings.step_seconds <= maxs.timings.step_seconds + 1e-9
        assert mip.timings.step_seconds <= mins.timings.step_seconds + 1e-9

    def test_memory_constrained_search(self, model, cm):
        biggest_layer = max(
            cm.stage_cost(model, i, i + 1).mem_peak(2) for i in range(model.n_layers)
        )
        gpu_memory = int(biggest_layer * 2.5)
        result = mip_partition(model, cm, 2, 2, BW, gpu_memory=gpu_memory, time_limit=5.0)
        for stage in range(result.partition.n_stages):
            start, stop = result.partition.stage_layers(stage)
            assert cm.stage_cost(model, start, stop).mem_peak(2) <= gpu_memory

    def test_impossible_memory_raises(self, model, cm):
        with pytest.raises(ValueError):
            mip_partition(model, cm, 2, 2, BW, gpu_memory=1000, time_limit=1.0)

    def test_deterministic(self, model, cm):
        a = mip_partition(model, cm, 2, 2, BW, time_limit=5.0)
        b = mip_partition(model, cm, 2, 2, BW, time_limit=5.0)
        assert a.partition.boundaries == b.partition.boundaries

    def test_solve_time_recorded(self, model, cm):
        result = mip_partition(model, cm, 2, 2, BW, time_limit=1.0)
        assert 0 < result.solve_seconds < 5.0
        assert result.nodes_explored > 0


class TestMaxStagePartition:
    def test_greedy_packs_to_memory_limit(self, model, cm):
        biggest_layer = max(
            cm.stage_cost(model, i, i + 1).mem_peak(2) for i in range(model.n_layers)
        )
        gpu_memory = int(biggest_layer * 3.2)
        result = max_stage_partition(model, cm, 2, 2, BW, gpu_memory=gpu_memory)
        # Each stage (except possibly the last) cannot absorb its successor's
        # first layer.
        partition = result.partition
        for stage in range(partition.n_stages - 1):
            start, stop = partition.stage_layers(stage)
            grown = cm.stage_cost(model, start, stop + 1)
            assert grown.mem_peak(2) > gpu_memory

    def test_single_layer_too_big_raises(self, model, cm):
        with pytest.raises(ValueError):
            max_stage_partition(model, cm, 2, 2, BW, gpu_memory=1000)

    def test_fewer_stages_than_min_stage(self, model, cm):
        maxs = max_stage_partition(model, cm, 2, 2, BW)
        mins = min_stage_partition(model, cm, 2, 2, BW)
        assert maxs.partition.n_stages <= mins.partition.n_stages


class TestMinStagePartition:
    def test_one_block_per_stage(self, model, cm):
        result = min_stage_partition(model, cm, 2, 2, BW)
        n_blocks = sum(
            1 for l in model.layers if l.kind == LayerKind.TRANSFORMER_BLOCK
        )
        # Embedding merges into the first block's stage; norm+head into the
        # last block's stage.
        assert result.partition.n_stages == n_blocks
        start0, stop0 = result.partition.stage_layers(0)
        assert model.layers[start0].kind == LayerKind.EMBEDDING

    def test_infeasible_min_stage_raises(self, model, cm):
        with pytest.raises(ValueError):
            min_stage_partition(model, cm, 2, 2, BW, gpu_memory=1000)


class TestForwardStackStepTime:
    """The incremental backward sweep must be bit-identical to the full
    pipeline evaluation it replaces on the DFS leaf path."""

    def test_matches_evaluate_pipeline_on_random_partitions(self, model, cm):
        import itertools

        from repro.core.partition import _ForwardStack, _SearchContext
        from repro.core.timing import evaluate_pipeline

        n_layers = len(model.layers)
        gpu_memory = cm.usable_gpu_bytes()
        for n_gpus in (2, 3):
            ctx = _SearchContext(model, cm, n_gpus, n_gpus, BW, gpu_memory)
            checked = 0
            for boundaries in itertools.combinations(
                range(1, n_layers), n_gpus * 2 - 1
            ):
                cuts = (0,) + boundaries + (n_layers,)
                stack = _ForwardStack(ctx)
                for start, stop in zip(cuts, cuts[1:]):
                    stack.push(start, stop)
                stage_costs = [
                    ctx.stage_cost(start, stop)
                    for start, stop in zip(cuts, cuts[1:])
                ]
                expected = evaluate_pipeline(
                    stage_costs, n_gpus, n_gpus, BW, gpu_memory
                ).step_seconds
                if expected != float("inf"):
                    assert stack.step_time() == expected
                    checked += 1
                if checked >= 40:
                    break
            assert checked > 0


class TestDeterministicBudgets:
    def test_node_budget_truncates_deterministically(self, model, cm):
        first = mip_partition(model, cm, 2, 2, BW, max_nodes=10)
        second = mip_partition(model, cm, 2, 2, BW, max_nodes=10)
        assert not first.optimal  # budget of 10 cannot finish this search
        assert first.partition.boundaries == second.partition.boundaries
        assert first.nodes_explored == second.nodes_explored == 10

    def test_result_independent_of_time_limit(self, model, cm):
        fast = mip_partition(model, cm, 2, 2, BW, time_limit=1.0)
        slow = mip_partition(model, cm, 2, 2, BW, time_limit=60.0)
        assert fast.partition.boundaries == slow.partition.boundaries
        assert fast.nodes_explored == slow.nodes_explored


class TestPartitionWarmStart:
    def test_warm_start_cannot_change_the_result(self, model, cm):
        cold = mip_partition(model, cm, 2, 2, BW)
        warm = mip_partition(model, cm, 2, 2, BW, warm_start=cold.partition)
        assert warm.warm_started
        assert warm.partition.boundaries == cold.partition.boundaries
        assert warm.timings.step_seconds == cold.timings.step_seconds
        assert warm.nodes_explored <= cold.nodes_explored

    def test_warm_start_accepts_boundary_sequence(self, model, cm):
        cold = mip_partition(model, cm, 2, 2, BW)
        warm = mip_partition(
            model, cm, 2, 2, BW, warm_start=list(cold.partition.boundaries)
        )
        assert warm.partition.boundaries == cold.partition.boundaries

    def test_infeasible_hint_is_ignored(self, model, cm):
        cold = mip_partition(model, cm, 2, 2, BW)
        warm = mip_partition(model, cm, 2, 2, BW, warm_start=(1,))
        assert warm.partition.boundaries == cold.partition.boundaries

    def test_cross_gpu_count_hint_shrinks_search(self):
        # The fault-replan scenario: re-solve for N-1 GPUs warm-started
        # from the N-GPU plan.  Fewer nodes, same canonical answer.
        from repro.models.zoo import gpt2_small

        model = gpt2_small()
        cm = CostModel(RTX_3090TI, model.default_microbatch_size)
        full = mip_partition(model, cm, 4, 4, BW)
        cold = mip_partition(model, cm, 3, 3, BW)
        warm = mip_partition(model, cm, 3, 3, BW, warm_start=full.partition)
        assert warm.warm_started
        assert warm.partition.boundaries == cold.partition.boundaries
        assert warm.nodes_explored < cold.nodes_explored
