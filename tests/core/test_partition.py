"""Tests for the MIP partition algorithm and the §4.3 baselines."""

import pytest

from repro.core.partition import (
    max_stage_partition,
    min_stage_partition,
    mip_partition,
)
from repro.hardware.gpu import RTX_3090TI
from repro.models.costmodel import CostModel
from repro.models.spec import LayerKind, build_gpt_like

BW = 13.1e9


@pytest.fixture
def model():
    return build_gpt_like("m", n_blocks=8, hidden_dim=1024, n_heads=8)


@pytest.fixture
def cm():
    return CostModel(RTX_3090TI, 2)


class TestMipPartition:
    def test_finds_feasible_partition(self, model, cm):
        result = mip_partition(model, cm, 2, 2, BW, time_limit=2.0)
        assert result.timings.feasible
        assert result.partition.n_stages >= 1
        assert result.method == "mip"

    def test_small_instance_solved_to_optimality(self, model, cm):
        result = mip_partition(model, cm, 2, 2, BW, time_limit=30.0)
        assert result.optimal

    def test_beats_or_matches_baselines(self, model, cm):
        mip = mip_partition(model, cm, 2, 2, BW, time_limit=10.0)
        maxs = max_stage_partition(model, cm, 2, 2, BW)
        mins = min_stage_partition(model, cm, 2, 2, BW)
        assert mip.timings.step_seconds <= maxs.timings.step_seconds + 1e-9
        assert mip.timings.step_seconds <= mins.timings.step_seconds + 1e-9

    def test_memory_constrained_search(self, model, cm):
        biggest_layer = max(
            cm.stage_cost(model, i, i + 1).mem_peak(2) for i in range(model.n_layers)
        )
        gpu_memory = int(biggest_layer * 2.5)
        result = mip_partition(model, cm, 2, 2, BW, gpu_memory=gpu_memory, time_limit=5.0)
        for stage in range(result.partition.n_stages):
            start, stop = result.partition.stage_layers(stage)
            assert cm.stage_cost(model, start, stop).mem_peak(2) <= gpu_memory

    def test_impossible_memory_raises(self, model, cm):
        with pytest.raises(ValueError):
            mip_partition(model, cm, 2, 2, BW, gpu_memory=1000, time_limit=1.0)

    def test_deterministic(self, model, cm):
        a = mip_partition(model, cm, 2, 2, BW, time_limit=5.0)
        b = mip_partition(model, cm, 2, 2, BW, time_limit=5.0)
        assert a.partition.boundaries == b.partition.boundaries

    def test_solve_time_recorded(self, model, cm):
        result = mip_partition(model, cm, 2, 2, BW, time_limit=1.0)
        assert 0 < result.solve_seconds < 5.0
        assert result.nodes_explored > 0


class TestMaxStagePartition:
    def test_greedy_packs_to_memory_limit(self, model, cm):
        biggest_layer = max(
            cm.stage_cost(model, i, i + 1).mem_peak(2) for i in range(model.n_layers)
        )
        gpu_memory = int(biggest_layer * 3.2)
        result = max_stage_partition(model, cm, 2, 2, BW, gpu_memory=gpu_memory)
        # Each stage (except possibly the last) cannot absorb its successor's
        # first layer.
        partition = result.partition
        for stage in range(partition.n_stages - 1):
            start, stop = partition.stage_layers(stage)
            grown = cm.stage_cost(model, start, stop + 1)
            assert grown.mem_peak(2) > gpu_memory

    def test_single_layer_too_big_raises(self, model, cm):
        with pytest.raises(ValueError):
            max_stage_partition(model, cm, 2, 2, BW, gpu_memory=1000)

    def test_fewer_stages_than_min_stage(self, model, cm):
        maxs = max_stage_partition(model, cm, 2, 2, BW)
        mins = min_stage_partition(model, cm, 2, 2, BW)
        assert maxs.partition.n_stages <= mins.partition.n_stages


class TestMinStagePartition:
    def test_one_block_per_stage(self, model, cm):
        result = min_stage_partition(model, cm, 2, 2, BW)
        n_blocks = sum(
            1 for l in model.layers if l.kind == LayerKind.TRANSFORMER_BLOCK
        )
        # Embedding merges into the first block's stage; norm+head into the
        # last block's stage.
        assert result.partition.n_stages == n_blocks
        start0, stop0 = result.partition.stage_layers(0)
        assert model.layers[start0].kind == LayerKind.EMBEDDING

    def test_infeasible_min_stage_raises(self, model, cm):
        with pytest.raises(ValueError):
            min_stage_partition(model, cm, 2, 2, BW, gpu_memory=1000)
