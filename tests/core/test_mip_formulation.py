"""Cross-checks: the literal boolean MIP vs the production partitioner."""

import pytest

from repro.core.mip_formulation import build_partition_mip, solve_partition_mip
from repro.core.partition import mip_partition
from repro.core.timing import evaluate_pipeline
from repro.hardware.gpu import RTX_3090TI
from repro.models.costmodel import CostModel
from repro.models.spec import build_gpt_like

BW = 13.1e9


@pytest.fixture
def small_model():
    return build_gpt_like(
        "small", n_blocks=5, hidden_dim=2048, n_heads=16, include_embedding=False
    )


@pytest.fixture
def cm():
    return CostModel(RTX_3090TI, 2)


class TestFormulation:
    def test_objective_matches_production_bnb(self, small_model, cm):
        """The headline validation: literal MIP == boundary B&B optimum."""
        gpu_memory = 4 * 10**9
        bnb = mip_partition(
            small_model, cm, 2, 2, BW, gpu_memory=gpu_memory, time_limit=30.0
        )
        assert bnb.optimal
        milp = solve_partition_mip(
            small_model, cm, 2, 2, BW, gpu_memory=gpu_memory, backend="scipy"
        )
        assert milp.partition is not None
        assert milp.step_seconds == pytest.approx(
            bnb.timings.step_seconds, rel=1e-3
        )

    def test_extracted_partition_evaluates_consistently(self, small_model, cm):
        gpu_memory = 4 * 10**9
        milp = solve_partition_mip(
            small_model, cm, 2, 2, BW, gpu_memory=gpu_memory, backend="scipy"
        )
        costs = cm.stage_costs_for_partition(
            small_model, list(milp.partition.boundaries)
        )
        timings = evaluate_pipeline(costs, 2, 2, BW, gpu_memory)
        assert timings.feasible
        assert timings.step_seconds == pytest.approx(milp.step_seconds, rel=1e-3)

    def test_memory_constraints_respected(self, small_model, cm):
        gpu_memory = 3 * 10**9
        milp = solve_partition_mip(
            small_model, cm, 2, 2, BW, gpu_memory=gpu_memory, backend="scipy"
        )
        for stage in range(milp.partition.n_stages):
            start, stop = milp.partition.stage_layers(stage)
            assert cm.stage_cost(small_model, start, stop).mem_peak(2) <= gpu_memory

    def test_per_stage_solutions_reported(self, small_model, cm):
        milp = solve_partition_mip(
            small_model,
            cm,
            2,
            2,
            BW,
            gpu_memory=4 * 10**9,
            stage_counts=[2, 3, 4],
            backend="scipy",
        )
        assert set(milp.per_stage_solutions) == {2, 3, 4}
        assert min(milp.per_stage_solutions.values()) == pytest.approx(
            milp.step_seconds
        )

    def test_invalid_stage_count_rejected(self, small_model, cm):
        with pytest.raises(ValueError):
            build_partition_mip(small_model, cm, 0, 2, 2, BW, 10**9)

    def test_bnb_backend_on_tiny_instance(self, cm):
        model = build_gpt_like(
            "t", n_blocks=3, hidden_dim=1024, n_heads=8, include_embedding=False
        )
        milp = solve_partition_mip(
            model,
            cm,
            2,
            2,
            BW,
            gpu_memory=2 * 10**9,
            stage_counts=[3],
            backend="bnb",
            time_limit_per_stage=60.0,
        )
        reference = solve_partition_mip(
            model, cm, 2, 2, BW, gpu_memory=2 * 10**9, stage_counts=[3], backend="scipy"
        )
        assert milp.step_seconds == pytest.approx(reference.step_seconds, rel=1e-3)

    def test_unknown_backend_rejected(self, small_model, cm):
        with pytest.raises(ValueError):
            solve_partition_mip(small_model, cm, 2, 2, BW, backend="gurobi")
