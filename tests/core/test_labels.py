"""Tests for the shared task-label contract (repro.core.labels)."""

from __future__ import annotations

import pytest

from repro.core import labels


class TestConstructorsMatchPatterns:
    """Every constructor's output must parse back under its own regex."""

    def test_fwd_upload(self):
        assert labels.UPLOAD_RE.fullmatch(labels.fwd_upload_label(3)).group(1) == "3"
        m = labels.UPLOAD_RE.fullmatch(labels.fwd_upload_label(3, "pre"))
        assert m.group(1, 2) == ("3", "pre")
        m = labels.UPLOAD_RE.fullmatch(labels.fwd_upload_label(12, "rem"))
        assert m.group(1, 2) == ("12", "rem")

    def test_bwd_upload(self):
        for part in ("pre", "rem"):
            for kind in labels.BWD_UPLOAD_KINDS:
                label = labels.bwd_upload_label(7, part, kind)
                m = labels.BWD_UPLOAD_RE.fullmatch(label)
                assert m is not None, label
                assert m.group(1, 2, 3) == ("7", part, kind)

    def test_compute(self):
        for phase in ("F", "B"):
            m = labels.COMPUTE_RE.fullmatch(labels.compute_label(phase, 2, 5))
            assert m.group(1, 2, 3) == (phase, "2", "5")

    def test_activation(self):
        for phase in ("A", "G"):
            m = labels.ACTIVATION_RE.fullmatch(labels.activation_label(phase, 1, 0))
            assert m.group(1, 2, 3) == (phase, "1", "0")

    def test_stash_offload(self):
        m = labels.STASH_OFFLOAD_RE.fullmatch(labels.stash_offload_label(4, 2))
        assert m.group(1, 2) == ("4", "2")

    def test_grad_offload(self):
        m = labels.GRAD_OFFLOAD_RE.fullmatch(labels.grad_offload_label(9))
        assert m.group(1) == "9"


class TestConstructorValidation:
    def test_bad_upload_part_rejected(self):
        with pytest.raises(ValueError):
            labels.fwd_upload_label(0, "partial")

    def test_bad_bwd_kind_rejected(self):
        with pytest.raises(ValueError):
            labels.bwd_upload_label(0, "pre", "weight-upload")

    def test_bad_phase_rejected(self):
        with pytest.raises(ValueError):
            labels.compute_label("X", 0, 0)
        with pytest.raises(ValueError):
            labels.activation_label("F", 0, 0)


class TestIsValidLabel:
    def test_accepts_every_constructor_output(self):
        produced = [
            labels.fwd_upload_label(0),
            labels.fwd_upload_label(1, "pre"),
            labels.bwd_upload_label(2, "rem", "act-upload"),
            labels.compute_label("B", 3, 1),
            labels.activation_label("A", 0, 0),
            labels.stash_offload_label(1, 1),
            labels.grad_offload_label(5),
        ]
        for label in produced:
            assert labels.is_valid_label(label), label

    def test_rejects_ad_hoc_labels(self):
        for label in ("fwd-0", "U1.partial", "F0", "Ub1.pre", "S1,2", ""):
            assert not labels.is_valid_label(label), label

    def test_patterns_are_anchored(self):
        # A drifting suffix must not slip past the contract (the bug class
        # that motivated extracting it from memory_audit).
        assert not labels.is_valid_label("U3.pre.extra")
        assert not labels.is_valid_label("xF0,1")


class TestAuditorUsesSharedContract:
    def test_memory_audit_imports_labels(self):
        import repro.core.memory_audit as audit

        assert audit._UPLOAD_RE is labels.UPLOAD_RE
        assert audit._COMPUTE_RE is labels.COMPUTE_RE
        assert audit._BWD_UPLOAD_RE is labels.BWD_UPLOAD_RE
