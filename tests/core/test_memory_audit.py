"""Tests for the end-to-end GPU memory audit."""

import dataclasses

import pytest

from repro.core.api import MobiusConfig, plan_mobius
from repro.core.memory_audit import audit_mobius_memory
from repro.hardware.gpu import RTX_3090TI
from repro.hardware.topology import commodity_server, topo_2_2
from repro.models.spec import build_gpt_like


@pytest.fixture
def model():
    return build_gpt_like(
        "audit", n_blocks=8, hidden_dim=2048, n_heads=16, default_microbatch_size=2
    )


def plan_for(model, topology, **config):
    report = plan_mobius(
        model, topology, MobiusConfig(partition_time_limit=0.5, **config)
    )
    return report


class TestMemoryAudit:
    def test_roomy_plan_within_capacity(self, model):
        topology = topo_2_2()
        report = plan_for(model, topology)
        audit = audit_mobius_memory(report.plan, topology, report.cost_model)
        assert audit.ok
        assert all(peak > 0 for peak in audit.peak_bytes)

    def test_tight_memory_still_within_capacity(self, model):
        """The real check: with GPU memory barely above a stage's needs, the
        executed schedule must still respect the capacity (Eqs. 4-5)."""
        from repro.models.costmodel import FRAMEWORK_OVERHEAD_BYTES, CostModel

        cm = CostModel(RTX_3090TI, 2)
        biggest = max(
            cm.stage_cost(model, i, i + 1).mem_peak(4) for i in range(model.n_layers)
        )
        # A GPU whose usable memory is only ~2.2x the biggest single-layer
        # stage: the plan has to run close to capacity.
        tight_gpu = dataclasses.replace(
            RTX_3090TI, memory_bytes=int(biggest * 2.2) + FRAMEWORK_OVERHEAD_BYTES
        )
        topology = commodity_server([2, 2], tight_gpu)
        report = plan_for(model, topology)
        audit = audit_mobius_memory(report.plan, topology, report.cost_model)
        assert audit.ok, [p / 1e9 for p in audit.peak_bytes]
        # Tight plans actually use a large fraction of the memory.
        assert max(audit.peak_bytes) > 0.4 * audit.capacity_bytes

    def test_no_prefetch_uses_no_more_memory(self, model):
        topology = topo_2_2()
        report = plan_for(model, topology)
        with_pf = audit_mobius_memory(report.plan, topology, report.cost_model)
        without = audit_mobius_memory(
            report.plan, topology, report.cost_model, prefetch=False
        )
        assert max(without.peak_bytes) <= max(with_pf.peak_bytes) + 1

    def test_timeline_returns_to_near_zero(self, model):
        """After the step, only float dust remains resident."""
        topology = topo_2_2()
        report = plan_for(model, topology)
        audit = audit_mobius_memory(report.plan, topology, report.cost_model)
        for timeline in audit.timelines:
            assert abs(timeline[-1][1]) < 1024  # integer rounding dust

    def test_headroom_reported(self, model):
        topology = topo_2_2()
        report = plan_for(model, topology)
        audit = audit_mobius_memory(report.plan, topology, report.cost_model)
        for gpu in range(topology.n_gpus):
            assert audit.headroom_bytes(gpu) == audit.capacity_bytes - audit.peak_bytes[gpu]
