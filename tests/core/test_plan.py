"""Tests for partitions, mappings and execution plans."""

import pytest

from repro.core.plan import ExecutionPlan, Mapping, Partition
from repro.models.spec import build_gpt_like


@pytest.fixture
def model():
    return build_gpt_like("m", n_blocks=6, hidden_dim=256, n_heads=4)


class TestPartition:
    def test_stage_ranges(self, model):
        partition = Partition(model, (2, 5))
        assert partition.n_stages == 3
        assert partition.stage_layers(0) == (0, 2)
        assert partition.stage_layers(1) == (2, 5)
        assert partition.stage_layers(2) == (5, model.n_layers)

    def test_no_boundaries_single_stage(self, model):
        partition = Partition(model, ())
        assert partition.n_stages == 1
        assert partition.stage_layers(0) == (0, model.n_layers)

    def test_invalid_boundaries(self, model):
        with pytest.raises(ValueError):
            Partition(model, (3, 3))
        with pytest.raises(ValueError):
            Partition(model, (5, 2))
        with pytest.raises(ValueError):
            Partition(model, (0,))
        with pytest.raises(ValueError):
            Partition(model, (model.n_layers,))

    def test_stage_index_validated(self, model):
        partition = Partition(model, (4,))
        with pytest.raises(ValueError):
            partition.stage_layers(2)

    def test_uniform_covers_all_layers(self, model):
        for n_stages in range(1, model.n_layers + 1):
            partition = Partition.uniform(model, n_stages)
            assert partition.n_stages == n_stages
            cuts = partition.cuts
            assert cuts[0] == 0 and cuts[-1] == model.n_layers

    def test_uniform_balanced_sizes(self, model):
        partition = Partition.uniform(model, 3)
        sizes = [b - a for a, b in zip(partition.cuts, partition.cuts[1:])]
        assert max(sizes) - min(sizes) <= 1

    def test_uniform_invalid_count(self, model):
        with pytest.raises(ValueError):
            Partition.uniform(model, 0)
        with pytest.raises(ValueError):
            Partition.uniform(model, model.n_layers + 1)


class TestMapping:
    def test_residue_assignment(self):
        mapping = Mapping((2, 0, 1))
        assert [mapping.gpu_of_stage(j) for j in range(6)] == [2, 0, 1, 2, 0, 1]

    def test_sequential(self):
        mapping = Mapping.sequential(4)
        assert mapping.perm == (0, 1, 2, 3)
        assert mapping.gpu_of_stage(5) == 1

    def test_invalid_permutations(self):
        with pytest.raises(ValueError):
            Mapping((0, 0, 1))
        with pytest.raises(ValueError):
            Mapping((1, 2, 3))

    def test_negative_stage_rejected(self):
        with pytest.raises(ValueError):
            Mapping.sequential(2).gpu_of_stage(-1)


class TestExecutionPlan:
    def make_plan(self, model, n_stages=4, n_gpus=2):
        partition = Partition.uniform(model, n_stages)
        return ExecutionPlan(
            partition=partition,
            mapping=Mapping.sequential(n_gpus),
            n_microbatches=n_gpus,
            microbatch_size=1,
            prefetch_fwd_bytes=(0,) * n_stages,
            prefetch_bwd_bytes=(0,) * n_stages,
        )

    def test_stages_of_gpu(self, model):
        plan = self.make_plan(model)
        assert plan.stages_of_gpu(0) == [0, 2]
        assert plan.stages_of_gpu(1) == [1, 3]

    def test_prefetch_length_validated(self, model):
        partition = Partition.uniform(model, 4)
        with pytest.raises(ValueError):
            ExecutionPlan(
                partition=partition,
                mapping=Mapping.sequential(2),
                n_microbatches=2,
                microbatch_size=1,
                prefetch_fwd_bytes=(0,),
                prefetch_bwd_bytes=(0,) * 4,
            )

    def test_positive_counts_validated(self, model):
        partition = Partition.uniform(model, 2)
        with pytest.raises(ValueError):
            ExecutionPlan(
                partition=partition,
                mapping=Mapping.sequential(2),
                n_microbatches=0,
                microbatch_size=1,
                prefetch_fwd_bytes=(0, 0),
                prefetch_bwd_bytes=(0, 0),
            )

    def test_describe_mentions_stages(self, model):
        plan = self.make_plan(model)
        text = plan.describe()
        assert "stage 0" in text and "stage 3" in text
