"""Tests for the Mobius pipeline emitter and simulator integration."""

import pytest

from repro.core.api import MobiusConfig, plan_mobius, run_mobius
from repro.core.pipeline import simulate_mobius
from repro.hardware.topology import topo_2_2
from repro.models.spec import FP16_BYTES


@pytest.fixture
def plan_report(tiny_model, topo22):
    return plan_mobius(tiny_model, topo22, MobiusConfig(partition_time_limit=1.0))


class TestSimulation:
    def test_step_completes(self, plan_report, tiny_model, topo22):
        run = simulate_mobius(plan_report.plan, topo22, plan_report.cost_model)
        assert run.step_seconds > 0

    def test_estimate_within_factor_of_simulation(self, plan_report, topo22):
        run = simulate_mobius(plan_report.plan, topo22, plan_report.cost_model)
        estimate = plan_report.plan.estimated_step_seconds
        assert estimate <= run.step_seconds * 1.5
        assert run.step_seconds <= estimate * 3.0

    def test_compute_totals_match_cost_model(self, plan_report, topo22, tiny_model):
        run = simulate_mobius(plan_report.plan, topo22, plan_report.cost_model)
        plan = plan_report.plan
        costs = plan.partition.stage_costs(plan_report.cost_model)
        expected = sum(
            (c.fwd_seconds + c.bwd_seconds) * plan.n_microbatches for c in costs
        )
        assert run.trace.compute_seconds() == pytest.approx(expected, rel=1e-6)

    def test_param_upload_traffic_near_2x(self, plan_report, topo22, tiny_model):
        """Eq. 1: parameters transferred ~2x FP16 size (minus resident tail)."""
        run = simulate_mobius(plan_report.plan, topo22, plan_report.cost_model)
        uploads = run.trace.total_transfer_bytes(["param-upload"])
        fp16 = tiny_model.param_bytes(FP16_BYTES)
        assert uploads <= 2 * fp16 + 1
        assert uploads >= 1.0 * fp16  # at least the forward sweep

    def test_grad_offload_traffic_is_1x(self, plan_report, topo22, tiny_model):
        run = simulate_mobius(plan_report.plan, topo22, plan_report.cost_model)
        grads = run.trace.total_transfer_bytes(["grad-offload"])
        assert grads == pytest.approx(tiny_model.param_bytes(FP16_BYTES))

    def test_total_traffic_below_deepspeed(self, plan_report, topo22, tiny_model):
        """Mobius traffic is ~1.5x model FP32 bytes, far below ~1.5Nx."""
        run = simulate_mobius(plan_report.plan, topo22, plan_report.cost_model)
        total = run.trace.total_transfer_bytes()
        model_fp32 = tiny_model.param_bytes(4)
        assert total < 2.5 * model_fp32

    def test_prefetch_disabled_is_slower_or_equal(self, plan_report, topo22):
        with_prefetch = simulate_mobius(
            plan_report.plan, topo22, plan_report.cost_model, prefetch=True
        )
        without = simulate_mobius(
            plan_report.plan, topo22, plan_report.cost_model, prefetch=False
        )
        assert without.step_seconds >= with_prefetch.step_seconds - 1e-9

    def test_every_gpu_computes(self, plan_report, topo22):
        run = simulate_mobius(plan_report.plan, topo22, plan_report.cost_model)
        for gpu in range(topo22.n_gpus):
            assert run.trace.compute_seconds(gpu) > 0

    def test_stage_cost_count_must_match(self, plan_report, topo22):
        from repro.core.pipeline import build_mobius_tasks

        costs = plan_report.plan.partition.stage_costs(plan_report.cost_model)
        with pytest.raises(ValueError):
            build_mobius_tasks(plan_report.plan, topo22, costs[:-1])


class TestEndToEndApi:
    def test_run_mobius_defaults(self, tiny_model, topo22):
        report = run_mobius(tiny_model, topo22, MobiusConfig(partition_time_limit=1.0))
        assert report.step_seconds > 0
        assert report.plan_report.plan.n_microbatches == topo22.n_gpus

    def test_unknown_partition_method(self, tiny_model, topo22):
        with pytest.raises(ValueError):
            plan_mobius(
                tiny_model, topo22, MobiusConfig(partition_method="magic")
            )

    def test_unknown_mapping_method(self, tiny_model, topo22):
        with pytest.raises(ValueError):
            plan_mobius(tiny_model, topo22, MobiusConfig(mapping_method="magic"))

    def test_partition_method_baselines(self, tiny_model, topo22):
        for method in ("max-stage", "min-stage"):
            report = run_mobius(
                tiny_model,
                topo22,
                MobiusConfig(partition_method=method, partition_time_limit=1.0),
            )
            assert report.step_seconds > 0

    def test_sequential_mapping_config(self, tiny_model, topo22):
        report = run_mobius(
            tiny_model,
            topo22,
            MobiusConfig(mapping_method="sequential", partition_time_limit=1.0),
        )
        assert report.plan_report.plan.mapping.perm == (0, 1, 2, 3)

    def test_overheads_populated(self, plan_report):
        assert plan_report.profiling_seconds > 0
        assert plan_report.mip_solve_seconds > 0
        assert plan_report.mapping_seconds > 0
