"""Tests for the analytic pipeline-timing recurrence (Eqs. 4-11)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timing import evaluate_pipeline, prefetch_budgets
from repro.hardware.gpu import RTX_3090TI
from repro.models.costmodel import CostModel
from repro.models.spec import build_gpt_like

BW = 13.1e9
BIG_MEMORY = 1 << 62


@pytest.fixture
def stage_costs():
    model = build_gpt_like("m", n_blocks=8, hidden_dim=512, n_heads=8)
    cm = CostModel(RTX_3090TI, 2)
    return cm.stage_costs_for_partition(model, [3, 5, 8])


class TestBasicProperties:
    def test_gpipe_case_matches_hand_computation(self):
        """With S == N, huge memory and no uploads, the recurrence is plain
        GPipe; verify against the closed form for equal stages."""
        model = build_gpt_like("m", n_blocks=8, hidden_dim=512, n_heads=8, include_embedding=False)
        cm = CostModel(RTX_3090TI, 1)
        costs = cm.stage_costs_for_partition(model, [3, 5, 8])[0:1] * 1
        # Use 4 identical single-block stages instead.
        costs = [cm.stage_cost(model, i, i + 1) for i in range(4)]
        m = 4
        timings = evaluate_pipeline(
            costs, 4, m, BW, BIG_MEMORY, include_initial_upload=False
        )
        tf = costs[0].fwd_seconds
        tb = costs[0].bwd_seconds
        act = costs[0].output_activation_bytes / BW
        # Forward of last stage, last microbatch: (S-1) pipeline fills +
        # M serial microbatches.
        expected_fwd_end = 3 * (tf + act) + m * tf
        assert timings.t_fwd[3][m - 1] + tf == pytest.approx(expected_fwd_end)
        # Backward mirrors forward.
        expected_step = expected_fwd_end + 3 * (tb + act) + m * tb
        assert timings.step_seconds == pytest.approx(expected_step)

    def test_step_is_positive_and_finite(self, stage_costs):
        timings = evaluate_pipeline(stage_costs, 2, 2, BW, BIG_MEMORY)
        assert timings.feasible
        assert 0 < timings.step_seconds < math.inf

    def test_infeasible_when_stage_exceeds_memory(self, stage_costs):
        tiny = stage_costs[0].mem_bwd(2) // 2
        timings = evaluate_pipeline(stage_costs, 2, 2, BW, tiny)
        assert not timings.feasible
        assert timings.step_seconds == math.inf
        assert "exceeds" in timings.infeasible_reason

    def test_empty_stage_list(self):
        timings = evaluate_pipeline([], 2, 2, BW, BIG_MEMORY)
        assert not timings.feasible

    def test_invalid_parameters_rejected(self, stage_costs):
        with pytest.raises(ValueError):
            evaluate_pipeline(stage_costs, 0, 2, BW, BIG_MEMORY)
        with pytest.raises(ValueError):
            evaluate_pipeline(stage_costs, 2, 2, -1.0, BIG_MEMORY)

    def test_more_bandwidth_never_slower(self, stage_costs):
        slow = evaluate_pipeline(stage_costs, 2, 2, BW / 4, BIG_MEMORY)
        fast = evaluate_pipeline(stage_costs, 2, 2, BW, BIG_MEMORY)
        assert fast.step_seconds <= slow.step_seconds + 1e-12

    def test_initial_upload_toggle(self, stage_costs):
        with_upload = evaluate_pipeline(stage_costs, 2, 2, BW, BIG_MEMORY)
        without = evaluate_pipeline(
            stage_costs, 2, 2, BW, BIG_MEMORY, include_initial_upload=False
        )
        assert without.step_seconds <= with_upload.step_seconds

    def test_forward_starts_are_monotone(self, stage_costs):
        timings = evaluate_pipeline(stage_costs, 2, 2, BW, BIG_MEMORY)
        for row in timings.t_fwd:
            assert all(a <= b for a, b in zip(row, row[1:]))
        firsts = [row[0] for row in timings.t_fwd]
        assert all(a <= b for a, b in zip(firsts, firsts[1:]))

    def test_backward_after_forward(self, stage_costs):
        timings = evaluate_pipeline(stage_costs, 2, 2, BW, BIG_MEMORY)
        last = len(stage_costs) - 1
        fwd_end = timings.t_fwd[last][-1] + stage_costs[last].fwd_seconds
        assert timings.t_bwd[last][0] >= fwd_end - 1e-12


class TestPrefetchBudgets:
    def test_first_stages_fully_prefetched(self, stage_costs):
        fwd, _ = prefetch_budgets(stage_costs, 2, 2, BIG_MEMORY)
        assert fwd[0] == stage_costs[0].param_bytes
        assert fwd[1] == stage_costs[1].param_bytes

    def test_budget_bounded_by_free_memory(self, stage_costs):
        gpu_memory = stage_costs[0].mem_fwd(2) + 1000
        fwd, _ = prefetch_budgets(stage_costs, 2, 2, gpu_memory)
        assert fwd[2] <= 1000

    def test_budget_never_negative(self, stage_costs):
        gpu_memory = stage_costs[0].mem_fwd(2)  # exactly full
        fwd, bwd = prefetch_budgets(stage_costs, 2, 2, gpu_memory)
        assert all(b >= 0 for b in fwd + bwd)

    def test_resident_tail_has_no_bwd_budget(self, stage_costs):
        _, bwd = prefetch_budgets(stage_costs, 2, 2, BIG_MEMORY)
        # Top N stages (here the last two of three) stay resident.
        assert bwd[-1] == 0 and bwd[-2] == 0

    def test_zero_memory_headroom_forces_sync_upload(self, stage_costs):
        gpu_memory = max(c.mem_peak(2) for c in stage_costs)
        timings_lo = evaluate_pipeline(stage_costs, 2, 2, BW, gpu_memory)
        timings_hi = evaluate_pipeline(stage_costs, 2, 2, BW, BIG_MEMORY)
        assert timings_hi.step_seconds <= timings_lo.step_seconds + 1e-12


@settings(max_examples=20, deadline=None)
@given(
    n_gpus=st.integers(min_value=1, max_value=4),
    n_microbatches=st.integers(min_value=1, max_value=6),
)
def test_step_lower_bounded_by_compute(n_gpus, n_microbatches):
    """Property: step time >= per-GPU compute and >= critical path of the
    last microbatch."""
    model = build_gpt_like("m", n_blocks=6, hidden_dim=256, n_heads=4)
    cm = CostModel(RTX_3090TI, 1)
    costs = [cm.stage_cost(model, i, i + 1) for i in range(model.n_layers)]
    timings = evaluate_pipeline(costs, n_gpus, n_microbatches, BW, BIG_MEMORY)
    assert timings.feasible
    total = sum((c.fwd_seconds + c.bwd_seconds) * n_microbatches for c in costs)
    assert timings.step_seconds >= total / n_gpus - 1e-12
    critical = sum(c.fwd_seconds + c.bwd_seconds for c in costs)
    assert timings.step_seconds >= critical - 1e-12
