"""The warm-start hint registry's synchronization seam (MOB007 fix).

The seam must be invisible: hints only seed the B&B incumbent, so a plan
computed through a populated registry is byte-identical to a cold one.
"""

import threading

import pytest

from repro.core import api
from repro.core.api import (
    MobiusConfig,
    _get_partition_hint,
    _put_partition_hint,
    plan_mobius,
    set_partition_hint_capacity,
    set_partition_hint_store,
)
from repro.hardware.topology import commodity_server
from repro.models.spec import build_gpt_like
from repro.perf.cache import cache_overridden
from repro.perf.fingerprint import fingerprint
from repro.solver.warmstart import WarmStartContext


def _small_model():
    return build_gpt_like(
        "hint-test-1024x6",
        n_blocks=6,
        hidden_dim=1024,
        n_heads=8,
        default_microbatch_size=1,
    )


class TestSeam:
    def test_round_trip(self):
        key = ("seam-test", 6, "gpu", 1)
        assert _get_partition_hint(key) is None
        hint = WarmStartContext(boundaries=(2, 4), label="test")
        _put_partition_hint(key, hint)
        try:
            assert _get_partition_hint(key) is hint
        finally:
            api._PARTITION_HINTS.pop(key, None)

    def test_concurrent_writers_do_not_corrupt_the_registry(self):
        keys = [("seam-race", i, "gpu", 1) for i in range(32)]
        hint = WarmStartContext(boundaries=(1,), label="race")

        def write(key):
            for _ in range(50):
                _put_partition_hint(key, hint)
                assert _get_partition_hint(key) is hint

        threads = [threading.Thread(target=write, args=(k,)) for k in keys]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            for key in keys:
                assert _get_partition_hint(key) is hint
        finally:
            for key in keys:
                api._PARTITION_HINTS.pop(key, None)


class TestBoundedLru:
    """The registry is a bounded LRU: a daemon cannot leak hints unbounded."""

    HINT = WarmStartContext(boundaries=(1,), label="lru")

    def _keys(self, n):
        return [("lru-test", i, "gpu", 1) for i in range(n)]

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            set_partition_hint_capacity(0)

    def test_capacity_bounds_the_registry(self):
        keys = self._keys(5)
        set_partition_hint_capacity(3)
        try:
            for key in keys:
                _put_partition_hint(key, self.HINT)
            assert len(api._PARTITION_HINTS) == 3
            # Oldest publishes evicted, newest retained.
            assert _get_partition_hint(keys[0]) is None
            assert _get_partition_hint(keys[4]) is self.HINT
        finally:
            for key in keys:
                api._PARTITION_HINTS.pop(key, None)
            set_partition_hint_capacity(64)

    def test_hit_refreshes_recency(self):
        keys = self._keys(4)
        set_partition_hint_capacity(3)
        try:
            for key in keys[:3]:
                _put_partition_hint(key, self.HINT)
            assert _get_partition_hint(keys[0]) is self.HINT  # refresh
            _put_partition_hint(keys[3], self.HINT)  # evicts keys[1], not [0]
            assert _get_partition_hint(keys[0]) is self.HINT
            assert _get_partition_hint(keys[1]) is None
        finally:
            for key in keys:
                api._PARTITION_HINTS.pop(key, None)
            set_partition_hint_capacity(64)

    def test_shrinking_evicts_immediately(self):
        keys = self._keys(3)
        set_partition_hint_capacity(8)
        try:
            for key in keys:
                _put_partition_hint(key, self.HINT)
            set_partition_hint_capacity(1)
            assert len(api._PARTITION_HINTS) == 1
            assert _get_partition_hint(keys[2]) is self.HINT
        finally:
            for key in keys:
                api._PARTITION_HINTS.pop(key, None)
            set_partition_hint_capacity(64)

    def test_eviction_never_changes_the_plan(self):
        """The satellite guarantee: losing a hint costs warm-start work only."""
        model = _small_model()
        topology = commodity_server([2, 2])
        config = MobiusConfig(partition_time_limit=0.5)
        hint_key = (
            model.name,
            model.n_layers,
            topology.gpu_spec.name,
            model.default_microbatch_size,
        )
        evictor = ("lru-evictor", 0, "gpu", 1)
        try:
            with cache_overridden():
                cold = plan_mobius(model, topology, config)
            assert _get_partition_hint(hint_key) is not None
            set_partition_hint_capacity(1)
            _put_partition_hint(evictor, self.HINT)
            assert _get_partition_hint(hint_key) is None  # evicted
            with cache_overridden():
                after_eviction = plan_mobius(model, topology, config)
            assert fingerprint(after_eviction.plan) == fingerprint(cold.plan)
        finally:
            api._PARTITION_HINTS.pop(hint_key, None)
            api._PARTITION_HINTS.pop(evictor, None)
            set_partition_hint_capacity(64)


class _FakeHintStore:
    def __init__(self, broken: bool = False) -> None:
        self.data: dict = {}
        self.puts = 0
        self.broken = broken

    def get_hint(self, key):
        if self.broken:
            raise RuntimeError("durable tier down")
        return self.data.get(key)

    def put_hint(self, key, hint):
        if self.broken:
            raise RuntimeError("durable tier down")
        self.data[key] = hint
        self.puts += 1


class TestDurableFallThrough:
    """The serve daemon's durable hint tier behind the same seam."""

    HINT = WarmStartContext(boundaries=(2, 4), label="durable")

    def test_install_returns_previous(self):
        store = _FakeHintStore()
        assert set_partition_hint_store(store) is None
        try:
            assert set_partition_hint_store(None) is store
        finally:
            set_partition_hint_store(None)

    def test_miss_falls_through_and_promotes(self):
        key = ("durable-test", 1, "gpu", 1)
        store = _FakeHintStore()
        store.data[key] = self.HINT
        set_partition_hint_store(store)
        try:
            assert _get_partition_hint(key) is self.HINT
            # Promoted into the registry: a second read needs no store.
            set_partition_hint_store(None)
            assert _get_partition_hint(key) is self.HINT
        finally:
            set_partition_hint_store(None)
            api._PARTITION_HINTS.pop(key, None)

    def test_publish_writes_through(self):
        key = ("durable-test", 2, "gpu", 1)
        store = _FakeHintStore()
        set_partition_hint_store(store)
        try:
            _put_partition_hint(key, self.HINT)
            assert store.data[key] is self.HINT and store.puts == 1
        finally:
            set_partition_hint_store(None)
            api._PARTITION_HINTS.pop(key, None)

    def test_broken_store_degrades_to_cold(self):
        key = ("durable-test", 3, "gpu", 1)
        set_partition_hint_store(_FakeHintStore(broken=True))
        try:
            assert _get_partition_hint(key) is None  # no raise
            _put_partition_hint(key, self.HINT)  # no raise
            assert _get_partition_hint(key) is self.HINT  # registry still works
        finally:
            set_partition_hint_store(None)
            api._PARTITION_HINTS.pop(key, None)


class TestPlanIdentity:
    def test_warm_hint_cannot_change_the_plan(self):
        """Regression for the seam refactor: warm == cold, fingerprint-exact."""
        model = _small_model()
        topology = commodity_server([2, 2])
        config = MobiusConfig(partition_time_limit=0.5)
        hint_key = (
            model.name,
            model.n_layers,
            topology.gpu_spec.name,
            model.default_microbatch_size,
        )
        api._PARTITION_HINTS.pop(hint_key, None)
        try:
            cold = plan_mobius(model, topology, config)
            # plan_mobius published a hint for this key through the seam.
            assert _get_partition_hint(hint_key) is not None
            warm = plan_mobius(model, topology, config)
            assert fingerprint(warm.plan) == fingerprint(cold.plan)
        finally:
            api._PARTITION_HINTS.pop(hint_key, None)
