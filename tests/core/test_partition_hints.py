"""The warm-start hint registry's synchronization seam (MOB007 fix).

The seam must be invisible: hints only seed the B&B incumbent, so a plan
computed through a populated registry is byte-identical to a cold one.
"""

import threading

from repro.core import api
from repro.core.api import (
    MobiusConfig,
    _get_partition_hint,
    _put_partition_hint,
    plan_mobius,
)
from repro.hardware.topology import commodity_server
from repro.models.spec import build_gpt_like
from repro.perf.fingerprint import fingerprint
from repro.solver.warmstart import WarmStartContext


def _small_model():
    return build_gpt_like(
        "hint-test-1024x6",
        n_blocks=6,
        hidden_dim=1024,
        n_heads=8,
        default_microbatch_size=1,
    )


class TestSeam:
    def test_round_trip(self):
        key = ("seam-test", 6, "gpu", 1)
        assert _get_partition_hint(key) is None
        hint = WarmStartContext(boundaries=(2, 4), label="test")
        _put_partition_hint(key, hint)
        try:
            assert _get_partition_hint(key) is hint
        finally:
            api._PARTITION_HINTS.pop(key, None)

    def test_concurrent_writers_do_not_corrupt_the_registry(self):
        keys = [("seam-race", i, "gpu", 1) for i in range(32)]
        hint = WarmStartContext(boundaries=(1,), label="race")

        def write(key):
            for _ in range(50):
                _put_partition_hint(key, hint)
                assert _get_partition_hint(key) is hint

        threads = [threading.Thread(target=write, args=(k,)) for k in keys]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            for key in keys:
                assert _get_partition_hint(key) is hint
        finally:
            for key in keys:
                api._PARTITION_HINTS.pop(key, None)


class TestPlanIdentity:
    def test_warm_hint_cannot_change_the_plan(self):
        """Regression for the seam refactor: warm == cold, fingerprint-exact."""
        model = _small_model()
        topology = commodity_server([2, 2])
        config = MobiusConfig(partition_time_limit=0.5)
        hint_key = (
            model.name,
            model.n_layers,
            topology.gpu_spec.name,
            model.default_microbatch_size,
        )
        api._PARTITION_HINTS.pop(hint_key, None)
        try:
            cold = plan_mobius(model, topology, config)
            # plan_mobius published a hint for this key through the seam.
            assert _get_partition_hint(hint_key) is not None
            warm = plan_mobius(model, topology, config)
            assert fingerprint(warm.plan) == fingerprint(cold.plan)
        finally:
            api._PARTITION_HINTS.pop(hint_key, None)
