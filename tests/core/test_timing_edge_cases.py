"""Edge-case coverage for the pipeline-timing recurrence."""

import pytest

from repro.core.timing import evaluate_pipeline
from repro.hardware.gpu import RTX_3090TI
from repro.models.costmodel import CostModel
from repro.models.spec import build_gpt_like

BW = 13.1e9
BIG = 1 << 62


@pytest.fixture
def cm():
    return CostModel(RTX_3090TI, 1)


@pytest.fixture
def model():
    return build_gpt_like("edge", n_blocks=6, hidden_dim=256, n_heads=4)


class TestEdgeCases:
    def test_single_stage(self, model, cm):
        costs = [cm.stage_cost(model, 0, model.n_layers)]
        timings = evaluate_pipeline(costs, 1, 1, BW, BIG)
        assert timings.feasible
        expected = (
            costs[0].param_bytes / BW + costs[0].fwd_seconds + costs[0].bwd_seconds
        )
        assert timings.step_seconds == pytest.approx(expected)

    def test_single_microbatch(self, model, cm):
        costs = cm.stage_costs_for_partition(model, [3, 5])
        timings = evaluate_pipeline(costs, 3, 1, BW, BIG)
        assert timings.feasible
        # With one microbatch there is no pipelining: step >= serial chain.
        serial = sum(c.fwd_seconds + c.bwd_seconds for c in costs)
        assert timings.step_seconds >= serial

    def test_more_gpus_than_stages(self, model, cm):
        costs = cm.stage_costs_for_partition(model, [4])
        timings = evaluate_pipeline(costs, 4, 4, BW, BIG)
        assert timings.feasible
        assert timings.step_seconds > 0

    def test_many_microbatches_amortise_fill(self, model, cm):
        costs = cm.stage_costs_for_partition(model, [3, 5])
        few = evaluate_pipeline(costs, 3, 2, BW, BIG)
        many = evaluate_pipeline(costs, 3, 16, BW, BIG)
        # Per-microbatch time shrinks as the fill amortises.
        assert many.step_seconds / 16 < few.step_seconds / 2

    def test_prefetch_tables_match_stage_count(self, model, cm):
        costs = cm.stage_costs_for_partition(model, [2, 4, 6])
        timings = evaluate_pipeline(costs, 2, 2, BW, BIG)
        assert len(timings.prefetch_fwd_bytes) == 4
        assert len(timings.prefetch_bwd_bytes) == 4

    def test_zero_bandwidth_rejected(self, model, cm):
        costs = cm.stage_costs_for_partition(model, [4])
        with pytest.raises(ValueError):
            evaluate_pipeline(costs, 2, 2, 0.0, BIG)

    def test_per_stage_tables_shapes(self, model, cm):
        costs = cm.stage_costs_for_partition(model, [3, 5])
        timings = evaluate_pipeline(costs, 3, 5, BW, BIG)
        assert len(timings.t_fwd) == 3
        assert all(len(row) == 5 for row in timings.t_fwd)
        assert len(timings.t_bwd) == 3
