"""Tests for the ZeRO-Offload baseline (§5 related work)."""

import pytest

from repro.baselines.gpipe import OutOfMemoryError, run_gpipe
from repro.baselines.zero_offload import run_zero_offload
from repro.hardware.topology import topo_2_2
from repro.models.spec import FP16_BYTES
from repro.models.zoo import gpt_3b, gpt_8b, gpt_15b


class TestMemoryBoundary:
    def test_3b_fits(self):
        report = run_zero_offload(gpt_3b(), topo_2_2(), microbatch_size=1)
        assert report.step_seconds > 0

    def test_8b_oom(self):
        """§5: model scale limited by a *single* GPU (8B replica = 32 GB)."""
        with pytest.raises(OutOfMemoryError, match="replica"):
            run_zero_offload(gpt_8b(), topo_2_2(), microbatch_size=1)

    def test_15b_oom(self):
        with pytest.raises(OutOfMemoryError):
            run_zero_offload(gpt_15b(), topo_2_2(), microbatch_size=1)


class TestBehaviour:
    def test_less_traffic_than_zero3(self, tiny_model):
        """ZeRO-Offload's whole point: no parameter gathers, only grads."""
        from repro.baselines.deepspeed import DeepSpeedConfig, run_deepspeed

        topology = topo_2_2()
        offload = run_zero_offload(tiny_model, topology, microbatch_size=1)
        zero3 = run_deepspeed(
            tiny_model, topology, DeepSpeedConfig(microbatch_size=1)
        )
        assert offload.trace.total_transfer_bytes() < 0.5 * zero3.trace.total_transfer_bytes()

    def test_gradient_traffic_accounting(self, tiny_model, topo22):
        report = run_zero_offload(tiny_model, topo22, microbatch_size=1)
        fp16 = tiny_model.param_bytes(FP16_BYTES)
        n = topo22.n_gpus
        # Ring hops: N*(N-1) shards of P/N; offload: N shards of P/N.
        expected = fp16 * (n - 1) + fp16
        assert report.trace.total_transfer_bytes() == pytest.approx(expected, rel=1e-6)

    def test_compute_matches_data_parallel(self, tiny_model, topo22):
        report = run_zero_offload(tiny_model, topo22, microbatch_size=1)
        from repro.models.costmodel import CostModel
        from repro.hardware.gpu import RTX_3090TI

        cm = CostModel(RTX_3090TI, 1)
        per_gpu = sum(
            cm.layer_cost(l).fwd_seconds + cm.layer_cost(l).bwd_seconds
            for l in tiny_model.layers
        )
        assert report.trace.compute_seconds(0) == pytest.approx(per_gpu, rel=1e-9)

    def test_faster_than_zero3_on_fitting_models(self, tiny_model, topo22):
        from repro.baselines.deepspeed import DeepSpeedConfig, run_deepspeed

        offload = run_zero_offload(tiny_model, topo22, microbatch_size=1)
        zero3 = run_deepspeed(tiny_model, topo22, DeepSpeedConfig(microbatch_size=1))
        assert offload.step_seconds < zero3.step_seconds
