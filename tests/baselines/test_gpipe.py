"""Tests for the GPipe and DeepSpeed-pipeline (1F1B) baselines."""

import pytest

from repro.baselines.gpipe import (
    OutOfMemoryError,
    run_deepspeed_pipeline,
    run_gpipe,
)
from repro.hardware.topology import topo_2_2
from repro.models.zoo import gpt_3b, gpt_8b


class TestMemoryBehaviour:
    def test_3b_fits_on_4_gpus(self):
        report = run_gpipe(gpt_3b(), topo_2_2(), microbatch_size=1)
        assert report.step_seconds > 0

    def test_8b_oom_on_4_gpus(self):
        """Figure 5: the 3B model is the largest GPipe can train."""
        with pytest.raises(OutOfMemoryError):
            run_gpipe(gpt_8b(), topo_2_2(), microbatch_size=1)

    def test_ds_pipeline_8b_oom(self):
        with pytest.raises(OutOfMemoryError):
            run_deepspeed_pipeline(gpt_8b(), topo_2_2(), microbatch_size=1)

    def test_oom_message_names_model(self):
        with pytest.raises(OutOfMemoryError, match="GPT-8B"):
            run_gpipe(gpt_8b(), topo_2_2(), microbatch_size=1)


class TestSchedules:
    def test_one_stage_per_gpu(self, tiny_model, topo22):
        report = run_gpipe(tiny_model, topo22, microbatch_size=1)
        assert report.partition.n_stages == topo22.n_gpus

    def test_no_parameter_traffic(self, tiny_model, topo22):
        """GPipe keeps everything resident: only activations move."""
        report = run_gpipe(tiny_model, topo22, microbatch_size=1)
        kinds = {t.kind for t in report.trace.transfers}
        assert kinds <= {"activation"}

    def test_1f1b_matches_gpipe_compute(self, tiny_model, topo22):
        gpipe = run_gpipe(tiny_model, topo22, microbatch_size=1)
        onefb = run_deepspeed_pipeline(tiny_model, topo22, microbatch_size=1)
        assert gpipe.trace.compute_seconds() == pytest.approx(
            onefb.trace.compute_seconds(), rel=1e-9
        )

    def test_1f1b_not_slower_than_gpipe(self, tiny_model, topo22):
        gpipe = run_gpipe(tiny_model, topo22, microbatch_size=1)
        onefb = run_deepspeed_pipeline(tiny_model, topo22, microbatch_size=1)
        assert onefb.step_seconds <= gpipe.step_seconds * 1.05

    def test_activation_traffic_scales_with_microbatches(self, tiny_model, topo22):
        few = run_gpipe(tiny_model, topo22, microbatch_size=1, n_microbatches=2)
        many = run_gpipe(tiny_model, topo22, microbatch_size=1, n_microbatches=4)
        assert many.trace.total_transfer_bytes() == pytest.approx(
            2 * few.trace.total_transfer_bytes(), rel=1e-6
        )

    def test_step_exceeds_critical_path(self, tiny_model, topo22):
        report = run_gpipe(tiny_model, topo22, microbatch_size=1)
        per_gpu = max(
            report.trace.compute_seconds(g) for g in range(topo22.n_gpus)
        )
        assert report.step_seconds >= per_gpu
