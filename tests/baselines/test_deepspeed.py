"""Tests for the DeepSpeed ZeRO-3 heterogeneous-memory baseline."""

import pytest

from repro.baselines.deepspeed import DeepSpeedConfig, run_deepspeed
from repro.hardware.topology import datacenter_server, topo_2_2, topo_4
from repro.models.spec import FP16_BYTES


@pytest.fixture
def report(tiny_model, topo22):
    return run_deepspeed(tiny_model, topo22, DeepSpeedConfig(microbatch_size=1))


class TestTraffic:
    def test_gather_traffic_eq2(self, tiny_model, topo22, report):
        """Eq. 2: parameter gathers total 2 * N * P * overhead FP16 bytes."""
        gathers = report.trace.total_transfer_bytes(["allgather", "shard-restore"])
        expected = 2 * topo22.n_gpus * tiny_model.param_bytes(FP16_BYTES) * 1.22
        assert gathers == pytest.approx(expected, rel=1e-6)

    def test_gradient_traffic_eq2(self, tiny_model, topo22, report):
        """Eq. 2: gradients total N x FP16 grad bytes (reduce-scatter +
        shard offload)."""
        grads = report.trace.total_transfer_bytes(["reduce-scatter", "grad-offload"])
        expected = topo22.n_gpus * tiny_model.param_bytes(FP16_BYTES)
        assert grads == pytest.approx(expected, rel=1e-6)

    def test_total_is_about_1_5N_model_bytes(self, tiny_model, topo22, report):
        total = report.trace.total_transfer_bytes()
        model_fp32 = tiny_model.param_bytes(4)
        ratio = total / model_fp32
        assert 1.3 * topo22.n_gpus <= ratio <= 2.0 * topo22.n_gpus

    def test_traffic_grows_with_gpu_count(self, tiny_model):
        small = run_deepspeed(tiny_model, topo_2_2(), DeepSpeedConfig(microbatch_size=1))
        from repro.hardware.topology import topo_4_4

        large = run_deepspeed(tiny_model, topo_4_4(), DeepSpeedConfig(microbatch_size=1))
        assert large.trace.total_transfer_bytes() == pytest.approx(
            2 * small.trace.total_transfer_bytes(), rel=1e-6
        )


class TestContention:
    def test_worse_on_more_contended_topology(self, tiny_model):
        config = DeepSpeedConfig(microbatch_size=1)
        shared = run_deepspeed(tiny_model, topo_4(), config)
        split = run_deepspeed(tiny_model, topo_2_2(), config)
        assert shared.step_seconds > split.step_seconds

    def test_most_bytes_below_half_link_bandwidth(self, report):
        """Figure 2's observation."""
        from repro.analysis.bandwidth import fraction_of_bytes_below

        assert fraction_of_bytes_below(report.trace, 6.55) > 0.5

    def test_communication_dominates(self, report):
        """§2.3: communication >= 70% of per-step time."""
        from repro.analysis.overlap import overlap_stats

        assert overlap_stats(report.trace).comm_fraction >= 0.5

    def test_faster_on_nvlink_server(self, tiny_model):
        config = DeepSpeedConfig(microbatch_size=1)
        commodity = run_deepspeed(tiny_model, topo_2_2(), config)
        nvlink = run_deepspeed(tiny_model, datacenter_server(), config)
        assert nvlink.step_seconds < commodity.step_seconds


class TestConfig:
    def test_all_gpus_compute_equally(self, report, topo22):
        times = [report.trace.compute_seconds(g) for g in range(topo22.n_gpus)]
        assert max(times) == pytest.approx(min(times), rel=1e-9)

    def test_lockstep_toggle_runs(self, tiny_model, topo22):
        config = DeepSpeedConfig(microbatch_size=1, lockstep=False)
        result = run_deepspeed(tiny_model, topo22, config)
        assert result.step_seconds > 0

    def test_more_local_microbatches_more_compute(self, tiny_model, topo22):
        one = run_deepspeed(
            tiny_model, topo22, DeepSpeedConfig(microbatch_size=1, microbatches_per_gpu=1)
        )
        two = run_deepspeed(
            tiny_model, topo22, DeepSpeedConfig(microbatch_size=1, microbatches_per_gpu=2)
        )
        assert two.trace.compute_seconds() > one.trace.compute_seconds()

    def test_collective_latency_adds_time(self, tiny_model, topo22):
        fast = run_deepspeed(
            tiny_model, topo22, DeepSpeedConfig(microbatch_size=1, collective_latency=0.0)
        )
        slow = run_deepspeed(
            tiny_model, topo22, DeepSpeedConfig(microbatch_size=1, collective_latency=0.05)
        )
        assert slow.step_seconds > fast.step_seconds
