"""Command-line interface.

Subcommands:

* ``plan``     — run Mobius's planner for a model/topology and print the plan;
* ``compare``  — simulate every system (GPipe, DeepSpeed pipeline,
  ZeRO-Offload, ZeRO-3 heterogeneous memory, Mobius) on one configuration;
* ``advise``   — sweep microbatch sizes for the best throughput;
* ``figures``  — regenerate paper figures by name (or ``all``);
* ``lint``     — run the MOB source rules standalone: per-file MOB000-003
  plus the interprocedural MOB004-007 analysis (:mod:`repro.check.analysis`);
  ``--json`` / ``--sarif`` for CI, ``--baseline`` for suppressions;
* ``check``    — verify planner output, traces and source contracts
  (:mod:`repro.check`); exits non-zero on findings, ``--json`` for CI;
* ``chaos``    — run the fault-injection matrix (:mod:`repro.faults`):
  every check-corpus cell under dropout/degraded-link/straggler/flaky
  faults, asserting recovery; exits non-zero if any cell fails;
* ``solvebench`` — benchmark the MIP solver stack (:mod:`repro.solver`)
  over the check corpus: objective parity vs scipy/HiGHS, warm-vs-cold
  invariance, node/pivot counts; ``--check-against`` gates CI on the
  committed ``BENCH_solver.json``;
* ``simbench`` — benchmark the discrete-event simulator (:mod:`repro.sim`)
  over the check corpus and chaos scenarios: trace fingerprints plus the
  incremental allocator's work counters; ``--check-against`` gates CI on
  the committed ``BENCH_sim.json`` (any fingerprint divergence fails);
* ``serve``    — run the planning daemon (:mod:`repro.serve`) over a
  scripted corpus session: admission control, request coalescing,
  supervised workers and a durable sqlite warm-start/result store;
* ``servebench`` — benchmark the daemon: plans/sec cold vs warm vs
  coalesced plus the serve chaos scenarios (worker kill, poison
  quarantine, deadline straggler, store corruption, overload burst);
  ``--check-against`` gates CI on the committed ``BENCH_serve.json``.

Examples:
    python -m repro plan --model 15B --topology 2+2
    python -m repro compare --model 8B --topology 4 --microbatch 1
    python -m repro advise --model 8B --topology 2+2
    python -m repro figures fig5 fig6
    python -m repro lint --json
    python -m repro lint src/repro/sim --sarif lint.sarif
    python -m repro check --json
    python -m repro chaos --json
    python -m repro solvebench --json BENCH_solver.json
    python -m repro simbench --check-against BENCH_sim.json
    python -m repro serve --store .mobius_serve.sqlite --rounds 2
    python -m repro servebench --check-against BENCH_serve.json
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.runner import SYSTEMS, ExperimentTable, print_tables, run_system
from repro.hardware.gpu import GPU_PRESETS
from repro.hardware.topology import Topology, commodity_server, datacenter_server
from repro.models.zoo import model_by_name

__all__ = ["main", "build_parser"]


def _parse_topology(spec: str, gpu: str) -> Topology:
    """Parse a topology spec: ``"2+2"``, ``"4"``, ``"1+3"`` or ``"dc"``."""
    if spec.lower() in ("dc", "datacenter"):
        return datacenter_server()
    try:
        groups = [int(part) for part in spec.split("+")]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"topology must look like '2+2', '4', '1+3' or 'dc', got {spec!r}"
        ) from None
    return commodity_server(groups, GPU_PRESETS[gpu])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mobius (ASPLOS 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default="15B", help="3B | 8B | 15B | 51B | GPT2")
        p.add_argument("--topology", default="2+2", help="'2+2', '4', '1+3', '4+4' or 'dc'")
        p.add_argument(
            "--gpu", default="RTX 3090-Ti", choices=sorted(GPU_PRESETS),
            help="GPU preset for commodity topologies",
        )
        p.add_argument("--microbatch", type=int, default=None, help="microbatch size")
        p.add_argument(
            "--time-limit", type=float, default=5.0, help="MIP search budget (s)"
        )
        p.add_argument(
            "--solver-mode", default="solo", choices=("solo", "portfolio"),
            help="solo B&B, or race it against the HiGHS backend "
            "(bit-identical result, lower latency)",
        )

    plan = sub.add_parser("plan", help="run the Mobius planner and print the plan")
    add_common(plan)

    compare = sub.add_parser("compare", help="simulate every system on one config")
    add_common(compare)

    advise = sub.add_parser("advise", help="find the throughput-best microbatch size")
    add_common(advise)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument(
        "names",
        nargs="+",
        help=f"experiment names (prefix match) or 'all'; known: {', '.join(ALL_EXPERIMENTS)}",
    )
    figures.add_argument("--full", action="store_true", help="full sweeps (slow)")
    figures.add_argument(
        "--jobs", type=int, default=1,
        help="drain the suite-wide cell schedule with N worker processes "
        "(figures assemble serially from the shared cache afterwards)",
    )
    figures.add_argument(
        "--no-cache", action="store_true",
        help="disable the plan/result cache (cold reference run)",
    )
    figures.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="write a machine-readable timing report (e.g. BENCH_suite.json)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the MOB source rules (per-file + whole-program analysis)",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="repo-relative files/directories to report on (default: all)",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable report for CI"
    )
    lint.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="write a SARIF 2.1.0 report to PATH ('-' for stdout)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="suppression baseline (default: <root>/LINT_BASELINE.json)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--no-analysis", action="store_true",
        help="per-file rules only; skip the interprocedural MOB004-007 pass",
    )
    lint.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root (default: auto-detected)",
    )

    check = sub.add_parser(
        "check",
        help="verify planner output, traces and source contracts",
    )
    check.add_argument(
        "--json", action="store_true", help="machine-readable report for CI"
    )
    check.add_argument(
        "--no-corpus", action="store_true",
        help="skip the plan/mapping/trace corpus (lint only)",
    )
    check.add_argument(
        "--no-lint", action="store_true",
        help="skip the MOB0xx source lint (corpus only)",
    )
    check.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root for the source lint (default: auto-detected)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="inject faults over the check corpus and verify recovery",
    )
    chaos.add_argument(
        "--json", action="store_true", help="machine-readable report for CI"
    )
    chaos.add_argument(
        "--out", default="BENCH_chaos.json", metavar="PATH",
        help="where to write the JSON report (default: %(default)s)",
    )
    chaos.add_argument("--seed", type=int, default=0, help="fault-schedule seed")
    chaos.add_argument(
        "--steps", type=int, default=4,
        help="training-window length (steps) for goodput accounting",
    )

    solvebench = sub.add_parser(
        "solvebench",
        help="benchmark the MIP solver stack over the check corpus",
    )
    solvebench.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the benchmark JSON to PATH (or stdout with no PATH)",
    )
    solvebench.add_argument(
        "--check-against", default=None, metavar="PATH",
        help="committed BENCH_solver.json baseline; exit 1 on objective-"
        "parity or >25%% node-count regression",
    )

    simbench = sub.add_parser(
        "simbench",
        help="benchmark the simulator's incremental flow allocator",
    )
    simbench.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the benchmark JSON to PATH (or stdout with no PATH)",
    )
    simbench.add_argument(
        "--check-against", default=None, metavar="PATH",
        help="committed BENCH_sim.json baseline; exit 1 on trace-"
        "fingerprint divergence or >25%% allocator-work regression",
    )

    serve = sub.add_parser(
        "serve",
        help="run the planning daemon over a scripted corpus session",
    )
    serve.add_argument(
        "--store", default=".mobius_serve.sqlite", metavar="PATH",
        help="durable sqlite store (default: %(default)s); 'none' disables",
    )
    serve.add_argument(
        "--worker", default="inline", choices=("inline", "process"),
        help="solver worker kind (process = supervised child process)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="dispatch/worker parallelism: N dispatch threads over N "
        "supervised workers (default: %(default)s)",
    )
    serve.add_argument(
        "--rounds", type=int, default=2,
        help="serve the check corpus this many times (round 2+ hits caches)",
    )
    serve.add_argument(
        "--deadline-nodes", type=int, default=None, metavar="N",
        help="per-request deadline as a solver node budget",
    )
    serve.add_argument(
        "--json", action="store_true", help="machine-readable stats for CI"
    )

    servebench = sub.add_parser(
        "servebench",
        help="benchmark the planning daemon (throughput + chaos recovery)",
    )
    servebench.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the benchmark JSON to PATH (or stdout with no PATH)",
    )
    servebench.add_argument(
        "--check-against", default=None, metavar="PATH",
        help="committed BENCH_serve.json baseline; exit 1 on fingerprint "
        "divergence, chaos regression, or >25%% throughput regression",
    )
    servebench.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="top of the worker-scaling ladder (the bench always measures "
        "1 and 2 too; default: REPRO_JOBS capped at 4)",
    )
    return parser


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.api import MobiusConfig, plan_mobius

    model = model_by_name(args.model)
    topology = _parse_topology(args.topology, args.gpu)
    report = plan_mobius(
        model,
        topology,
        MobiusConfig(
            microbatch_size=args.microbatch,
            partition_time_limit=args.time_limit,
            solver_mode=args.solver_mode,
        ),
    )
    print(report.plan.describe())
    print(
        f"planning overhead: profile {report.profiling_seconds:.1f}s, "
        f"MIP {report.mip_solve_seconds:.1f}s, mapping {report.mapping_seconds:.3f}s"
    )
    print(f"estimated step time: {report.plan.estimated_step_seconds:.2f}s")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    model = model_by_name(args.model)
    topology = _parse_topology(args.topology, args.gpu)
    table = ExperimentTable(
        title=f"{model.name} on {topology.name}",
        columns=("system", "step_s", "traffic_GB", "non_overlapped"),
    )
    for system in SYSTEMS:
        result = run_system(
            system, model, topology, microbatch_size=args.microbatch
        )
        if result.ok:
            assert result.trace is not None
            table.add_row(
                system,
                result.step_seconds,
                result.trace.total_transfer_bytes() / 1e9,
                result.trace.non_overlapped_comm_fraction(),
            )
        else:
            table.add_row(system, "OOM", "-", "-")
    print_tables(table)
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.extensions import advise_microbatch_size

    model = model_by_name(args.model)
    topology = _parse_topology(args.topology, args.gpu)
    advice = advise_microbatch_size(model, topology)
    table = ExperimentTable(
        title=f"microbatch sweep: {model.name} on {topology.name}",
        columns=("microbatch", "step_s", "samples_per_s"),
    )
    for mbs in sorted(advice.throughputs):
        table.add_row(mbs, advice.step_seconds[mbs], advice.throughputs[mbs])
    table.notes.append(f"best microbatch size: {advice.best_microbatch_size}")
    print_tables(table)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.suite import resolve_names, run_suite

    wanted = resolve_names(args.names)
    if not wanted:
        print(f"no experiments match {args.names}; known: {', '.join(ALL_EXPERIMENTS)}")
        return 1
    run_suite(
        wanted,
        fast=not args.full,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        bench_path=args.bench_out,
    )
    return 0


def _lint_root(root_arg: str | None):
    from pathlib import Path

    return (
        Path(root_arg)
        if root_arg is not None
        else Path(__file__).resolve().parents[2]
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.check.analysis import Baseline, run_lint, to_sarif
    from repro.check.analysis.baseline import DEFAULT_BASELINE_PATH

    root = _lint_root(args.root)
    if not (root / "src" / "repro").is_dir():
        print(f"error: no src/repro under {root}", file=sys.stderr)
        return 2

    baseline_path = (
        args.baseline if args.baseline is not None else root / DEFAULT_BASELINE_PATH
    )
    run = run_lint(
        root,
        args.paths or None,
        baseline_path=baseline_path,
        analysis=not args.no_analysis,
    )

    if args.write_baseline:
        findings = run.report
        findings.extend(run.suppressed)
        Baseline.from_report(findings).save(baseline_path)
        print(f"baseline with {len(findings)} finding(s) written to {baseline_path}")
        return 0

    if args.sarif is not None:
        sarif = to_sarif(run.report)
        if args.sarif == "-":
            print(sarif)
        else:
            with open(args.sarif, "w", encoding="utf-8") as f:
                f.write(sarif + "\n")
            if not args.json:
                print(f"SARIF report written to {args.sarif}")

    if args.json:
        print(_json_dumps(run.to_dict()))
    elif args.sarif != "-":
        print(run.report.render())
        if run.suppressed:
            print(f"{len(run.suppressed)} finding(s) suppressed by baseline")
        for entry in run.unused_entries:
            print(
                f"warning: stale baseline entry {entry.code} "
                f"{entry.path}::{entry.symbol} matched nothing"
            )
    return 0 if run.ok else 1


def _json_dumps(payload: dict) -> str:
    import json

    return json.dumps(payload, indent=2)


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import CheckReport, run_corpus
    from repro.check.analysis import run_lint

    report = CheckReport()

    if not args.no_lint:
        root = _lint_root(args.root)
        if (root / "src" / "repro").is_dir():
            report.extend(run_lint(root).report)
        elif not args.json:
            print(f"note: no src/repro under {root}; skipping source lint")

    if not args.no_corpus:
        progress = None if args.json else lambda name: print(f"checking {name} ...")
        report.extend(run_corpus(progress=progress))

    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos

    progress = None if args.json else lambda name: print(f"chaos {name} ...")
    report = run_chaos(seed=args.seed, n_steps=args.steps, progress=progress)
    with open(args.out, "w") as f:
        f.write(report.to_json() + "\n")
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


def _cmd_solvebench(args: argparse.Namespace) -> int:
    import json

    from repro.solver.bench import compare_benchmarks, run_bench, write_bench

    document = run_bench()
    if args.json == "-":
        print(json.dumps(document, indent=1))
    elif args.json is not None:
        write_bench(args.json, document)
        print(f"benchmark written to {args.json}")
    else:
        for row in document["mip"]:
            flag = "ok" if row["parity"] and row["warm_identical"] else "FAIL"
            print(
                f"mip {row['name']:<24} {row['status']:<10} "
                f"nodes={row['nodes']:<6} pivots={row['pivots']:<7} "
                f"warm={row['warm_nodes']:<6} [{flag}]"
            )
        for row in document["partition"]:
            flag = "ok" if row["warm_identical"] else "FAIL"
            print(
                f"partition {row['name']:<18} nodes={row['nodes']:<6} "
                f"warm={row['warm_nodes']:<6} [{flag}]"
            )
        for row in document["portfolio"]:
            flag = "ok" if row["parity"] else "FAIL"
            print(
                f"portfolio {row['name']:<18} winner={row['winner']:<6} "
                f"bnb={row['bnb_wall_seconds']}s "
                f"highs={row['highs_wall_seconds']}s "
                f"race={row['race_wall_seconds']}s [{flag}]"
            )
        print(f"portfolio wins: {document['portfolio_wins']}")
    failures = [
        f"{section}:{row['name']}: "
        + ("parity failed" if not row.get("parity", True) else "warm != cold")
        for section in ("mip", "partition")
        for row in document[section]
        if not (row.get("parity", True) and row.get("warm_identical", True))
    ]
    failures.extend(
        f"portfolio:{row['name']}: raced result diverged from solo B&B"
        for row in document["portfolio"]
        if not row.get("parity", True)
    )
    if args.check_against is not None:
        with open(args.check_against) as f:
            baseline = json.load(f)
        failures.extend(compare_benchmarks(document, baseline))
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_simbench(args: argparse.Namespace) -> int:
    import json

    from repro.sim.bench import compare_benchmarks, run_bench, write_bench

    document = run_bench()
    if args.json == "-":
        print(json.dumps(document, indent=1))
    elif args.json is not None:
        write_bench(args.json, document)
        print(f"benchmark written to {args.json}")
    else:
        for row in document["corpus"]:
            print(
                f"corpus {row['name']:<18} events={row['events']:<6} "
                f"realloc={row['reallocations']:<5} "
                f"touched/realloc={row['flows_touched_per_reallocation']:<6} "
                f"fp={row['fingerprint'][:12]}"
            )
        for row in document["chaos"]:
            fp = row["fingerprint"]
            print(
                f"chaos {row['name']:<28} {row['status']:<10} "
                f"fp={fp[:12] if fp else '-'}"
            )
        for row in document.get("large", []):
            print(
                f"large {row['name']:<18} events={row['events']:<8} "
                f"wall={row['wall_seconds']:<8} rss={row['peak_rss_mb']}MB "
                f"fp={row['fingerprint'][:12]}"
            )
    failures: list[str] = []
    if args.check_against is not None:
        with open(args.check_against) as f:
            baseline = json.load(f)
        failures.extend(compare_benchmarks(document, baseline))
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.check.corpus import default_corpus
    from repro.serve import Deadline, PlanRequest, PlanService, ServiceConfig

    store_path = None if args.store == "none" else args.store
    deadline = (
        Deadline(max_nodes=args.deadline_nodes)
        if args.deadline_nodes is not None
        else None
    )
    responses = []
    with PlanService(
        ServiceConfig(
            store_path=store_path, worker=args.worker, workers=args.workers
        )
    ) as service:
        for round_index in range(max(1, args.rounds)):
            for cell in default_corpus():
                response = service.plan(
                    PlanRequest(
                        model=cell.model,
                        topology=cell.topology,
                        config=cell.config,
                        deadline=deadline,
                    )
                )
                responses.append((round_index, cell.name, response))
                if not args.json:
                    print(
                        f"round {round_index} {cell.name:<18} "
                        f"{response.status:<9} source={response.source:<9} "
                        f"fp={response.plan_fingerprint[:12] if response.plan_fingerprint else '-'}"
                    )
        stats = service.stats()
    if args.json:
        print(_json_dumps(stats))
    else:
        print(
            f"served {stats['completed']} solve(s), "
            f"{stats['coalesced_joins']} coalesced join(s), "
            f"{stats['deadline_misses']} deadline miss(es); "
            f"store: {stats['store']}"
        )
    return 0 if all(r.ok for _, _, r in responses) else 1


def _cmd_servebench(args: argparse.Namespace) -> int:
    import json

    from repro.serve.bench import compare_benchmarks, run_bench, write_bench

    document = run_bench(workers=args.workers)
    if args.json == "-":
        print(json.dumps(document, indent=1))
    elif args.json is not None:
        write_bench(args.json, document)
        print(f"benchmark written to {args.json}")
    else:
        for row in document["throughput"]:
            print(
                f"throughput {row['name']:<14} plans={row['plans']:<4} "
                f"wall={row['wall_seconds']:<8} plans/s={row['plans_per_second']}"
            )
        for row in document["plans"]:
            flag = "ok" if row["consistent"] else "FAIL"
            print(
                f"plan {row['name']:<18} fp={row['fingerprint'][:12]} [{flag}]"
            )
        scaling = document["scaling"]
        for row in scaling["rows"]:
            print(
                f"scaling workers={row['workers']:<2} plans={row['plans']:<4} "
                f"wall={row['wall_seconds']:<8} plans/s={row['plans_per_second']}"
            )
        print(
            f"scaling cpus={scaling['cpus']} "
            f"speedup(top vs 1)={scaling['speedup_top_vs_1']} "
            f"[{'ok' if scaling['consistent'] else 'FAIL'}]"
        )
        for row in document["recovery"]:
            print(
                f"recovery {row['name']:<24} "
                f"[{'ok' if row['ok'] else 'FAIL'}]"
            )
    failures = [
        f"recovery:{row['name']}: scenario failed"
        for row in document["recovery"]
        if not row["ok"]
    ]
    failures.extend(
        f"plans:{row['name']}: serving regimes returned divergent fingerprints"
        for row in document["plans"]
        if not row["consistent"]
    )
    if not document["scaling"]["consistent"]:
        failures.append("scaling: fingerprints diverged across worker counts")
    if args.check_against is not None:
        with open(args.check_against) as f:
            baseline = json.load(f)
        failures.extend(compare_benchmarks(document, baseline))
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


_COMMANDS = {
    "plan": _cmd_plan,
    "compare": _cmd_compare,
    "advise": _cmd_advise,
    "figures": _cmd_figures,
    "lint": _cmd_lint,
    "check": _cmd_check,
    "chaos": _cmd_chaos,
    "solvebench": _cmd_solvebench,
    "simbench": _cmd_simbench,
    "serve": _cmd_serve,
    "servebench": _cmd_servebench,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from repro.experiments.runner import default_jobs

    try:
        default_jobs()  # fail fast on a malformed REPRO_JOBS before any work
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
