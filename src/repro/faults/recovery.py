"""Fault injection and recovery inside one simulated training step.

:class:`FaultInjectingRunner` subclasses the plain
:class:`~repro.sim.tasks.TaskGraphRunner` and perturbs execution only
through the dispatch seams the base class exposes — ``_submit_compute``
for straggler slowdowns and ``_start_transfer`` for flaky transfers — plus
the :meth:`~repro.sim.resources.FlowNetwork.set_bandwidth_scale` hook for
link degradation.  The event loop, flow model and trace recording are the
production code paths, unforked.

Recovery semantics:

* A *failed* transfer is detected at completion (checksum mismatch): the
  bytes moved and occupied the links, but the payload is unusable.  The
  runner re-issues the transfer after an exponential backoff, up to the
  :class:`RetryPolicy` budget.  Successful-after-retry transfers appear in
  the trace as one span from first dispatch to final completion.
* A transfer that exhausts its retry budget raises
  :class:`UnrecoverableTransferError`, aborting the step.
  :func:`run_step` then falls back to *degraded mode*: the step is
  re-executed without prefetch overlap (every stage is fetched from DRAM
  synchronously, with inline verification, so transfers are treated as
  reliable), while hardware faults — degraded links and stragglers —
  remain in force.  The reported step time charges the aborted attempt in
  full: ``abort_seconds + degraded makespan``.

GPU dropout cannot be expressed inside a single step (it changes the
resource set); :class:`FaultInjectingRunner` rejects schedules containing
dropouts — elastic re-planning lives in :mod:`repro.faults.replan`.
"""

from __future__ import annotations

import dataclasses

from repro.core.pipeline import build_mobius_tasks
from repro.core.plan import ExecutionPlan
from repro.faults.models import FaultSchedule, failure_coin
from repro.hardware.topology import Topology
from repro.models.costmodel import CostModel
from repro.sim.engine import Simulator
from repro.sim.resources import ComputeUnit
from repro.sim.tasks import ComputeTask, Task, TaskGraphRunner, TransferTask
from repro.sim.trace import Trace

__all__ = [
    "RetryPolicy",
    "FailedAttempt",
    "UnrecoverableTransferError",
    "FaultInjectingRunner",
    "FaultedStep",
    "run_step",
]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget.

    Attempt ``k`` (1-based) that fails waits ``base_delay * growth**(k-1)``
    seconds (capped at ``max_delay`` when set) before attempt ``k + 1`` is
    issued.  ``max_attempts == 1`` is a zero-retry budget: the first
    failure is terminal.

    Originally the transfer-retry budget of
    :class:`FaultInjectingRunner`; the serve layer's
    :class:`repro.serve.supervisor.Supervisor` reuses it to pace
    solver-worker restarts, so the delay sequence is part of the public
    contract: :meth:`delays` is the full deterministic schedule.
    """

    max_attempts: int = 4
    base_delay: float = 1e-3
    growth: float = 2.0
    max_delay: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.growth < 1:
            raise ValueError(f"growth must be >= 1, got {self.growth}")
        if self.max_delay is not None and self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")

    def backoff(self, attempt: int) -> float:
        """Delay before re-issuing after failed 1-based ``attempt``."""
        delay = self.base_delay * self.growth ** (attempt - 1)
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        return delay

    def delays(self) -> tuple[float, ...]:
        """Every backoff delay the budget allows, in issue order.

        Length ``max_attempts - 1``: the final failed attempt is never
        followed by a wait.
        """
        return tuple(self.backoff(k) for k in range(1, self.max_attempts))


@dataclasses.dataclass(frozen=True)
class FailedAttempt:
    """Bookkeeping record of one failed transfer attempt."""

    label: str
    attempt: int
    time: float
    retried: bool


class UnrecoverableTransferError(RuntimeError):
    """A transfer failed on every attempt its retry budget allowed."""

    def __init__(self, label: str, seconds: float, attempts: int) -> None:
        super().__init__(
            f"transfer {label!r} failed {attempts} attempt(s); "
            f"retry budget exhausted at t={seconds:.6f}"
        )
        self.label = label
        self.seconds = seconds
        self.attempts = attempts


class FaultInjectingRunner(TaskGraphRunner):
    """A :class:`TaskGraphRunner` executing under a :class:`FaultSchedule`.

    Link degradations are installed as bandwidth-scale events before any
    task runs; stragglers stretch compute tasks at dispatch time; flaky
    transfers fail deterministically per attempt via
    :func:`~repro.faults.models.failure_coin` and are retried under
    ``retry_policy``.
    """

    def __init__(
        self,
        topology: Topology,
        schedule: FaultSchedule,
        *,
        retry_policy: RetryPolicy = RetryPolicy(),
        simulator: Simulator | None = None,
        dispatch: str = "batched",
    ) -> None:
        if schedule.dropouts:
            raise ValueError(
                "GPU dropout is a run-level fault handled by "
                "repro.faults.replan; FaultInjectingRunner only simulates "
                "performance faults (got a schedule with dropouts)"
            )
        super().__init__(topology, simulator=simulator, dispatch=dispatch)
        self.schedule = schedule
        self.retry_policy = retry_policy
        #: Failed attempts in completion order (deterministic bookkeeping).
        self.failed_attempts: list[FailedAttempt] = []
        for fault in schedule.link_degradations:
            self.network.set_bandwidth_scale(
                fault.edge, fault.factor, start=fault.start, end=fault.end
            )

    def _submit_compute(self, unit: ComputeUnit, task: ComputeTask, on_done) -> None:
        scale = self.schedule.compute_scale(task.gpu, self.sim.now)
        if scale != 1.0:
            # Stretch the task itself (not the unit) so the recorded span
            # matches task.seconds and the TASK-DURATION check still holds.
            task.seconds *= scale
        super()._submit_compute(unit, task, on_done)

    def _start_transfer(self, task: TransferTask, complete) -> None:
        if task.nbytes <= 0 or not task.path:
            super()._start_transfer(task, complete)
            return
        task.start_time = self.sim.now
        self._attempt_transfer(task, complete, attempt=1)

    def _attempt_transfer(self, task: TransferTask, complete, attempt: int) -> None:
        """Issue one attempt; decide success/failure when the flow lands."""
        rate = self.schedule.failure_probability(task.kind, self.sim.now)

        def on_flow_done() -> None:
            if rate > 0 and failure_coin(
                self.schedule.seed, task.label, attempt
            ) < rate:
                self._on_attempt_failed(task, complete, attempt)
            else:
                complete(task)

        self.network.start_flow(
            task.path,
            task.nbytes,
            on_flow_done,
            priority=task.priority,
            label=task.label,
        )

    def _on_attempt_failed(self, task: TransferTask, complete, attempt: int) -> None:
        retried = attempt < self.retry_policy.max_attempts
        self.failed_attempts.append(
            FailedAttempt(task.label, attempt, self.sim.now, retried)
        )
        if not retried:
            raise UnrecoverableTransferError(task.label, self.sim.now, attempt)
        self.sim.schedule(
            self.retry_policy.backoff(attempt),
            lambda: self._attempt_transfer(task, complete, attempt + 1),
        )


@dataclasses.dataclass(frozen=True)
class FaultedStep:
    """Outcome of one training step executed under faults.

    Attributes:
        trace: The trace of the *successful* execution (degraded-mode
            re-execution when ``degraded``); always checker-clean.
        tasks: The task graph that produced ``trace`` (for
            :func:`repro.check.trace_check.sanitize_run`).
        step_seconds: Wall time charged to the step, including the aborted
            attempt when degraded mode kicked in.
        degraded: Whether the step fell back to no-prefetch execution.
        abort_seconds: Sim time at which the first attempt aborted
            (0 when not degraded).
        failed_attempts: Every failed transfer attempt across both the
            aborted and the successful execution.
    """

    trace: Trace
    tasks: tuple[Task, ...]
    step_seconds: float
    degraded: bool
    abort_seconds: float
    failed_attempts: tuple[FailedAttempt, ...]

    @property
    def n_retries(self) -> int:
        return sum(1 for f in self.failed_attempts if f.retried)


def run_step(
    plan: ExecutionPlan,
    topology: Topology,
    cost_model: CostModel,
    schedule: FaultSchedule,
    *,
    retry_policy: RetryPolicy = RetryPolicy(),
    prefetch: bool = True,
    use_priorities: bool = True,
) -> FaultedStep:
    """Execute one Mobius step under ``schedule``, recovering as needed.

    Raises:
        ValueError: If ``schedule`` contains :class:`GpuDropout` faults
            (handled by :mod:`repro.faults.replan`, not here).
    """
    stage_costs = plan.partition.stage_costs(cost_model)
    tasks = build_mobius_tasks(
        plan, topology, stage_costs, prefetch=prefetch, use_priorities=use_priorities
    )
    runner = FaultInjectingRunner(topology, schedule, retry_policy=retry_policy)
    try:
        trace = runner.execute(tasks)
    except UnrecoverableTransferError as err:
        # Degraded mode: rebuild a fresh graph (the aborted one holds
        # partially-executed tasks) and re-run without prefetch overlap.
        # Fault windows are re-entered from t=0 of the re-execution.
        degraded_tasks = build_mobius_tasks(
            plan, topology, stage_costs, prefetch=False, use_priorities=use_priorities
        )
        degraded_runner = FaultInjectingRunner(
            topology, schedule.without_flaky(), retry_policy=retry_policy
        )
        trace = degraded_runner.execute(degraded_tasks)
        return FaultedStep(
            trace=trace,
            tasks=tuple(degraded_tasks),
            step_seconds=err.seconds + trace.makespan,
            degraded=True,
            abort_seconds=err.seconds,
            failed_attempts=tuple(
                runner.failed_attempts + degraded_runner.failed_attempts
            ),
        )
    return FaultedStep(
        trace=trace,
        tasks=tuple(tasks),
        step_seconds=trace.makespan,
        degraded=False,
        abort_seconds=0.0,
        failed_attempts=tuple(runner.failed_attempts),
    )
