"""Seeded, declarative fault models for commodity-server misbehaviour.

Mobius targets commodity PCIe servers, whose dominant failure surface the
paper itself motivates: PCIe bandwidth collapse under contention (§2, the
DeepSpeed CDF of Figure 2), straggler GPUs, and devices dropping out
mid-run.  Each fault here is a frozen dataclass describing *what* goes
wrong and *when*; a :class:`FaultSchedule` bundles faults with a seed so an
entire chaos run is reproducible bit-for-bit.

Faults are injected through wrapper hooks on the simulator's resources —
:meth:`repro.sim.resources.FlowNetwork.set_bandwidth_scale` for link
degradation, and the dispatch hooks of
:class:`repro.sim.tasks.TaskGraphRunner` (overridden by
:class:`repro.faults.recovery.FaultInjectingRunner`) for stragglers and
flaky transfers — never by forking the simulation hot paths.  GPU dropout
is a run-level fault: it is handled by elastic re-planning
(:mod:`repro.faults.replan`), not inside a single-step event simulation.

Randomness policy: there is no RNG state at all.  Per-attempt transfer
failures are decided by hashing ``(seed, label, attempt)`` through
:func:`repro.perf.fingerprint.fingerprint`, so outcomes are independent of
call order and identical across processes.
"""

from __future__ import annotations

import dataclasses
import math

from repro.hardware.topology import Edge
from repro.perf.fingerprint import fingerprint

__all__ = [
    "GpuDropout",
    "LinkDegradation",
    "StragglerGpu",
    "FlakyTransfers",
    "FaultSchedule",
    "failure_coin",
]


def _check_window(start: float, end: float) -> None:
    if math.isnan(start) or math.isnan(end):
        raise ValueError(f"fault window must not be NaN: [{start}, {end})")
    if start < 0:
        raise ValueError(f"fault window must start at or after t=0, got {start}")
    if end <= start:
        raise ValueError(f"fault window is empty: [{start}, {end})")


@dataclasses.dataclass(frozen=True)
class GpuDropout:
    """GPU ``gpu`` dies permanently at absolute run time ``time``.

    Dropout is the only fault that changes the resource *set* rather than
    its performance; recovery requires re-solving the partition (Eqs. 3-11)
    and cross mapping (Eqs. 12-13) for the surviving GPUs.
    """

    gpu: int
    time: float

    def __post_init__(self) -> None:
        if self.gpu < 0:
            raise ValueError(f"gpu index must be non-negative, got {self.gpu}")
        if not (self.time >= 0 and math.isfinite(self.time)):
            raise ValueError(f"dropout time must be finite and >= 0, got {self.time}")


@dataclasses.dataclass(frozen=True)
class LinkDegradation:
    """One directed PCIe link runs at ``factor`` x nominal bandwidth.

    ``end = inf`` models a persistent degradation (a renegotiated x16 -> x4
    link); a finite window models transient contention from a co-tenant.
    """

    edge: Edge
    factor: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if not (0 < self.factor <= 1 and math.isfinite(self.factor)):
            raise ValueError(
                f"degradation factor must be in (0, 1], got {self.factor}"
            )
        _check_window(self.start, self.end)


@dataclasses.dataclass(frozen=True)
class StragglerGpu:
    """GPU ``gpu`` computes ``slowdown`` x slower inside the window.

    The slowdown applies to compute tasks *dispatched* while the window is
    open (the moment a kernel becomes ready, mirroring how a downclocked
    GPU stretches every kernel launched on it).
    """

    gpu: int
    slowdown: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.gpu < 0:
            raise ValueError(f"gpu index must be non-negative, got {self.gpu}")
        if not (self.slowdown >= 1 and math.isfinite(self.slowdown)):
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")
        _check_window(self.start, self.end)


@dataclasses.dataclass(frozen=True)
class FlakyTransfers:
    """Transfers fail (checksum mismatch at completion) with a probability.

    Attributes:
        failure_rate: Per-attempt failure probability in [0, 1).
        kinds: Restrict to these transfer kinds (empty = all kinds).
        start: Window start; a transfer is at risk if dispatched inside.
        end: Window end (``inf`` = whole run).
    """

    failure_rate: float
    kinds: tuple[str, ...] = ()
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if not (0 <= self.failure_rate < 1):
            raise ValueError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        _check_window(self.start, self.end)

    def applies(self, kind: str, now: float) -> bool:
        """Whether a transfer of ``kind`` dispatched at ``now`` is at risk."""
        if self.kinds and kind not in self.kinds:
            return False
        return self.start <= now < self.end


Fault = GpuDropout | LinkDegradation | StragglerGpu | FlakyTransfers


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """A reproducible fault scenario: a seed plus a tuple of fault models."""

    seed: int = 0
    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        for fault in self.faults:
            if not isinstance(
                fault, (GpuDropout, LinkDegradation, StragglerGpu, FlakyTransfers)
            ):
                raise TypeError(f"unknown fault model: {fault!r}")

    def _of_type(self, kind: type) -> tuple:
        return tuple(f for f in self.faults if isinstance(f, kind))

    @property
    def dropouts(self) -> tuple[GpuDropout, ...]:
        return self._of_type(GpuDropout)

    @property
    def link_degradations(self) -> tuple[LinkDegradation, ...]:
        return self._of_type(LinkDegradation)

    @property
    def stragglers(self) -> tuple[StragglerGpu, ...]:
        return self._of_type(StragglerGpu)

    @property
    def flaky_transfers(self) -> tuple[FlakyTransfers, ...]:
        return self._of_type(FlakyTransfers)

    def without_dropouts(self) -> "FaultSchedule":
        """The schedule minus dropout faults (which need run-level handling)."""
        return FaultSchedule(
            self.seed, tuple(f for f in self.faults if not isinstance(f, GpuDropout))
        )

    def without_flaky(self) -> "FaultSchedule":
        """The schedule minus flaky-transfer faults.

        Degraded-mode execution fetches stages synchronously with inline
        verification, so its transfers are treated as reliable; hardware
        faults (degraded links, stragglers) remain in force.
        """
        return FaultSchedule(
            self.seed,
            tuple(f for f in self.faults if not isinstance(f, FlakyTransfers)),
        )

    def compute_scale(self, gpu: int, now: float) -> float:
        """Combined straggler slowdown for ``gpu`` at time ``now``."""
        scale = 1.0
        for fault in self.stragglers:
            if fault.gpu == gpu and fault.start <= now < fault.end:
                scale *= fault.slowdown
        return scale

    def failure_probability(self, kind: str, now: float) -> float:
        """Combined per-attempt failure probability for a transfer.

        Independent flaky faults compose as ``1 - prod(1 - rate_i)``.
        """
        survive = 1.0
        for fault in self.flaky_transfers:
            if fault.applies(kind, now):
                survive *= 1.0 - fault.failure_rate
        return 1.0 - survive


def failure_coin(seed: int, label: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one transfer attempt.

    Derived by hashing ``(seed, label, attempt)`` through the canonical
    fingerprint, so the outcome depends only on the schedule's seed and the
    attempt's identity — never on event ordering, process state or
    wall-clock time.
    """
    digest = fingerprint(("fault-coin", seed, label, attempt))
    return int(digest[:16], 16) / 2**64
