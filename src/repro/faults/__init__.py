"""Fault injection, degraded-mode execution and elastic re-planning.

Deterministic chaos testing for the Mobius reproduction: declarative fault
models (:mod:`~repro.faults.models`), retry/degraded-mode recovery inside
one simulated step (:mod:`~repro.faults.recovery`), MIP re-planning after
GPU dropout (:mod:`~repro.faults.replan`) and the ``repro chaos`` harness
(:mod:`~repro.faults.chaos`) that proves recovery with the
:mod:`repro.check` verifiers.
"""

from repro.faults.chaos import (
    SCENARIOS,
    ChaosCellResult,
    ChaosReport,
    build_schedule,
    run_chaos,
    run_chaos_cell,
)
from repro.faults.models import (
    FaultSchedule,
    FlakyTransfers,
    GpuDropout,
    LinkDegradation,
    StragglerGpu,
    failure_coin,
)
from repro.faults.recovery import (
    FailedAttempt,
    FaultedStep,
    FaultInjectingRunner,
    RetryPolicy,
    UnrecoverableTransferError,
    run_step,
)
from repro.faults.replan import (
    ReplanCostModel,
    ReplanResult,
    replan_after_dropout,
    surviving_topology,
)

__all__ = [
    "SCENARIOS",
    "ChaosCellResult",
    "ChaosReport",
    "FailedAttempt",
    "FaultInjectingRunner",
    "FaultSchedule",
    "FaultedStep",
    "FlakyTransfers",
    "GpuDropout",
    "LinkDegradation",
    "ReplanCostModel",
    "ReplanResult",
    "RetryPolicy",
    "StragglerGpu",
    "UnrecoverableTransferError",
    "build_schedule",
    "failure_coin",
    "replan_after_dropout",
    "run_chaos",
    "run_chaos_cell",
    "run_step",
    "surviving_topology",
]
