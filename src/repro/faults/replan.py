"""Elastic re-planning after GPU dropout.

When a GPU dies, Mobius's plan is invalid: the partition was solved for N
GPUs (Eqs. 3-11) and the cross mapping for the old PCIe tree (Eqs. 12-13).
Recovery re-runs the *production* planning pipeline on the surviving
topology — there is no separate recovery planner — and charges a modeled
time-to-recover:

* ``replan_seconds`` — the planner's search budget.  The MIP runs under a
  deterministic node budget with a wall-clock safety ceiling, so the
  configured budget (not the realized solve time) is the deterministic
  model of re-planning latency.  The re-solve warm-starts from the
  pre-fault partition (see :mod:`repro.solver.warmstart`), which shrinks
  the realized search well below the budget.  With
  ``config.solver_mode == "portfolio"`` the re-solve flows through the
  racing portfolio (:mod:`repro.solver.portfolio`) for lower realized
  latency — the *charged* time-to-recover is unchanged, because it is a
  function of the budget and ``solver_nodes``, never of wall-clock
  (MOB002): a faster backend changes when the answer arrives, not what
  recovery costs in the deterministic model.
* ``migration_seconds`` — restoring the dropped GPU's stage state from the
  DRAM checkpoint.  Mobius keeps parameters in DRAM by design, so only the
  dead GPU's working set (the FP16 parameters of its stages) must be
  re-staged; the cost model divides those bytes by the surviving server's
  PCIe link bandwidth (the bottleneck edge of any DRAM path).

Infeasibility is a first-class outcome: if the model cannot be partitioned
onto N-1 GPUs, :func:`replan_after_dropout` propagates the typed
:class:`~repro.core.partition.PlanInfeasibleError` for the chaos harness
to report.
"""

from __future__ import annotations

import dataclasses

from repro.core.api import MobiusConfig, MobiusPlanReport, plan_mobius
from repro.core.partition import PlanInfeasibleError
from repro.hardware.topology import Topology
from repro.models.spec import ModelSpec

__all__ = [
    "surviving_topology",
    "ReplanCostModel",
    "ReplanResult",
    "replan_after_dropout",
]


def surviving_topology(topology: Topology, dropped_gpu: int) -> Topology:
    """The server topology after ``dropped_gpu`` is removed.

    The dead GPU leaves its root complex; a root complex with no remaining
    GPUs is dropped entirely (its switch and uplink serve nobody).  GPU
    indices are renumbered densely, preserving the order of survivors.

    Raises:
        ValueError: If ``dropped_gpu`` is out of range.
        PlanInfeasibleError: If no GPUs survive.
    """
    if not 0 <= dropped_gpu < topology.n_gpus:
        raise ValueError(
            f"gpu index {dropped_gpu} out of range [0, {topology.n_gpus})"
        )
    rc = topology.root_complex_of(dropped_gpu)
    groups = list(topology.groups)
    groups[rc] -= 1
    groups = [g for g in groups if g > 0]
    if not groups:
        raise PlanInfeasibleError(
            f"no GPUs survive the dropout of gpu {dropped_gpu} "
            f"on {topology.name!r}"
        )
    return Topology(
        topology.gpu_spec,
        groups,
        pcie_bandwidth=topology.pcie_bandwidth,
        dram_bandwidth=topology.dram_bandwidth,
        nvlink_bandwidth=topology.nvlink_bandwidth,
        name=f"{topology.name} -gpu{dropped_gpu}",
    )


@dataclasses.dataclass(frozen=True)
class ReplanCostModel:
    """Deterministic model of recovery latency.

    Attributes:
        replan_seconds: Planner latency to charge; ``None`` charges the
            config's MIP search budget (``partition_time_limit``), the
            deterministic upper bound on the realized solve time.
        migration_overhead: Multiplier on the checkpoint-restage time
            (protocol overhead, verification reads; 1.0 = raw copy).
    """

    replan_seconds: float | None = None
    migration_overhead: float = 1.0

    def __post_init__(self) -> None:
        if self.replan_seconds is not None and self.replan_seconds < 0:
            raise ValueError(
                f"replan_seconds must be >= 0, got {self.replan_seconds}"
            )
        if self.migration_overhead < 1:
            raise ValueError(
                f"migration_overhead must be >= 1, got {self.migration_overhead}"
            )


@dataclasses.dataclass(frozen=True)
class ReplanResult:
    """A successful elastic re-plan onto the surviving GPUs.

    Attributes:
        dropped_gpu: The GPU that died (index in the *original* topology).
        topology: The surviving server.
        plan_report: The fresh planning output for the survivors.
        replan_seconds: Modeled planner latency.
        migration_bytes: Checkpoint state re-staged from DRAM.
        migration_seconds: Modeled restage time over the PCIe path.
    """

    dropped_gpu: int
    topology: Topology
    plan_report: MobiusPlanReport
    replan_seconds: float
    migration_bytes: float
    migration_seconds: float

    @property
    def time_to_recover(self) -> float:
        """Seconds from dropout detection to training resumption."""
        return self.replan_seconds + self.migration_seconds

    @property
    def solver_nodes(self) -> int:
        """Branch & bound nodes the re-plan's partition solve explored.

        With a warm start from the pre-fault plan this is typically far
        below a cold solve — the recovery-latency headline of the
        incremental re-solve path."""
        return self.plan_report.partition_result.nodes_explored

    @property
    def warm_started(self) -> bool:
        """Whether the re-plan's partition solve was seeded by a previous
        solution (see ``repro.solver.warmstart.WarmStartContext``)."""
        return getattr(self.plan_report.partition_result, "warm_started", False)

    @property
    def solver_backend(self) -> str:
        """Which portfolio backend answered the re-plan (``"bnb"`` unless
        ``config.solver_mode == "portfolio"`` let HiGHS win the race)."""
        return getattr(self.plan_report.partition_result, "solver_backend", "bnb")


def replan_after_dropout(
    model: ModelSpec,
    topology: Topology,
    config: MobiusConfig,
    dropped_gpu: int,
    *,
    cost: ReplanCostModel = ReplanCostModel(),
    old_plan_report: MobiusPlanReport | None = None,
) -> ReplanResult:
    """Re-solve partition and mapping for the server minus ``dropped_gpu``.

    Args:
        model: The model being trained.
        topology: The original (pre-fault) server.
        config: Planner knobs; reused verbatim for the re-solve, so the
            recovery plan is held to the same constraints as the original.
        dropped_gpu: Index of the dead GPU in ``topology``.
        cost: Recovery latency model.
        old_plan_report: The plan in force when the GPU died; re-planned
            from scratch when omitted.  Determines which stage state must
            be migrated.

    Raises:
        PlanInfeasibleError: If the model cannot be partitioned onto the
            surviving GPUs (or none survive).
    """
    if old_plan_report is None:
        old_plan_report = plan_mobius(model, topology, config)
    survivors = surviving_topology(topology, dropped_gpu)
    plan_report = plan_mobius(model, survivors, config)

    old_plan = old_plan_report.plan
    stage_costs = old_plan.partition.stage_costs(old_plan_report.cost_model)
    migration_bytes = float(
        sum(
            stage_costs[stage].param_bytes
            for stage in old_plan.stages_of_gpu(dropped_gpu)
        )
    )
    migration_seconds = (
        cost.migration_overhead * migration_bytes / survivors.pcie_bandwidth
    )
    replan_seconds = (
        cost.replan_seconds
        if cost.replan_seconds is not None
        else config.partition_time_limit
    )
    return ReplanResult(
        dropped_gpu=dropped_gpu,
        topology=survivors,
        plan_report=plan_report,
        replan_seconds=replan_seconds,
        migration_bytes=migration_bytes,
        migration_seconds=migration_seconds,
    )
