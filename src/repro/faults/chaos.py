"""Chaos harness: the fault corpus crossed with the verification corpus.

``repro chaos`` runs every :mod:`repro.check` corpus cell under a fixed
menu of fault scenarios and *proves* recovery rather than eyeballing it:

* every executed trace (faulted, degraded or re-planned) must pass
  :func:`repro.check.trace_check.sanitize_run`;
* every post-dropout re-plan must pass
  :func:`repro.check.plan_check.check_plan` and
  :func:`repro.check.mapping_check.check_mapping` on the surviving
  topology;
* infeasible recovery (the model cannot fit on N-1 GPUs) is reported as a
  typed outcome, not a crash.

The report carries goodput (samples per second over an ``n_steps``
training window, charging wasted work and time-to-recover) and is fully
deterministic: same seed + schedule = byte-identical JSON.  No wall-clock
values enter the report — re-planning latency uses the modeled budget from
:class:`repro.faults.replan.ReplanCostModel`.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Callable, Sequence

from repro.check.corpus import CorpusCell, default_corpus
from repro.check.findings import CheckReport
from repro.check.mapping_check import check_mapping
from repro.check.plan_check import check_plan
from repro.check.trace_check import sanitize_run
from repro.core.api import MobiusPlanReport, plan_mobius
from repro.core.partition import PlanInfeasibleError
from repro.core.plan import ExecutionPlan
from repro.faults.models import (
    FaultSchedule,
    FlakyTransfers,
    GpuDropout,
    LinkDegradation,
    StragglerGpu,
)
from repro.faults.recovery import FaultedStep, RetryPolicy, run_step
from repro.faults.replan import ReplanCostModel, replan_after_dropout

__all__ = [
    "SCENARIOS",
    "build_schedule",
    "ChaosCellResult",
    "ChaosReport",
    "run_chaos_cell",
    "run_chaos",
    "main",
]

#: The fault menu every corpus cell is run through.
SCENARIOS = ("clean", "dropout", "degraded-link", "straggler", "flaky")

#: Dropout strikes mid-step: 1.5 clean steps into the training window.
_DROPOUT_AT_STEPS = 1.5
#: Persistent degraded link runs at half bandwidth (a x16 -> x8 retrain).
_DEGRADED_FACTOR = 0.5
#: Straggler GPU computes 1.5x slower for the whole run.
_STRAGGLER_SLOWDOWN = 1.5
#: Per-attempt transfer failure probability in the flaky scenario.
_FLAKY_RATE = 0.08


def build_schedule(
    scenario: str,
    cell: CorpusCell,
    seed: int,
    clean_step_seconds: float,
    plan: ExecutionPlan,
) -> FaultSchedule:
    """The fault schedule for one (scenario, cell) pair.

    Faults reference concrete resources of the cell: the dropout kills the
    last GPU, the degraded link is root complex 0's uplink (shared by every
    GPU in group 0), and the straggler is the GPU executing the plan's last
    stage — guaranteed real compute on the critical path (the first stage
    can be a zero-FLOP embedding stage, where a slowdown would be free).
    """
    if scenario == "clean":
        return FaultSchedule(seed)
    if scenario == "dropout":
        return FaultSchedule(
            seed,
            (
                GpuDropout(
                    gpu=cell.topology.n_gpus - 1,
                    time=_DROPOUT_AT_STEPS * clean_step_seconds,
                ),
            ),
        )
    if scenario == "degraded-link":
        return FaultSchedule(
            seed, (LinkDegradation(edge=("sw0", "rc0"), factor=_DEGRADED_FACTOR),)
        )
    if scenario == "straggler":
        straggler = plan.mapping.gpu_of_stage(plan.n_stages - 1)
        return FaultSchedule(
            seed, (StragglerGpu(gpu=straggler, slowdown=_STRAGGLER_SLOWDOWN),)
        )
    if scenario == "flaky":
        return FaultSchedule(seed, (FlakyTransfers(failure_rate=_FLAKY_RATE),))
    raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")


@dataclasses.dataclass(frozen=True)
class ChaosCellResult:
    """Outcome of one (corpus cell, fault scenario) pair.

    Attributes:
        cell: Corpus cell name.
        scenario: Fault scenario name.
        status: ``"ok"`` (ran and recovered) or ``"infeasible"`` (dropout
            recovery impossible on the surviving GPUs, a typed outcome).
        degraded: Whether any step fell back to degraded-mode execution.
        n_retries: Successfully retried transfer attempts.
        clean_step_seconds: Fault-free step time for this cell.
        faulted_step_seconds: Steady-state step time under the fault
            (post-recovery step time for dropout).
        time_to_recover: Re-plan + state-migration latency (dropout only).
        samples: Samples processed over the training window.
        total_seconds: Wall time of the window, charging wasted work and
            recovery.
        goodput: ``samples / total_seconds``.
        goodput_clean: Fault-free samples/s for the same cell.
        check_errors: Error-severity findings from trace/plan/mapping
            checkers (0 for a healthy run).
        detail: Human-readable note (e.g. the infeasibility message).
    """

    cell: str
    scenario: str
    status: str
    degraded: bool
    n_retries: int
    clean_step_seconds: float
    faulted_step_seconds: float
    time_to_recover: float
    samples: float
    total_seconds: float
    goodput: float
    goodput_clean: float
    check_errors: int
    detail: str = ""

    @property
    def ok(self) -> bool:
        """A cell passes if it ran checker-clean or was typed-infeasible."""
        return self.check_errors == 0 and self.status in ("ok", "infeasible")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ChaosReport:
    """The full chaos matrix: corpus cells x fault scenarios."""

    seed: int
    n_steps: int
    results: tuple[ChaosCellResult, ...]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_steps": self.n_steps,
            "ok": self.ok,
            "n_results": len(self.results),
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable table, one line per (cell, scenario)."""
        lines = []
        for r in self.results:
            flags = []
            if r.degraded:
                flags.append("degraded")
            if r.n_retries:
                flags.append(f"{r.n_retries} retries")
            if r.time_to_recover:
                flags.append(f"ttr {r.time_to_recover:.2f}s")
            extra = f" ({', '.join(flags)})" if flags else ""
            state = "PASS" if r.ok else "FAIL"
            lines.append(
                f"{state} {r.cell} / {r.scenario}: {r.status}, "
                f"goodput {r.goodput:.3f}/s vs clean {r.goodput_clean:.3f}/s"
                f"{extra}"
            )
        lines.append(f"{sum(not r.ok for r in self.results)} failing cell(s)")
        return "\n".join(lines)


def _check_step(step: FaultedStep, topology) -> CheckReport:
    report = CheckReport()
    report.extend(sanitize_run(list(step.tasks), step.trace, topology))
    return report


def run_chaos_cell(
    cell: CorpusCell,
    scenario: str,
    *,
    seed: int = 0,
    n_steps: int = 4,
    retry_policy: RetryPolicy = RetryPolicy(),
    replan_cost: ReplanCostModel = ReplanCostModel(),
    plan_report: MobiusPlanReport | None = None,
) -> ChaosCellResult:
    """Run one corpus cell under one fault scenario and verify recovery."""
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    if plan_report is None:
        plan_report = plan_mobius(cell.model, cell.topology, cell.config)
    plan = plan_report.plan
    cost_model = plan_report.cost_model
    exec_kwargs = dict(
        retry_policy=retry_policy,
        prefetch=cell.config.prefetch,
        use_priorities=cell.config.use_priorities,
    )

    clean = run_step(plan, cell.topology, cost_model, FaultSchedule(seed), **exec_kwargs)
    t_clean = clean.step_seconds
    samples_per_step = plan.n_microbatches * plan.microbatch_size
    goodput_clean = samples_per_step / t_clean

    schedule = build_schedule(scenario, cell, seed, t_clean, plan)
    checks = CheckReport()

    if not schedule.dropouts:
        step = run_step(plan, cell.topology, cost_model, schedule, **exec_kwargs)
        checks.extend(_check_step(step, cell.topology))
        samples = float(n_steps * samples_per_step)
        total = n_steps * step.step_seconds
        return ChaosCellResult(
            cell=cell.name,
            scenario=scenario,
            status="ok",
            degraded=step.degraded,
            n_retries=step.n_retries,
            clean_step_seconds=t_clean,
            faulted_step_seconds=step.step_seconds,
            time_to_recover=0.0,
            samples=samples,
            total_seconds=total,
            goodput=samples / total,
            goodput_clean=goodput_clean,
            check_errors=len(checks.errors),
        )

    # Dropout: steps completed before the fault survive; the in-flight step
    # is wasted; then recovery (re-plan + migration) and the remaining
    # steps on the surviving GPUs.
    dropout = schedule.dropouts[0]
    completed = min(n_steps, int(dropout.time // t_clean))
    remaining = n_steps - completed
    try:
        replan = replan_after_dropout(
            cell.model,
            cell.topology,
            cell.config,
            dropout.gpu,
            cost=replan_cost,
            old_plan_report=plan_report,
        )
    except PlanInfeasibleError as err:
        samples = float(completed * samples_per_step)
        total = dropout.time if remaining else completed * t_clean
        return ChaosCellResult(
            cell=cell.name,
            scenario=scenario,
            status="infeasible",
            degraded=False,
            n_retries=0,
            clean_step_seconds=t_clean,
            faulted_step_seconds=float("nan"),
            time_to_recover=0.0,
            samples=samples,
            total_seconds=total,
            goodput=samples / total if total else 0.0,
            goodput_clean=goodput_clean,
            check_errors=0,
            detail=str(err),
        )

    new_report = replan.plan_report
    new_plan = new_report.plan
    bandwidth = (
        cell.config.bandwidth
        if cell.config.bandwidth is not None
        else replan.topology.pcie_bandwidth
    )
    checks.extend(
        check_plan(new_plan, replan.topology, new_report.cost_model, bandwidth=bandwidth)
    )
    checks.extend(check_mapping(new_plan.mapping, replan.topology, new_plan.n_stages))

    recovered = run_step(
        new_plan,
        replan.topology,
        new_report.cost_model,
        schedule.without_dropouts(),
        **exec_kwargs,
    )
    checks.extend(_check_step(recovered, replan.topology))

    new_samples_per_step = new_plan.n_microbatches * new_plan.microbatch_size
    samples = float(
        completed * samples_per_step + remaining * new_samples_per_step
    )
    total = (
        dropout.time + replan.time_to_recover + remaining * recovered.step_seconds
        if remaining
        else completed * t_clean
    )
    return ChaosCellResult(
        cell=cell.name,
        scenario=scenario,
        status="ok",
        degraded=recovered.degraded,
        n_retries=recovered.n_retries,
        clean_step_seconds=t_clean,
        faulted_step_seconds=recovered.step_seconds,
        time_to_recover=replan.time_to_recover,
        samples=samples,
        total_seconds=total,
        goodput=samples / total,
        goodput_clean=goodput_clean,
        check_errors=len(checks.errors),
    )


def run_chaos(
    cells: Sequence[CorpusCell] | None = None,
    *,
    seed: int = 0,
    n_steps: int = 4,
    scenarios: Sequence[str] = SCENARIOS,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run the full chaos matrix and aggregate one report.

    Args:
        cells: Corpus cells (the :mod:`repro.check` default corpus when
            ``None``).
        seed: Fault-schedule seed; determines every flaky-transfer coin.
        n_steps: Training-window length used for goodput accounting.
        scenarios: Scenario subset to run.
        progress: Optional per-(cell, scenario) callback for the CLI.
    """
    results = []
    for cell in cells if cells is not None else default_corpus():
        plan_report = plan_mobius(cell.model, cell.topology, cell.config)
        for scenario in scenarios:
            if progress is not None:
                progress(f"{cell.name} / {scenario}")
            results.append(
                run_chaos_cell(
                    cell,
                    scenario,
                    seed=seed,
                    n_steps=n_steps,
                    plan_report=plan_report,
                )
            )
    return ChaosReport(seed=seed, n_steps=n_steps, results=tuple(results))


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.faults.chaos``)."""
    import argparse

    parser = argparse.ArgumentParser(description="Mobius chaos testing harness")
    parser.add_argument("--json", action="store_true", help="print the JSON report")
    parser.add_argument(
        "--out", default="BENCH_chaos.json", metavar="PATH",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0, help="fault-schedule seed")
    parser.add_argument(
        "--steps", type=int, default=4, help="training-window length in steps"
    )
    args = parser.parse_args(argv)

    progress = None if args.json else lambda name: print(f"chaos {name} ...")
    report = run_chaos(seed=args.seed, n_steps=args.steps, progress=progress)
    with open(args.out, "w") as f:
        f.write(report.to_json() + "\n")
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
