"""Presolve reductions for LPs/MILPs.

Standard reductions applied before the simplex / branch & bound:

1. **fixed variables** (``lb == ub``) are substituted into constraints and
   the objective;
2. **singleton inequality rows** (``a * x <= b`` with one nonzero) are
   converted into variable bounds;
3. **empty rows** are checked for trivial feasibility and dropped.

Returns a smaller :class:`~repro.solver.model.StandardForm` plus the recipe
to lift a reduced solution back to the original variable space.  Used by
:class:`~repro.solver.branch_bound.BranchAndBoundSolver` via the
``presolve=True`` flag.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.solver.model import StandardForm

__all__ = ["PresolveResult", "presolve", "postsolve"]

_TOL = 1e-9


@dataclasses.dataclass
class PresolveResult:
    """A reduced form plus the mapping back to the original space."""

    form: StandardForm
    kept: np.ndarray  # original indices of surviving variables
    fixed_values: np.ndarray  # values for all original variables (fixed ones set)
    infeasible: bool = False

    @property
    def n_removed(self) -> int:
        return len(self.fixed_values) - len(self.kept)


def presolve(form: StandardForm) -> PresolveResult:
    """Apply the reductions; never changes the optimal objective value."""
    n = len(form.c)
    lb = form.lb.astype(float).copy()
    ub = form.ub.astype(float).copy()
    a_ub = form.a_ub.copy()
    b_ub = form.b_ub.astype(float).copy()

    # Reduction 2/3: singleton and empty inequality rows -> bounds.
    keep_rows = []
    for row in range(a_ub.shape[0]):
        nonzero = np.flatnonzero(np.abs(a_ub[row]) > _TOL)
        if len(nonzero) == 0:
            if b_ub[row] < -_TOL:
                return PresolveResult(form, np.arange(n), np.zeros(n), infeasible=True)
            continue  # trivially satisfied
        if len(nonzero) == 1:
            j = int(nonzero[0])
            coef = a_ub[row, j]
            bound = b_ub[row] / coef
            if coef > 0:
                ub[j] = min(ub[j], bound)
            else:
                lb[j] = max(lb[j], bound)
            continue
        keep_rows.append(row)
    a_ub = a_ub[keep_rows]
    b_ub = b_ub[np.array(keep_rows, dtype=int)] if keep_rows else np.zeros(0)

    # Integrality can tighten bounds further.
    integer = form.integer
    lb = np.where(integer & np.isfinite(lb), np.ceil(lb - _TOL), lb)
    ub = np.where(integer & np.isfinite(ub), np.floor(ub + _TOL), ub)
    if np.any(lb > ub + _TOL):
        return PresolveResult(form, np.arange(n), np.zeros(n), infeasible=True)

    # Reduction 1: fixed variables.
    fixed_mask = np.isfinite(lb) & np.isfinite(ub) & (ub - lb <= _TOL)
    kept = np.flatnonzero(~fixed_mask)
    fixed_values = np.where(fixed_mask, (lb + ub) / 2.0, 0.0)

    if fixed_mask.any():
        if a_ub.size:
            b_ub = b_ub - a_ub[:, fixed_mask] @ fixed_values[fixed_mask]
            a_ub = a_ub[:, kept]
        a_eq = form.a_eq
        b_eq = form.b_eq.astype(float)
        if a_eq.size:
            b_eq = b_eq - a_eq[:, fixed_mask] @ fixed_values[fixed_mask]
            a_eq = a_eq[:, kept]
        c = form.c[kept]
    else:
        a_eq, b_eq, c = form.a_eq, form.b_eq, form.c

    reduced = StandardForm(
        c=c,
        a_ub=a_ub if a_ub.size else np.zeros((0, len(kept))),
        b_ub=b_ub,
        a_eq=a_eq if a_eq.size else np.zeros((0, len(kept))),
        b_eq=b_eq,
        lb=lb[kept],
        ub=ub[kept],
        integer=integer[kept],
        flip_objective=form.flip_objective,
    )
    return PresolveResult(form=reduced, kept=kept, fixed_values=fixed_values)


def postsolve(result: PresolveResult, x_reduced: np.ndarray) -> np.ndarray:
    """Lift a reduced-space solution back to the original variables."""
    x = result.fixed_values.copy()
    x[result.kept] = x_reduced
    return x


def objective_offset(form: StandardForm, result: PresolveResult) -> float:
    """Objective contribution of the fixed variables (minimisation form)."""
    fixed_mask = np.ones(len(result.fixed_values), dtype=bool)
    fixed_mask[result.kept] = False
    return float(form.c[fixed_mask] @ result.fixed_values[fixed_mask])
