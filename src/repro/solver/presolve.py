"""Presolve reductions for LPs/MILPs.

Reductions applied before the simplex / branch & bound, in order:

1. **bound propagation** — activity-based tightening: each ``<=`` row's
   minimum activity must not exceed its right-hand side, and the residual
   activity implies a bound on every variable in the row's support
   (rounded for integer variables);
2. **singleton inequality rows** (``a * x <= b`` with one nonzero) are
   converted into variable bounds;
3. **empty rows** are checked for trivial feasibility and dropped;
4. **redundant rows** (maximum activity already ``<= b``) are dropped;
5. **duplicate rows** (identical coefficient vectors) keep only the
   tightest right-hand side;
6. **coefficient reduction** — all-integer rows are divided by the GCD of
   their coefficients and the right-hand side floored;
7. **fixed variables** (``lb == ub``) are substituted into constraints and
   the objective.

Returns a smaller :class:`~repro.solver.model.StandardForm` plus the recipe
to lift a reduced solution back to the original variable space.  Used by
:class:`~repro.solver.branch_bound.BranchAndBoundSolver` via the
``presolve=True`` flag.

:func:`propagate_bounds` is the incremental entry point: branch & bound
re-runs just the propagation step on each node's branching bounds (the rows
never change down the tree), detecting infeasible children and shrinking
child LPs without rebuilding the form.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.solver.model import StandardForm

__all__ = [
    "PresolveResult",
    "presolve",
    "postsolve",
    "objective_offset",
    "propagate_bounds",
]

_TOL = 1e-9
_FEAS_TOL = 1e-7


@dataclasses.dataclass
class PresolveResult:
    """A reduced form plus the mapping back to the original space."""

    form: StandardForm
    kept: np.ndarray  # original indices of surviving variables
    fixed_values: np.ndarray  # values for all original variables (fixed ones set)
    infeasible: bool = False

    @property
    def n_removed(self) -> int:
        return len(self.fixed_values) - len(self.kept)


def propagate_bounds(
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    integer: np.ndarray,
    *,
    max_rounds: int = 10,
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Activity-based bound tightening over ``a_ub @ x <= b_ub``.

    Returns ``(lb, ub, feasible)`` with tightened copies of the bounds.
    ``feasible=False`` means a row's minimum activity exceeds its
    right-hand side or a variable's bounds crossed — the node can be
    fathomed without an LP solve.

    This is the incremental presolve used at every branch & bound node:
    branching only changes ``lb``/``ub``, so re-running propagation against
    the fixed rows is sound and cheap (``O(rounds * nnz)``).
    """
    lb = lb.astype(float).copy()
    ub = ub.astype(float).copy()
    if np.any(lb > ub + _TOL):
        return lb, ub, False
    m = a_ub.shape[0] if a_ub.size else 0
    supports = [np.flatnonzero(np.abs(a_ub[i]) > _TOL) for i in range(m)]
    for _ in range(max_rounds):
        changed = False
        for i in range(m):
            support = supports[i]
            if len(support) == 0:
                if b_ub[i] < -_FEAS_TOL:
                    return lb, ub, False
                continue
            coefs = a_ub[i, support]
            # Minimum activity: positive coefficients at lb, negative at ub.
            terms = np.where(coefs > 0, coefs * lb[support], coefs * ub[support])
            finite = np.isfinite(terms)
            n_inf = int(len(terms) - finite.sum())
            min_act = float(terms[finite].sum())
            if n_inf == 0 and min_act > b_ub[i] + _FEAS_TOL:
                return lb, ub, False
            if n_inf > 1:
                continue  # every residual activity is -inf: nothing to learn
            for k, j in enumerate(support):
                term_finite = bool(finite[k])
                if n_inf == 1 and term_finite:
                    continue  # the residual (without j) is still -inf
                residual = min_act - (terms[k] if term_finite else 0.0)
                bound = (b_ub[i] - residual) / coefs[k]
                if coefs[k] > 0:
                    if integer[j]:
                        bound = math.floor(bound + _FEAS_TOL)
                    if bound < ub[j] - _TOL:
                        ub[j] = bound
                        changed = True
                else:
                    if integer[j]:
                        bound = math.ceil(bound - _FEAS_TOL)
                    if bound > lb[j] + _TOL:
                        lb[j] = bound
                        changed = True
                if lb[j] > ub[j] + _TOL:
                    return lb, ub, False
        if not changed:
            break
    return lb, ub, True


def _max_activity(coefs: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> float:
    """Maximum of ``coefs @ x`` over the box (``inf`` when unbounded)."""
    support = np.abs(coefs) > _TOL  # 0 * inf would poison the sum with NaN
    c = coefs[support]
    terms = np.where(c > 0, c * ub[support], c * lb[support])
    return float(terms.sum())


def _reduce_integer_row(
    coefs: np.ndarray, rhs: float, integer_vars: bool
) -> tuple[np.ndarray, float]:
    """Divide an all-integer row by its coefficient GCD, flooring the rhs."""
    if not integer_vars:
        return coefs, rhs
    rounded = np.round(coefs)
    if np.any(np.abs(coefs - rounded) > _TOL):
        return coefs, rhs
    nonzero = rounded[np.abs(rounded) > 0.5].astype(int)
    if len(nonzero) == 0:
        return coefs, rhs
    g = int(np.gcd.reduce(np.abs(nonzero)))
    if g <= 1:
        return coefs, rhs
    return rounded / g, math.floor(rhs / g + _FEAS_TOL)


def presolve(form: StandardForm, *, max_rounds: int = 10) -> PresolveResult:
    """Apply the reductions; never changes the optimal objective value."""
    n = len(form.c)
    a_ub = form.a_ub.astype(float).copy()
    b_ub = form.b_ub.astype(float).copy()
    integer = form.integer

    def infeasible() -> PresolveResult:
        return PresolveResult(form, np.arange(n), np.zeros(n), infeasible=True)

    # Reduction 1: activity-based bound propagation (includes integrality
    # rounding and bound-crossing detection).
    lb, ub, feasible = propagate_bounds(
        a_ub, b_ub, form.lb, form.ub, integer, max_rounds=max_rounds
    )
    if not feasible:
        return infeasible()

    # Reductions 2-5: row screening against the tightened box.
    keep_rows: list[int] = []
    seen: dict[bytes, int] = {}
    for row in range(a_ub.shape[0]):
        nonzero = np.flatnonzero(np.abs(a_ub[row]) > _TOL)
        if len(nonzero) == 0:
            if b_ub[row] < -_FEAS_TOL:
                return infeasible()
            continue  # trivially satisfied
        if len(nonzero) == 1:
            j = int(nonzero[0])
            coef = a_ub[row, j]
            bound = b_ub[row] / coef
            if coef > 0:
                if integer[j]:
                    bound = math.floor(bound + _FEAS_TOL)
                ub[j] = min(ub[j], bound)
            else:
                if integer[j]:
                    bound = math.ceil(bound - _FEAS_TOL)
                lb[j] = max(lb[j], bound)
            if lb[j] > ub[j] + _TOL:
                return infeasible()
            continue
        # Redundant: satisfied by every point of the box.
        if _max_activity(a_ub[row], lb, ub) <= b_ub[row] + _FEAS_TOL:
            continue
        # Coefficient reduction on all-integer support.
        all_int = bool(integer[nonzero].all())
        a_ub[row], b_ub[row] = _reduce_integer_row(a_ub[row], b_ub[row], all_int)
        # Duplicate coefficient vectors keep the tightest rhs.
        key = a_ub[row].tobytes()
        prev = seen.get(key)
        if prev is not None:
            b_ub[prev] = min(b_ub[prev], b_ub[row])
            continue
        seen[key] = row
        keep_rows.append(row)
    a_ub = a_ub[keep_rows]
    b_ub = b_ub[np.array(keep_rows, dtype=int)] if keep_rows else np.zeros(0)

    if np.any(lb > ub + _TOL):
        return infeasible()

    # Reduction 7: fixed variables.
    fixed_mask = np.isfinite(lb) & np.isfinite(ub) & (ub - lb <= _TOL)
    kept = np.flatnonzero(~fixed_mask)
    fixed_values = np.where(fixed_mask, (lb + ub) / 2.0, 0.0)

    if fixed_mask.any():
        if a_ub.size:
            b_ub = b_ub - a_ub[:, fixed_mask] @ fixed_values[fixed_mask]
            a_ub = a_ub[:, kept]
        a_eq = form.a_eq
        b_eq = form.b_eq.astype(float)
        if a_eq.size:
            b_eq = b_eq - a_eq[:, fixed_mask] @ fixed_values[fixed_mask]
            a_eq = a_eq[:, kept]
        c = form.c[kept]
    else:
        a_eq, b_eq, c = form.a_eq, form.b_eq, form.c

    reduced = StandardForm(
        c=c,
        a_ub=a_ub if a_ub.size else np.zeros((0, len(kept))),
        b_ub=b_ub,
        a_eq=a_eq if a_eq.size else np.zeros((0, len(kept))),
        b_eq=b_eq,
        lb=lb[kept],
        ub=ub[kept],
        integer=integer[kept],
        flip_objective=form.flip_objective,
    )
    return PresolveResult(form=reduced, kept=kept, fixed_values=fixed_values)


def postsolve(result: PresolveResult, x_reduced: np.ndarray) -> np.ndarray:
    """Lift a reduced-space solution back to the original variables."""
    x = result.fixed_values.copy()
    x[result.kept] = x_reduced
    return x


def objective_offset(form: StandardForm, result: PresolveResult) -> float:
    """Objective contribution of the fixed variables (minimisation form)."""
    fixed_mask = np.ones(len(result.fixed_values), dtype=bool)
    fixed_mask[result.kept] = False
    return float(form.c[fixed_mask] @ result.fixed_values[fixed_mask])
