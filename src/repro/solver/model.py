"""Algebraic model builder for linear and mixed-integer programs.

The paper solves its partitioning MIP with the commercial Gurobi optimizer;
this subpackage replaces it with a from-scratch stack: an expression-level
model builder (this module), a dense two-phase simplex for LP relaxations
(:mod:`repro.solver.simplex`), best-first branch & bound
(:mod:`repro.solver.branch_bound`), and an optional HiGHS backend via
:func:`scipy.optimize.milp` (:mod:`repro.solver.scipy_backend`).

Example:
    >>> lp = LinearProgram("knapsack")
    >>> x = [lp.add_var(f"x{i}", ub=1, integer=True) for i in range(3)]
    >>> _ = lp.add_constraint(2 * x[0] + 3 * x[1] + 4 * x[2] <= 5)
    >>> lp.set_objective(3 * x[0] + 4 * x[1] + 5 * x[2], minimize=False)
    >>> lp.n_vars
    3
"""

from __future__ import annotations

import dataclasses
import enum
import math
from collections.abc import Iterable

import numpy as np

__all__ = [
    "Variable",
    "LinearExpr",
    "Constraint",
    "ConstraintSense",
    "LinearProgram",
    "StandardForm",
]


class ConstraintSense(enum.Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


class LinearExpr:
    """An affine expression ``sum(coef_i * var_i) + const``.

    Supports ``+``, ``-``, scalar ``*``/``/`` and comparisons, which build
    :class:`Constraint` objects.
    """

    __slots__ = ("coefs", "const")

    def __init__(self, coefs: dict[int, float] | None = None, const: float = 0.0) -> None:
        self.coefs = dict(coefs or {})
        self.const = const

    @staticmethod
    def _as_expr(value: "LinearExpr | Variable | float | int") -> "LinearExpr":
        if isinstance(value, LinearExpr):
            return value
        if isinstance(value, Variable):
            return LinearExpr({value.index: 1.0})
        if isinstance(value, (int, float)):
            return LinearExpr(const=float(value))
        raise TypeError(f"cannot use {type(value).__name__} in a linear expression")

    def _combine(self, other, sign: float) -> "LinearExpr":
        other = self._as_expr(other)
        coefs = dict(self.coefs)
        for index, coef in other.coefs.items():
            coefs[index] = coefs.get(index, 0.0) + sign * coef
        return LinearExpr(coefs, self.const + sign * other.const)

    def __add__(self, other):
        return self._combine(other, 1.0)

    __radd__ = __add__

    def __sub__(self, other):
        return self._combine(other, -1.0)

    def __rsub__(self, other):
        return self._as_expr(other)._combine(self, -1.0)

    def __mul__(self, scalar):
        if not isinstance(scalar, (int, float)):
            raise TypeError("linear expressions only support scalar multiplication")
        return LinearExpr(
            {i: c * scalar for i, c in self.coefs.items()}, self.const * scalar
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        return self * (1.0 / scalar)

    def __neg__(self):
        return self * -1.0

    def __le__(self, other):
        return Constraint(self - other, ConstraintSense.LE)

    def __ge__(self, other):
        return Constraint(self - other, ConstraintSense.GE)

    def __eq__(self, other):  # type: ignore[override]
        return Constraint(self - other, ConstraintSense.EQ)

    __hash__ = None  # type: ignore[assignment]

    def evaluate(self, x: np.ndarray) -> float:
        """Value of the expression at point ``x``."""
        return self.const + sum(coef * x[i] for i, coef in self.coefs.items())


@dataclasses.dataclass(eq=False)
class Variable:
    """A decision variable; create through :meth:`LinearProgram.add_var`."""

    index: int
    name: str
    lb: float
    ub: float
    integer: bool

    # Arithmetic delegates to LinearExpr.
    def _expr(self) -> LinearExpr:
        return LinearExpr({self.index: 1.0})

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return other - self._expr()

    def __mul__(self, scalar):
        return self._expr() * scalar

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        return self._expr() / scalar

    def __neg__(self):
        return -self._expr()

    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self._expr() == other

    __hash__ = None  # type: ignore[assignment]


@dataclasses.dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` — normalised so the RHS lives in ``expr.const``."""

    expr: LinearExpr
    sense: ConstraintSense
    name: str = ""

    @property
    def rhs(self) -> float:
        """Constraint right-hand side after moving the constant over."""
        return -self.expr.const


class LinearProgram:
    """A (mixed-integer) linear program under construction."""

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinearExpr = LinearExpr()
        self.minimize = True

    def add_var(
        self,
        name: str = "",
        *,
        lb: float = 0.0,
        ub: float = math.inf,
        integer: bool = False,
    ) -> Variable:
        """Add a decision variable with bounds ``[lb, ub]``."""
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Variable(len(self.variables), name or f"x{len(self.variables)}", lb, ub, integer)
        self.variables.append(var)
        return var

    def add_binary(self, name: str = "") -> Variable:
        """Add a 0/1 integer variable."""
        return self.add_var(name, lb=0.0, ub=1.0, integer=True)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a comparison of linear expressions, "
                f"got {type(constraint).__name__}"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add_constraint(constraint)

    def set_objective(self, expr: LinearExpr | Variable | float, *, minimize: bool = True) -> None:
        """Set the objective; stored internally as-is with a direction flag."""
        self.objective = LinearExpr._as_expr(expr)
        self.minimize = minimize

    @property
    def n_vars(self) -> int:
        return len(self.variables)

    @property
    def integer_indices(self) -> list[int]:
        return [v.index for v in self.variables if v.integer]

    def to_standard_form(self) -> "StandardForm":
        """Export as dense arrays for the solvers (minimisation form)."""
        n = self.n_vars
        c = np.zeros(n)
        for index, coef in self.objective.coefs.items():
            c[index] = coef
        if not self.minimize:
            c = -c

        rows_ub: list[np.ndarray] = []
        rhs_ub: list[float] = []
        rows_eq: list[np.ndarray] = []
        rhs_eq: list[float] = []
        for constraint in self.constraints:
            row = np.zeros(n)
            for index, coef in constraint.expr.coefs.items():
                row[index] = coef
            rhs = constraint.rhs
            if constraint.sense is ConstraintSense.LE:
                rows_ub.append(row)
                rhs_ub.append(rhs)
            elif constraint.sense is ConstraintSense.GE:
                rows_ub.append(-row)
                rhs_ub.append(-rhs)
            else:
                rows_eq.append(row)
                rhs_eq.append(rhs)

        lb = np.array([v.lb for v in self.variables])
        ub = np.array([v.ub for v in self.variables])
        return StandardForm(
            c=c,
            a_ub=np.vstack(rows_ub) if rows_ub else np.zeros((0, n)),
            b_ub=np.array(rhs_ub),
            a_eq=np.vstack(rows_eq) if rows_eq else np.zeros((0, n)),
            b_eq=np.array(rhs_eq),
            lb=lb,
            ub=ub,
            integer=np.array([v.integer for v in self.variables]),
            flip_objective=not self.minimize,
        )


@dataclasses.dataclass
class StandardForm:
    """Dense minimisation-form arrays: ``min c.x`` s.t. ``a_ub.x <= b_ub``,
    ``a_eq.x == b_eq``, ``lb <= x <= ub``."""

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integer: np.ndarray
    flip_objective: bool

    def objective_value(self, x: np.ndarray) -> float:
        """Objective in the *user's* direction (undoing the min conversion)."""
        value = float(self.c @ x)
        return -value if self.flip_objective else value
