"""Best-first branch & bound for mixed-integer linear programs.

Pairs with the simplex LP backend (or scipy's HiGHS) to solve the paper's
partitioning MIPs without Gurobi.  Nodes are explored best-bound-first;
branching splits on the most fractional integer variable.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import itertools
import math
import time

import numpy as np

from repro.solver.model import LinearProgram, StandardForm
from repro.solver.simplex import LPStatus, solve_standard_form

__all__ = ["MIPStatus", "MIPSolution", "BranchAndBoundSolver"]

_INT_TOL = 1e-6


class MIPStatus(enum.Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped early with an incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NO_SOLUTION = "no_solution"  # stopped early without an incumbent


@dataclasses.dataclass
class MIPSolution:
    """Outcome of a MIP solve.

    ``objective`` is in the user's original direction (max stays max).
    """

    status: MIPStatus
    x: np.ndarray | None = None
    objective: float = math.nan
    nodes_explored: int = 0
    solve_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (MIPStatus.OPTIMAL, MIPStatus.FEASIBLE)


@dataclasses.dataclass(order=True)
class _Node:
    bound: float
    tiebreak: int
    lb: np.ndarray = dataclasses.field(compare=False)
    ub: np.ndarray = dataclasses.field(compare=False)


class BranchAndBoundSolver:
    """MILP solver: LP-relaxation bounds + branching on fractional variables.

    Args:
        lp_backend: ``"simplex"`` (our solver) or ``"scipy"``
            (:func:`scipy.optimize.linprog`, HiGHS).
        max_nodes: Node budget before returning the incumbent.
        time_limit: Wall-clock budget in seconds.
    """

    def __init__(
        self,
        *,
        lp_backend: str = "simplex",
        max_nodes: int = 100_000,
        time_limit: float = 60.0,
        presolve: bool = False,
    ) -> None:
        if lp_backend not in ("simplex", "scipy"):
            raise ValueError(f"unknown lp_backend {lp_backend!r}")
        self.lp_backend = lp_backend
        self.max_nodes = max_nodes
        self.time_limit = time_limit
        self.presolve = presolve

    def solve(self, program: LinearProgram) -> MIPSolution:
        """Solve ``program`` to optimality (or budget exhaustion)."""
        started = time.perf_counter()
        original_form = program.to_standard_form()
        form = original_form
        reduction = None
        if self.presolve:
            from repro.solver.presolve import postsolve, presolve

            reduction = presolve(original_form)
            if reduction.infeasible:
                return MIPSolution(
                    MIPStatus.INFEASIBLE,
                    solve_seconds=time.perf_counter() - started,
                )
            form = reduction.form
        integer = np.flatnonzero(form.integer)

        counter = itertools.count()
        root = _Node(-math.inf, next(counter), form.lb.copy(), form.ub.copy())
        heap = [root]
        incumbent_x: np.ndarray | None = None
        incumbent_obj = math.inf  # minimisation-form objective
        nodes = 0
        saw_infeasible_root = False

        while heap:
            if nodes >= self.max_nodes or time.perf_counter() - started > self.time_limit:
                break
            node = heapq.heappop(heap)
            if node.bound >= incumbent_obj - 1e-9:
                continue
            relaxation = self._solve_lp(form, node.lb, node.ub)
            nodes += 1
            if relaxation.status is LPStatus.INFEASIBLE:
                if nodes == 1:
                    saw_infeasible_root = True
                continue
            if relaxation.status is LPStatus.UNBOUNDED:
                if nodes == 1:
                    return MIPSolution(
                        MIPStatus.UNBOUNDED,
                        nodes_explored=nodes,
                        solve_seconds=time.perf_counter() - started,
                    )
                continue
            assert relaxation.x is not None
            if relaxation.objective >= incumbent_obj - 1e-9:
                continue

            fractional = self._most_fractional(relaxation.x, integer)
            if fractional is None:
                incumbent_x = relaxation.x.copy()
                incumbent_obj = relaxation.objective
                continue

            var, value = fractional
            floor_ub = node.ub.copy()
            floor_ub[var] = math.floor(value)
            if node.lb[var] <= floor_ub[var]:
                heapq.heappush(
                    heap,
                    _Node(relaxation.objective, next(counter), node.lb.copy(), floor_ub),
                )
            ceil_lb = node.lb.copy()
            ceil_lb[var] = math.ceil(value)
            if ceil_lb[var] <= node.ub[var]:
                heapq.heappush(
                    heap,
                    _Node(relaxation.objective, next(counter), ceil_lb, node.ub.copy()),
                )

        elapsed = time.perf_counter() - started
        if incumbent_x is None:
            status = (
                MIPStatus.INFEASIBLE
                if saw_infeasible_root and not heap
                else (MIPStatus.INFEASIBLE if not heap else MIPStatus.NO_SOLUTION)
            )
            return MIPSolution(status, nodes_explored=nodes, solve_seconds=elapsed)

        # Round near-integers exactly.
        x = incumbent_x.copy()
        x[integer] = np.round(x[integer])
        status = MIPStatus.OPTIMAL if not heap or all(
            n.bound >= incumbent_obj - 1e-9 for n in heap
        ) else MIPStatus.FEASIBLE
        if reduction is not None:
            from repro.solver.presolve import postsolve

            x = postsolve(reduction, x)
        return MIPSolution(
            status,
            x=x,
            objective=original_form.objective_value(x),
            nodes_explored=nodes,
            solve_seconds=elapsed,
        )

    # ------------------------------------------------------------------

    def _solve_lp(self, form: StandardForm, lb: np.ndarray, ub: np.ndarray):
        node_form = dataclasses.replace(form, lb=lb, ub=ub)
        if self.lp_backend == "simplex":
            return solve_standard_form(node_form)
        from repro.solver.scipy_backend import solve_lp_scipy

        return solve_lp_scipy(node_form)

    @staticmethod
    def _most_fractional(
        x: np.ndarray, integer: np.ndarray
    ) -> tuple[int, float] | None:
        best_var = None
        best_frac = _INT_TOL
        for var in integer:
            value = x[var]
            frac = abs(value - round(value))
            if frac > best_frac:
                best_frac = frac
                best_var = (int(var), float(value))
        return best_var
