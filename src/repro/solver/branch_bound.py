"""Best-first branch & bound for mixed-integer linear programs.

Pairs with the revised-simplex LP backend (or scipy's HiGHS) to solve the
paper's partitioning MIPs without Gurobi.  The solver is built for the
suite's *sequence* of related instances:

* **deterministic work limits** — the search stops on node/pivot budgets,
  never on wall-clock, so a solve is reproducible across machines
  (``solve_seconds`` is reported but controls nothing);
* **warm starts** — a :class:`~repro.solver.warmstart.WarmStartContext`
  seeds the incumbent; canonical tie-breaking plus tie-exploring pruning
  make the returned solution bit-identical with or without the hint, the
  hint only shrinks the tree;
* **basis reuse** — one :class:`~repro.solver.simplex.RevisedSimplex` is
  built per tree and children re-solve dual-simplex from the parent's
  optimal basis (branching only changes bounds, never rows);
* **root cuts** — Gomory fractional and knapsack cover cuts tighten the
  root relaxation before branching;
* **incremental presolve** — every node re-runs bound propagation against
  the (fixed) rows, fathoming infeasible children without an LP solve;
* **primal heuristics** — rounding and LP diving produce an early
  incumbent at the root.

Nodes are explored best-bound-first with insertion-order tie-breaking
(explicit monotone sequence number — the heap never compares payloads).
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import itertools
import math
import time

import numpy as np

from repro.solver.model import LinearProgram, StandardForm
from repro.solver.simplex import Basis, LPStatus, RevisedSimplex, SimplexError

__all__ = ["MIPStatus", "MIPSolution", "BranchAndBoundSolver"]

_INT_TOL = 1e-6
_OBJ_TOL = 1e-9


class MIPStatus(enum.Enum):
    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped early with an incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NO_SOLUTION = "no_solution"  # stopped early without an incumbent


@dataclasses.dataclass
class MIPSolution:
    """Outcome of a MIP solve.

    ``objective`` is in the user's original direction (max stays max).
    ``solve_seconds`` is reporting only — budgets are nodes and pivots.
    """

    status: MIPStatus
    x: np.ndarray | None = None
    objective: float = math.nan
    nodes_explored: int = 0
    solve_seconds: float = 0.0
    pivots: int = 0
    cuts_added: int = 0
    warm_started: bool = False

    @property
    def ok(self) -> bool:
        return self.status in (MIPStatus.OPTIMAL, MIPStatus.FEASIBLE)


@dataclasses.dataclass(order=True)
class _Node:
    bound: float
    seq: int  # insertion order: the deterministic heap tie-break
    lb: np.ndarray = dataclasses.field(compare=False)
    ub: np.ndarray = dataclasses.field(compare=False)
    basis: Basis | None = dataclasses.field(compare=False, default=None)


class BranchAndBoundSolver:
    """MILP solver: LP-relaxation bounds + branching on fractional variables.

    Args:
        lp_backend: ``"simplex"`` (our solver) or ``"scipy"``
            (:func:`scipy.optimize.linprog`, HiGHS).  Basis reuse and
            Gomory cuts need the simplex backend.
        max_nodes: Deterministic node budget before returning the incumbent.
        max_pivots: Deterministic simplex-pivot budget (simplex backend);
            checked between nodes.
        time_limit: Accepted for API compatibility and **reporting only**
            — the search never consults the clock, so results are
            machine-independent.
        presolve: Run the full presolve reductions at the root.
        propagate: Bound-propagate at every node (fathoms infeasible
            children without an LP solve).
        cuts: Rounds of root cutting planes (0 disables).
        heuristics: Run rounding/diving at the root for an early incumbent.
        reuse_basis: Child LPs warm-start dual simplex from the parent
            basis.  Exposed so benchmarks can measure the pivot savings;
            the returned solution is identical either way.
    """

    def __init__(
        self,
        *,
        lp_backend: str = "simplex",
        max_nodes: int = 100_000,
        max_pivots: int = 5_000_000,
        time_limit: float = 60.0,
        presolve: bool = False,
        propagate: bool = True,
        cuts: int = 2,
        heuristics: bool = True,
        reuse_basis: bool = True,
    ) -> None:
        if lp_backend not in ("simplex", "scipy"):
            raise ValueError(f"unknown lp_backend {lp_backend!r}")
        self.lp_backend = lp_backend
        self.max_nodes = max_nodes
        self.max_pivots = max_pivots
        self.time_limit = time_limit
        self.presolve = presolve
        self.propagate = propagate
        self.cuts = cuts if lp_backend == "simplex" else 0
        self.heuristics = heuristics
        self.reuse_basis = reuse_basis and lp_backend == "simplex"

    def solve(
        self, program: LinearProgram, *, warm_start: object = None
    ) -> MIPSolution:
        """Solve ``program`` to optimality (or budget exhaustion).

        ``warm_start`` may be a
        :class:`~repro.solver.warmstart.WarmStartContext` or any object
        with an ``x`` attribute in the original variable space.  A valid
        hint seeds the incumbent; it cannot change the returned solution.
        """
        started = time.perf_counter()
        original_form = program.to_standard_form()
        form = original_form
        reduction = None
        if self.presolve:
            from repro.solver.presolve import presolve

            reduction = presolve(original_form)
            if reduction.infeasible:
                return MIPSolution(
                    MIPStatus.INFEASIBLE,
                    solve_seconds=time.perf_counter() - started,
                )
            form = reduction.form
        integer = np.flatnonzero(form.integer)

        state = _SearchState(self, form, integer)
        state.seed_incumbent(self._hint_vector(warm_start, original_form, reduction))
        state.run()

        elapsed = time.perf_counter() - started
        if state.incumbent_x is None:
            status = (
                MIPStatus.UNBOUNDED
                if state.root_unbounded
                else (MIPStatus.INFEASIBLE if state.exhausted else MIPStatus.NO_SOLUTION)
            )
            return MIPSolution(
                status,
                nodes_explored=state.nodes,
                solve_seconds=elapsed,
                pivots=state.pivots,
                cuts_added=state.cuts_added,
                warm_started=state.warm_started,
            )

        x = state.incumbent_x.copy()
        x[integer] = np.round(x[integer])
        if reduction is not None:
            from repro.solver.presolve import postsolve

            x = postsolve(reduction, x)
        return MIPSolution(
            MIPStatus.OPTIMAL if state.exhausted else MIPStatus.FEASIBLE,
            x=x,
            objective=original_form.objective_value(x),
            nodes_explored=state.nodes,
            solve_seconds=elapsed,
            pivots=state.pivots,
            cuts_added=state.cuts_added,
            warm_started=state.warm_started,
        )

    # ------------------------------------------------------------------

    def _hint_vector(
        self, warm_start: object, original_form: StandardForm, reduction
    ) -> np.ndarray | None:
        """Extract an incumbent hint in *reduced* variable space."""
        if warm_start is None:
            return None
        x = getattr(warm_start, "x", None)
        if x is None:
            return None
        x = np.asarray(x, dtype=float)
        if x.shape != original_form.c.shape:
            return None
        if reduction is not None:
            # Hint must agree with presolve's fixings to survive reduction.
            fixed_mask = np.ones(len(reduction.fixed_values), dtype=bool)
            fixed_mask[reduction.kept] = False
            if np.any(
                np.abs(x[fixed_mask] - reduction.fixed_values[fixed_mask]) > _INT_TOL
            ):
                return None
            x = x[reduction.kept]
        return x


class _SearchState:
    """One tree search: heap, incumbent, budgets, and the LP backend."""

    def __init__(
        self, solver: BranchAndBoundSolver, form: StandardForm, integer: np.ndarray
    ) -> None:
        self.solver = solver
        self.form = form
        self.integer = integer
        self.nodes = 0
        self.pivots = 0
        self.cuts_added = 0
        self.exhausted = True
        self.root_unbounded = False
        self.warm_started = False
        self.incumbent_x: np.ndarray | None = None
        self.incumbent_obj = math.inf  # minimisation-form objective
        self.simplex: RevisedSimplex | None = None
        if solver.lp_backend == "simplex":
            self.simplex = RevisedSimplex(form)

    # -- incumbent -----------------------------------------------------

    def _canonical_key(self, x: np.ndarray) -> tuple:
        return tuple(np.round(x[self.integer]).astype(int).tolist())

    def offer(self, x: np.ndarray, objective: float, *, from_hint: bool = False) -> None:
        """Adopt ``x`` under the canonical tie-break.

        Strictly better within tolerance always wins; ties (within
        ``_OBJ_TOL``) prefer the lexicographically smaller rounded integer
        vector.  Combined with tie-exploring pruning this makes the final
        incumbent independent of the order solutions are found — and
        therefore of warm-start seeding.
        """
        if objective < self.incumbent_obj - _OBJ_TOL:
            adopt = True
        elif objective < self.incumbent_obj + _OBJ_TOL:
            adopt = self.incumbent_x is None or self._canonical_key(
                x
            ) < self._canonical_key(self.incumbent_x)
        else:
            adopt = False
        if adopt:
            self.incumbent_x = x.copy()
            self.incumbent_obj = min(self.incumbent_obj, objective)
            if from_hint:
                self.warm_started = True

    def seed_incumbent(self, hint: np.ndarray | None) -> None:
        """Verify an integer-feasible hint and adopt it as the incumbent."""
        if hint is None:
            return
        form = self.form
        x = hint.copy()
        x[self.integer] = np.round(x[self.integer])
        if np.any(x < form.lb - _INT_TOL) or np.any(x > form.ub + _INT_TOL):
            return
        if form.a_ub.size and np.any(form.a_ub @ x > form.b_ub + 1e-7):
            return
        if form.a_eq.size and np.any(np.abs(form.a_eq @ x - form.b_eq) > 1e-7):
            return
        self.offer(x, float(form.c @ x), from_hint=True)

    # -- LP backend ----------------------------------------------------

    def _solve_lp(self, lb: np.ndarray, ub: np.ndarray, basis: Basis | None):
        if self.simplex is not None:
            before = 0
            try:
                solution = self.simplex.solve(lb, ub, basis=basis)
            except SimplexError:
                solution = self.simplex.solve(lb, ub)
            self.pivots += solution.pivots - before
            return solution
        from repro.solver.scipy_backend import solve_lp_scipy

        node_form = dataclasses.replace(self.form, lb=lb, ub=ub)
        return solve_lp_scipy(node_form)

    # -- root strengthening --------------------------------------------

    def _apply_root_cuts(self, root_solution) -> object:
        """Append violated cuts to the form; rebuild the simplex."""
        from repro.solver.cuts import cover_cuts, gomory_cuts

        solution = root_solution
        for _ in range(self.solver.cuts):
            if solution.status is not LPStatus.OPTIMAL or solution.x is None:
                break
            if self._fractional(solution.x) is None:
                break  # already integral: no cutting needed
            new_rows = gomory_cuts(self.simplex, self.form)
            new_rows += cover_cuts(self.form, solution.x)
            violated = [
                (row, rhs)
                for row, rhs in new_rows
                if float(row @ solution.x) > rhs + 1e-7
            ]
            if not violated:
                break
            a_new = np.vstack([self.form.a_ub, *[r for r, _ in violated]])
            b_new = np.concatenate(
                [self.form.b_ub, np.array([rhs for _, rhs in violated])]
            )
            self.form = dataclasses.replace(self.form, a_ub=a_new, b_ub=b_new)
            self.cuts_added += len(violated)
            self.simplex = RevisedSimplex(self.form)
            solution = self._solve_lp(self.form.lb, self.form.ub, None)
        return solution

    def _run_heuristics(self, root_solution) -> None:
        from repro.solver.heuristics import dive, round_and_repair

        if root_solution.x is None:
            return
        for attempt in (
            round_and_repair(self.simplex, self.form, root_solution.x),
            dive(self.simplex, self.form, root_solution.x),
        ):
            if attempt is not None:
                x = attempt.copy()
                x[self.integer] = np.round(x[self.integer])
                self.offer(x, float(self.form.c @ x))

    # -- main loop -----------------------------------------------------

    def _fractional(self, x: np.ndarray) -> tuple[int, float] | None:
        """Most-fractional branching variable (lowest index on ties)."""
        best_var = None
        best_frac = _INT_TOL
        for var in self.integer:
            value = x[var]
            frac = abs(value - round(value))
            if frac > best_frac:
                best_frac = frac
                best_var = (int(var), float(value))
        return best_var

    def run(self) -> None:
        solver = self.solver
        form = self.form
        counter = itertools.count()
        heap = [_Node(-math.inf, next(counter), form.lb.copy(), form.ub.copy())]
        root = True

        while heap:
            if self.nodes >= solver.max_nodes or self.pivots >= solver.max_pivots:
                self.exhausted = False
                return
            node = heapq.heappop(heap)
            # Tie-exploring prune: subtrees within _OBJ_TOL of the incumbent
            # stay open so the canonical optimum survives regardless of
            # which tie became the incumbent first.
            if node.bound >= self.incumbent_obj + _OBJ_TOL:
                continue
            if solver.propagate and form.a_ub.size:
                from repro.solver.presolve import propagate_bounds

                lb, ub, feasible = propagate_bounds(
                    form.a_ub, form.b_ub, node.lb, node.ub, form.integer, max_rounds=2
                )
                if not feasible:
                    self.nodes += 1
                    root = False
                    continue
            else:
                lb, ub = node.lb, node.ub
            relaxation = self._solve_lp(lb, ub, node.basis)
            self.nodes += 1
            if relaxation.status is LPStatus.INFEASIBLE:
                root = False
                continue
            if relaxation.status is LPStatus.UNBOUNDED:
                if root:
                    self.root_unbounded = True
                    self.exhausted = False
                    return
                root = False
                continue
            assert relaxation.x is not None
            if root and self.simplex is not None:
                if solver.cuts:
                    relaxation = self._apply_root_cuts(relaxation)
                    form = self.form  # cuts rebuilt the form
                    if relaxation.status is not LPStatus.OPTIMAL:
                        root = False
                        continue
                if solver.heuristics:
                    self._run_heuristics(relaxation)
            root = False
            if relaxation.objective >= self.incumbent_obj + _OBJ_TOL:
                continue

            fractional = self._fractional(relaxation.x)
            if fractional is None:
                self.offer(relaxation.x, relaxation.objective)
                continue

            var, value = fractional
            child_basis = relaxation.basis if solver.reuse_basis else None
            floor_ub = ub.copy()
            floor_ub[var] = math.floor(value)
            if lb[var] <= floor_ub[var]:
                heapq.heappush(
                    heap,
                    _Node(
                        relaxation.objective,
                        next(counter),
                        lb.copy(),
                        floor_ub,
                        child_basis,
                    ),
                )
            ceil_lb = lb.copy()
            ceil_lb[var] = math.ceil(value)
            if ceil_lb[var] <= ub[var]:
                heapq.heappush(
                    heap,
                    _Node(
                        relaxation.objective,
                        next(counter),
                        ceil_lb,
                        ub.copy(),
                        child_basis,
                    ),
                )
