"""Dense two-phase primal simplex.

Solves ``min c.x`` subject to ``A_ub x <= b_ub``, ``A_eq x == b_eq`` and
finite lower bounds ``lb <= x <= ub`` (upper bounds become extra rows).
Designed for the small/medium LP relaxations produced by the partitioning
MIPs — correctness over speed: Dantzig pricing with a Bland's-rule fallback
guarantees termination on degenerate problems.
"""

from __future__ import annotations

import dataclasses
import enum
import math

import numpy as np

from repro.solver.model import StandardForm

__all__ = ["LPStatus", "LPSolution", "solve_standard_form", "SimplexError"]

_TOL = 1e-9
_BLAND_AFTER = 2000
_MAX_ITERS = 50_000


class SimplexError(RuntimeError):
    """Raised when the simplex cannot make progress (numerical failure)."""


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclasses.dataclass
class LPSolution:
    """Outcome of an LP solve.

    ``objective`` is reported in minimisation form; callers holding a
    :class:`~repro.solver.model.StandardForm` can convert with
    :meth:`~repro.solver.model.StandardForm.objective_value`.
    """

    status: LPStatus
    x: np.ndarray | None = None
    objective: float = math.nan


def solve_standard_form(form: StandardForm) -> LPSolution:
    """Solve the LP relaxation of a standard form (integrality ignored)."""
    lb, ub = form.lb, form.ub
    if np.any(~np.isfinite(lb)):
        raise ValueError("simplex backend requires finite lower bounds")
    n = len(form.c)

    # Shift to y = x - lb >= 0.
    b_ub = form.b_ub - form.a_ub @ lb if form.a_ub.size else form.b_ub.copy()
    b_eq = form.b_eq - form.a_eq @ lb if form.a_eq.size else form.b_eq.copy()
    offset = float(form.c @ lb)

    rows_ub = [form.a_ub[i] for i in range(form.a_ub.shape[0])]
    rhs_ub = list(b_ub)
    for j in range(n):
        if math.isfinite(ub[j]):
            row = np.zeros(n)
            row[j] = 1.0
            rows_ub.append(row)
            rhs_ub.append(ub[j] - lb[j])

    a_ub = np.vstack(rows_ub) if rows_ub else np.zeros((0, n))
    b_ub_arr = np.array(rhs_ub, dtype=float)

    result = _two_phase(form.c.astype(float), a_ub, b_ub_arr, form.a_eq.astype(float), b_eq)
    if result.status is not LPStatus.OPTIMAL:
        return result
    assert result.x is not None
    x = result.x[:n] + lb
    return LPSolution(LPStatus.OPTIMAL, x, result.objective + offset)


def _two_phase(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
) -> LPSolution:
    """Two-phase simplex on ``min c.y``, ``a_ub y <= b_ub``, ``a_eq y == b_eq``,
    ``y >= 0``."""
    n = len(c)
    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq

    # Build [A | slacks] with rhs >= 0.
    a = np.zeros((m, n + m_ub))
    b = np.zeros(m)
    a[:m_ub, :n] = a_ub
    a[:m_ub, n : n + m_ub] = np.eye(m_ub)
    b[:m_ub] = b_ub
    if m_eq:
        a[m_ub:, :n] = a_eq
        b[m_ub:] = b_eq

    needs_artificial = []
    for i in range(m):
        if b[i] < 0:
            a[i] *= -1.0
            b[i] *= -1.0
            needs_artificial.append(i)  # slack coefficient is now -1
        elif i >= m_ub:
            needs_artificial.append(i)  # equality rows always need one

    n_slack = m_ub
    n_art = len(needs_artificial)
    total = n + n_slack + n_art
    tableau = np.zeros((m, total))
    tableau[:, : n + n_slack] = a
    basis = np.empty(m, dtype=int)

    art_col = n + n_slack
    art_rows = set(needs_artificial)
    for i in range(m):
        if i in art_rows:
            tableau[i, art_col] = 1.0
            basis[i] = art_col
            art_col += 1
        else:
            basis[i] = n + i  # slack with +1 coefficient

    rhs = b.copy()

    if n_art:
        # Phase 1: minimise the sum of artificials.
        c1 = np.zeros(total)
        c1[n + n_slack :] = 1.0
        status, obj1 = _iterate(tableau, rhs, basis, c1)
        if status is LPStatus.UNBOUNDED:  # pragma: no cover - impossible in phase 1
            raise SimplexError("phase-1 unbounded")
        if obj1 > 1e-6:
            return LPSolution(LPStatus.INFEASIBLE)
        _drive_out_artificials(tableau, rhs, basis, n + n_slack)
        # Drop redundant rows whose artificial could not be driven out.
        keep = basis < n + n_slack
        tableau = tableau[keep]
        rhs = rhs[keep]
        basis = basis[keep]

    # Phase 2 over original + slack columns only.
    c2 = np.zeros(n + n_slack)
    c2[:n] = c
    tableau2 = np.ascontiguousarray(tableau[:, : n + n_slack])
    status, obj = _iterate(tableau2, rhs, basis, c2)
    if status is LPStatus.UNBOUNDED:
        return LPSolution(LPStatus.UNBOUNDED)

    x = np.zeros(n + n_slack)
    for i, col in enumerate(basis):
        if col < n + n_slack:
            x[col] = rhs[i]
    return LPSolution(LPStatus.OPTIMAL, x, obj)


def _iterate(
    tableau: np.ndarray, rhs: np.ndarray, basis: np.ndarray, c: np.ndarray
) -> tuple[LPStatus, float]:
    """Run primal simplex pivots in place; returns (status, objective)."""
    m, total = tableau.shape
    for iteration in range(_MAX_ITERS):
        cb = c[basis]
        # Reduced costs: c_j - cb . B^-1 A_j; tableau is already B^-1 A.
        reduced = c - cb @ tableau
        reduced[basis] = 0.0
        use_bland = iteration >= _BLAND_AFTER
        if use_bland:
            candidates = np.flatnonzero(reduced < -_TOL)
            if candidates.size == 0:
                return LPStatus.OPTIMAL, float(cb @ rhs)
            entering = int(candidates[0])
        else:
            entering = int(np.argmin(reduced))
            if reduced[entering] >= -_TOL:
                return LPStatus.OPTIMAL, float(cb @ rhs)

        column = tableau[:, entering]
        positive = column > _TOL
        if not np.any(positive):
            return LPStatus.UNBOUNDED, -math.inf
        ratios = np.full(m, math.inf)
        ratios[positive] = rhs[positive] / column[positive]
        best = ratios.min()
        ties = np.flatnonzero(np.abs(ratios - best) <= _TOL * (1 + abs(best)))
        # Bland tie-break: smallest basis index leaves.
        leaving = int(ties[np.argmin(basis[ties])]) if use_bland else int(ties[0])

        _pivot(tableau, rhs, leaving, entering)
        basis[leaving] = entering
    raise SimplexError(f"simplex exceeded {_MAX_ITERS} iterations")


def _pivot(tableau: np.ndarray, rhs: np.ndarray, row: int, col: int) -> None:
    pivot = tableau[row, col]
    tableau[row] /= pivot
    rhs[row] /= pivot
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > _TOL:
            factor = tableau[i, col]
            tableau[i] -= factor * tableau[row]
            rhs[i] -= factor * rhs[row]
    rhs[rhs < 0] = np.where(rhs[rhs < 0] > -_TOL, 0.0, rhs[rhs < 0])


def _drive_out_artificials(
    tableau: np.ndarray, rhs: np.ndarray, basis: np.ndarray, n_real: int
) -> None:
    """Pivot basic artificial variables out of the basis where possible."""
    for i in range(len(basis)):
        if basis[i] < n_real:
            continue
        row = tableau[i, :n_real]
        candidates = np.flatnonzero(np.abs(row) > _TOL)
        if candidates.size:
            _pivot(tableau, rhs, i, int(candidates[0]))
            basis[i] = int(candidates[0])
        # else: redundant row; the artificial stays basic at value 0.
