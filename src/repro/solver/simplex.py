"""Revised simplex for bounded variables, with warm starts.

Solves ``min c.x`` subject to ``A_ub x <= b_ub``, ``A_eq x == b_eq`` and
finite lower bounds ``lb <= x <= ub``.  Replaces the old dense two-phase
*tableau* simplex, which turned every finite upper bound into an extra
``x_j <= u_j`` row — the LP relaxations of the partitioning MIPs are almost
all bounds, so the tableau blew up quadratically.  Here bounds are handled
natively: nonbasic variables rest at either bound, the ratio test includes
bound flips, and only genuine constraints become rows.

The basis inverse ``B^-1`` is maintained explicitly (product-form update per
pivot, periodic refactorisation), which gives three things the branch &
bound needs:

* a :class:`Basis` snapshot cheap enough to store per node;
* **warm starts** — a child node re-solves from the parent's basis with the
  *dual* simplex, restoring primal feasibility after a branching bound
  change in a handful of pivots (the parent basis stays dual feasible
  because branching never touches costs or rows);
* tableau rows on demand for Gomory cut derivation
  (:mod:`repro.solver.cuts`).

Pricing is Dantzig (steepest reduced cost) with a Bland's-rule fallback
after a fixed pivot count, so degenerate problems terminate.  Every
tie-break is deterministic (lowest index), making solves reproducible
bit-for-bit across runs and machines.
"""

from __future__ import annotations

import dataclasses
import enum
import math

import numpy as np

from repro.solver.model import StandardForm

__all__ = [
    "LPStatus",
    "LPSolution",
    "Basis",
    "RevisedSimplex",
    "solve_standard_form",
    "SimplexError",
]

_TOL = 1e-9
_FEAS_TOL = 1e-7
_PIVOT_TOL = 1e-8
_BLAND_AFTER = 2000
_MAX_ITERS = 50_000
_REFACTOR_EVERY = 64

# Nonbasic-at-lower / nonbasic-at-upper / basic variable statuses.
_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2

#: Sentinel in :attr:`Basis.basic` for a row whose basic column is an
#: artificial (the row was redundant at the original solve).
ARTIFICIAL = -1


class SimplexError(RuntimeError):
    """Raised when the simplex cannot make progress (numerical failure)."""


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclasses.dataclass(frozen=True)
class Basis:
    """A restartable snapshot of an optimal basis.

    Attributes:
        basic: Per constraint row, the column index basic in that row —
            a structural variable (``< n``), a slack (``>= n``), or
            :data:`ARTIFICIAL` for a redundant row.
        at_upper: Sorted column indices nonbasic at their *upper* bound;
            every other nonbasic column rests at its lower bound.
    """

    basic: tuple[int, ...]
    at_upper: tuple[int, ...]


@dataclasses.dataclass
class LPSolution:
    """Outcome of an LP solve.

    ``objective`` is reported in minimisation form; callers holding a
    :class:`~repro.solver.model.StandardForm` can convert with
    :meth:`~repro.solver.model.StandardForm.objective_value`.
    """

    status: LPStatus
    x: np.ndarray | None = None
    objective: float = math.nan
    pivots: int = 0
    basis: Basis | None = None


class _Workspace:
    """Mutable state of one solve: statuses, basis, maintained inverse."""

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        lb: np.ndarray,
        ub: np.ndarray,
    ) -> None:
        self.a = a
        self.b = b
        self.lb = lb
        self.ub = ub
        m, ncols = a.shape
        self.m = m
        self.ncols = ncols
        self.status = np.full(ncols, _AT_LOWER, dtype=np.int8)
        self.basic = np.zeros(m, dtype=int)
        self.binv = np.eye(m)
        self.pivots = 0
        self._since_refactor = 0

    # -- invariants ----------------------------------------------------

    def refactor(self) -> None:
        """Recompute ``B^-1`` from the basic column set."""
        bmat = self.a[:, self.basic]
        self.binv = np.linalg.inv(bmat)
        self._since_refactor = 0

    def nonbasic_values(self) -> np.ndarray:
        """Value vector with basic entries zeroed (bound values elsewhere)."""
        values = np.where(self.status == _AT_UPPER, self.ub, self.lb)
        values[self.status == _BASIC] = 0.0
        return values

    def beta(self) -> np.ndarray:
        """Current basic-variable values ``B^-1 (b - N x_N)``."""
        values = self.nonbasic_values()
        return self.binv @ (self.b - self.a @ values)

    def reduced_costs(self, c: np.ndarray) -> np.ndarray:
        y = c[self.basic] @ self.binv
        d = c - y @ self.a
        d[self.basic] = 0.0
        return d

    def pivot(self, row: int, entering: int) -> None:
        """Swap ``entering`` into the basis at ``row``; update ``B^-1``."""
        alpha = self.binv @ self.a[:, entering]
        if abs(alpha[row]) < _PIVOT_TOL:
            raise SimplexError("pivot element vanished")
        leaving = self.basic[row]
        self.binv[row] /= alpha[row]
        for i in range(self.m):
            if i != row and abs(alpha[i]) > _TOL:
                self.binv[i] -= alpha[i] * self.binv[row]
        self.basic[row] = entering
        self.status[entering] = _BASIC
        # Caller sets the leaving variable's nonbasic side.
        self._leaving = leaving
        self.pivots += 1
        self._since_refactor += 1
        if self._since_refactor >= _REFACTOR_EVERY:
            self.refactor()

    def solution_values(self) -> np.ndarray:
        values = self.nonbasic_values()
        values[self.basic] = self.beta()
        return values


class RevisedSimplex:
    """Bounded-variable revised simplex over a fixed constraint matrix.

    Built once per :class:`~repro.solver.model.StandardForm` (or per branch
    & bound tree — branching changes only bounds, never rows), then solved
    repeatedly with different bounds and optional warm-start bases.
    """

    def __init__(self, form: StandardForm) -> None:
        if np.any(~np.isfinite(np.asarray(form.lb, dtype=float))):
            raise ValueError("simplex backend requires finite lower bounds")
        self.form = form
        self.n = len(form.c)
        self.m_ub = form.a_ub.shape[0]
        self.m_eq = form.a_eq.shape[0]
        self.m = self.m_ub + self.m_eq
        n_total = self.n + self.m_ub
        a = np.zeros((self.m, n_total))
        if self.m_ub:
            a[: self.m_ub, : self.n] = form.a_ub
            a[: self.m_ub, self.n :] = np.eye(self.m_ub)
        if self.m_eq:
            a[self.m_ub :, : self.n] = form.a_eq
        self.a = a
        self.b = np.concatenate(
            [np.asarray(form.b_ub, dtype=float), np.asarray(form.b_eq, dtype=float)]
        )
        self.c = np.zeros(n_total)
        self.c[: self.n] = form.c
        self.n_total = n_total

    # -- public entry points -------------------------------------------

    def solve(
        self,
        lb: np.ndarray | None = None,
        ub: np.ndarray | None = None,
        *,
        basis: Basis | None = None,
    ) -> LPSolution:
        """Solve with the given structural bounds (defaults: the form's).

        With ``basis``, attempts a dual-simplex warm start from that basis;
        falls back to a cold two-phase solve if the basis is stale
        (singular or no longer dual feasible), so the call always returns
        the same optimum a cold solve would.
        """
        lb = np.asarray(self.form.lb if lb is None else lb, dtype=float)
        ub = np.asarray(self.form.ub if ub is None else ub, dtype=float)
        if np.any(~np.isfinite(lb)):
            raise ValueError("simplex backend requires finite lower bounds")
        if np.any(lb > ub + _TOL):
            return LPSolution(LPStatus.INFEASIBLE)
        if basis is not None:
            solution = self._warm_solve(lb, ub, basis)
            if solution is not None:
                return solution
        return self._cold_solve(lb, ub)

    # -- bound vectors --------------------------------------------------

    def _full_bounds(
        self, lb: np.ndarray, ub: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        full_lb = np.zeros(self.n_total)
        full_ub = np.full(self.n_total, math.inf)
        full_lb[: self.n] = lb
        full_ub[: self.n] = ub
        return full_lb, full_ub

    # -- cold path ------------------------------------------------------

    def _cold_solve(self, lb: np.ndarray, ub: np.ndarray) -> LPSolution:
        full_lb, full_ub = self._full_bounds(lb, ub)

        # Residuals at the all-at-lower-bound point decide which rows need
        # a (sign-matched) scratch artificial: equality rows always, <=
        # rows only when the slack would start negative.
        residual = self.b - self.a[:, : self.n] @ lb
        art_rows: list[int] = []
        art_sign: list[float] = []
        for i in range(self.m):
            if i >= self.m_ub or residual[i] < 0:
                art_rows.append(i)
                art_sign.append(-1.0 if residual[i] < 0 else 1.0)

        n_art = len(art_rows)
        a_work = np.hstack([self.a, np.zeros((self.m, n_art))])
        work_lb = np.concatenate([full_lb, np.zeros(n_art)])
        work_ub = np.concatenate([full_ub, np.full(n_art, math.inf)])
        for k, (row, sign) in enumerate(zip(art_rows, art_sign)):
            a_work[row, self.n_total + k] = sign

        ws = _Workspace(a_work, self.b, work_lb, work_ub)
        # Initial basis: slack for clean <= rows, artificial elsewhere.
        art_of_row = {row: self.n_total + k for k, row in enumerate(art_rows)}
        for i in range(self.m):
            col = art_of_row.get(i, self.n + i)
            ws.basic[i] = col
            ws.status[col] = _BASIC
        # Sign-flipped artificials make B != I, so the maintained inverse
        # must be computed, not assumed.
        ws.refactor()

        pivots = 0
        if n_art:
            c1 = np.zeros(a_work.shape[1])
            c1[self.n_total :] = 1.0
            status = self._primal(ws, c1)
            pivots = ws.pivots
            if status is LPStatus.UNBOUNDED:  # pragma: no cover - c1 >= 0
                raise SimplexError("phase-1 unbounded")
            phase1_obj = float(c1[ws.basic] @ ws.beta())
            if phase1_obj > 1e-6:
                return LPSolution(LPStatus.INFEASIBLE, pivots=pivots)
            # Fix artificials at zero for phase 2; basic ones on redundant
            # rows stay basic at value 0 and can never rise again.
            ws.ub[self.n_total :] = 0.0

        c2 = np.zeros(a_work.shape[1])
        c2[: self.n] = self.form.c
        status = self._primal(ws, c2)
        if status is LPStatus.UNBOUNDED:
            return LPSolution(LPStatus.UNBOUNDED, pivots=ws.pivots)
        return self._extract(ws)

    # -- warm path ------------------------------------------------------

    def _warm_solve(
        self, lb: np.ndarray, ub: np.ndarray, basis: Basis
    ) -> LPSolution | None:
        """Dual-simplex re-solve from ``basis``; ``None`` means fall back."""
        if len(basis.basic) != self.m:
            return None
        full_lb, full_ub = self._full_bounds(lb, ub)

        art_rows = [i for i, col in enumerate(basis.basic) if col == ARTIFICIAL]
        n_art = len(art_rows)
        a_work = np.hstack([self.a, np.zeros((self.m, n_art))]) if n_art else self.a.copy()
        work_lb = np.concatenate([full_lb, np.zeros(n_art)])
        work_ub = np.concatenate([full_ub, np.zeros(n_art)])
        for k, row in enumerate(art_rows):
            a_work[row, self.n_total + k] = 1.0

        ws = _Workspace(a_work, self.b, work_lb, work_ub)
        next_art = self.n_total
        for i, col in enumerate(basis.basic):
            if col == ARTIFICIAL:
                col = next_art
                next_art += 1
            elif not 0 <= col < self.n_total:
                return None
            ws.basic[i] = col
        if len(set(ws.basic.tolist())) != self.m:
            return None
        ws.status[ws.basic] = _BASIC
        for col in basis.at_upper:
            if not 0 <= col < self.n_total or ws.status[col] == _BASIC:
                return None
            # A bound that became infinite (never happens under branching,
            # which only tightens) falls back to the lower bound.
            if math.isfinite(ws.ub[col]):
                ws.status[col] = _AT_UPPER
        try:
            ws.refactor()
        except np.linalg.LinAlgError:
            return None

        c = np.zeros(a_work.shape[1])
        c[: self.n] = self.form.c
        d = ws.reduced_costs(c)
        free = ws.ub - ws.lb > _TOL
        lower_bad = (ws.status == _AT_LOWER) & free & (d < -_FEAS_TOL)
        upper_bad = (ws.status == _AT_UPPER) & free & (d > _FEAS_TOL)
        if lower_bad.any() or upper_bad.any():
            return None  # stale basis: not dual feasible for these costs

        status = self._dual(ws, c)
        if status is LPStatus.INFEASIBLE:
            return LPSolution(LPStatus.INFEASIBLE, pivots=ws.pivots)
        # Polish: usually zero pivots, but guarantees true optimality if
        # the dual loop stopped at tolerance boundaries.
        status = self._primal(ws, c)
        if status is LPStatus.UNBOUNDED:
            return LPSolution(LPStatus.UNBOUNDED, pivots=ws.pivots)
        return self._extract(ws)

    # -- result extraction ----------------------------------------------

    def _extract(self, ws: _Workspace) -> LPSolution:
        # Kept for tableau readers (Gomory cut generation) — valid until
        # the next solve on this instance.
        self.last_workspace = ws
        values = ws.solution_values()
        x = values[: self.n].copy()
        np.clip(x, self.form.lb, None, out=x)
        objective = float(self.form.c @ x)
        basic = tuple(
            int(col) if col < self.n_total else ARTIFICIAL for col in ws.basic
        )
        at_upper = tuple(
            int(j)
            for j in np.flatnonzero(ws.status[: self.n_total] == _AT_UPPER)
        )
        return LPSolution(
            LPStatus.OPTIMAL,
            x,
            objective,
            pivots=ws.pivots,
            basis=Basis(basic=basic, at_upper=at_upper),
        )

    # -- primal loop ----------------------------------------------------

    def _primal(self, ws: _Workspace, c: np.ndarray) -> LPStatus:
        """Primal simplex to optimality from a primal-feasible basis."""
        fixed = ws.ub - ws.lb <= _TOL
        for iteration in range(_MAX_ITERS):
            d = ws.reduced_costs(c)
            at_lower = (ws.status == _AT_LOWER) & ~fixed
            at_upper = ws.status == _AT_UPPER
            score = np.zeros(ws.ncols)
            score[at_lower] = -d[at_lower]
            score[at_upper] = d[at_upper]
            use_bland = iteration >= _BLAND_AFTER
            if use_bland:
                candidates = np.flatnonzero(score > _TOL)
                if candidates.size == 0:
                    return LPStatus.OPTIMAL
                entering = int(candidates[0])
            else:
                entering = int(np.argmax(score))
                if score[entering] <= _TOL:
                    return LPStatus.OPTIMAL

            direction = 1.0 if ws.status[entering] == _AT_LOWER else -1.0
            alpha = ws.binv @ ws.a[:, entering]
            beta = ws.beta()
            lb_b = ws.lb[ws.basic]
            ub_b = ws.ub[ws.basic]

            # Basic variables move by -direction * alpha per unit step.
            step = ws.ub[entering] - ws.lb[entering]  # bound-flip limit
            leaving_row = -1
            move = direction * alpha
            for i in range(ws.m):
                if move[i] > _PIVOT_TOL:
                    limit = (beta[i] - lb_b[i]) / move[i]
                elif move[i] < -_PIVOT_TOL and math.isfinite(ub_b[i]):
                    limit = (ub_b[i] - beta[i]) / -move[i]
                else:
                    continue
                if limit < step - _TOL or (
                    limit < step + _TOL
                    and (leaving_row == -1 or ws.basic[i] < ws.basic[leaving_row])
                ):
                    step = limit
                    leaving_row = i
            if math.isinf(step):
                return LPStatus.UNBOUNDED

            if leaving_row == -1:
                # Bound flip: the entering variable crosses to its other
                # bound without a basis change.
                ws.status[entering] = (
                    _AT_UPPER if ws.status[entering] == _AT_LOWER else _AT_LOWER
                )
                ws.pivots += 1
                continue

            leaves_to = move[leaving_row] > 0
            leaving = ws.basic[leaving_row]
            ws.pivot(leaving_row, entering)
            ws.status[leaving] = _AT_LOWER if leaves_to else _AT_UPPER
        raise SimplexError(f"simplex exceeded {_MAX_ITERS} iterations")

    # -- dual loop ------------------------------------------------------

    def _dual(self, ws: _Workspace, c: np.ndarray) -> LPStatus:
        """Dual simplex from a dual-feasible basis to primal feasibility.

        Returns OPTIMAL when all basic variables sit within bounds, or
        INFEASIBLE when a violated row admits no entering column (the
        standard dual-simplex infeasibility certificate — the common exit
        for branch & bound children whose bound change cut off the
        feasible region).
        """
        fixed = ws.ub - ws.lb <= _TOL
        for iteration in range(_MAX_ITERS):
            beta = ws.beta()
            lb_b = ws.lb[ws.basic]
            ub_b = ws.ub[ws.basic]
            below = lb_b - beta
            above = beta - ub_b
            above[~np.isfinite(ub_b)] = -math.inf
            violation = np.maximum(below, above)
            use_bland = iteration >= _BLAND_AFTER
            if use_bland:
                rows = np.flatnonzero(violation > _FEAS_TOL)
                if rows.size == 0:
                    return LPStatus.OPTIMAL
                row = int(rows[0])
            else:
                row = int(np.argmax(violation))
                if violation[row] <= _FEAS_TOL:
                    return LPStatus.OPTIMAL

            rho = ws.binv[row] @ ws.a  # tableau row of the leaving variable
            d = ws.reduced_costs(c)
            # Leaving variable exits at the violated bound; the sign of the
            # admissible entering direction follows from which bound.
            needs_increase = below[row] > above[row]
            at_lower = (ws.status == _AT_LOWER) & ~fixed
            at_upper = ws.status == _AT_UPPER
            if needs_increase:
                eligible = (at_lower & (rho < -_PIVOT_TOL)) | (
                    at_upper & (rho > _PIVOT_TOL)
                )
            else:
                eligible = (at_lower & (rho > _PIVOT_TOL)) | (
                    at_upper & (rho < -_PIVOT_TOL)
                )
            candidates = np.flatnonzero(eligible)
            if candidates.size == 0:
                return LPStatus.INFEASIBLE
            ratios = np.abs(d[candidates]) / np.abs(rho[candidates])
            if use_bland:
                entering = int(candidates[0])
            else:
                best = ratios.min()
                ties = candidates[ratios <= best + _TOL]
                entering = int(ties[0])

            leaving = ws.basic[row]
            ws.pivot(row, entering)
            ws.status[leaving] = _AT_LOWER if needs_increase else _AT_UPPER
        raise SimplexError(f"dual simplex exceeded {_MAX_ITERS} iterations")


def solve_standard_form(
    form: StandardForm, *, basis: Basis | None = None
) -> LPSolution:
    """Solve the LP relaxation of a standard form (integrality ignored).

    Convenience wrapper building a one-shot :class:`RevisedSimplex`;
    callers re-solving the same rows under changing bounds (branch &
    bound) should hold a ``RevisedSimplex`` instance instead.
    """
    return RevisedSimplex(form).solve(basis=basis)
