"""Primal heuristics for branch & bound: rounding and LP diving.

Both take the root LP relaxation and try to produce an integer-feasible
point quickly.  A good early incumbent lets best-first search fathom most
of the tree by bound; neither heuristic can change the final optimum (the
solver's canonical tie-break makes the returned solution independent of
incumbent seeding).

* :func:`round_and_repair` — round the integer variables to the nearest
  integer inside their bounds, then re-solve the LP with those variables
  fixed so the continuous part is completed optimally; feasibility of the
  rounded point is verified against all rows.
* :func:`dive` — repeatedly fix the *least* fractional integer variable to
  its rounding and warm re-solve (dual simplex) until the relaxation comes
  back integral or infeasible.  Depth-bounded and deterministic.
"""

from __future__ import annotations

import math

import numpy as np

from repro.solver.model import StandardForm
from repro.solver.simplex import LPStatus, RevisedSimplex

__all__ = ["round_and_repair", "dive"]

_INT_TOL = 1e-6
_FEAS_TOL = 1e-7


def _check_rows(form: StandardForm, x: np.ndarray) -> bool:
    if form.a_ub.size and np.any(form.a_ub @ x > form.b_ub + _FEAS_TOL):
        return False
    if form.a_eq.size and np.any(np.abs(form.a_eq @ x - form.b_eq) > _FEAS_TOL):
        return False
    return True


def round_and_repair(
    simplex: RevisedSimplex, form: StandardForm, x_lp: np.ndarray
) -> np.ndarray | None:
    """Round integers in ``x_lp``, complete the continuous part by LP.

    Returns a feasible point (original variable space of ``form``) or
    ``None`` when the rounding is infeasible.
    """
    integer = np.flatnonzero(form.integer)
    if len(integer) == 0:
        return x_lp if _check_rows(form, x_lp) else None
    rounded = np.clip(np.round(x_lp[integer]), form.lb[integer], form.ub[integer])
    lb = form.lb.astype(float).copy()
    ub = form.ub.astype(float).copy()
    lb[integer] = rounded
    ub[integer] = rounded
    solution = simplex.solve(lb, ub)
    if solution.status is not LPStatus.OPTIMAL or solution.x is None:
        return None
    x = solution.x.copy()
    x[integer] = rounded
    return x if _check_rows(form, x) else None


def dive(
    simplex: RevisedSimplex,
    form: StandardForm,
    x_lp: np.ndarray,
    *,
    max_depth: int = 50,
) -> np.ndarray | None:
    """LP diving: fix the least-fractional integer variable, warm re-solve.

    Returns an integer-feasible point or ``None``.  Deterministic: ties on
    fractionality break toward the lowest variable index.
    """
    integer = np.flatnonzero(form.integer)
    lb = form.lb.astype(float).copy()
    ub = form.ub.astype(float).copy()
    x = x_lp
    basis = None
    for _ in range(max_depth):
        fractional = [
            (abs(x[j] - round(x[j])), int(j))
            for j in integer
            if abs(x[j] - round(x[j])) > _INT_TOL
        ]
        if not fractional:
            out = x.copy()
            out[integer] = np.round(out[integer])
            return out if _check_rows(form, out) else None
        _, var = min(fractional)
        value = float(np.clip(round(x[var]), lb[var], ub[var]))
        lb[var] = value
        ub[var] = value
        solution = simplex.solve(lb, ub, basis=basis)
        if solution.status is not LPStatus.OPTIMAL or solution.x is None:
            return None
        x = solution.x
        basis = solution.basis
    return None
