"""Solver benchmark: the ``repro solvebench`` backend.

Runs the MILP stack over deterministic instances derived from the check
corpus (:mod:`repro.check.corpus`) and emits ``BENCH_solver.json``:

* **literal partition MIPs** — each corpus cell's Eqs. 3-11 boolean MIP
  (:func:`repro.core.mip_formulation.build_partition_mip`) solved by our
  branch & bound and cross-validated against scipy's HiGGS MILP: statuses
  must agree and optimal objectives match to 1e-6 (``parity``);
* **warm-vs-cold invariance** — every MIP is re-solved warm-started from
  its own cold solution; the returned ``x`` must be bit-identical and the
  tree no larger;
* **partition searches** — the production partitioner
  (:func:`repro.core.partition.mip_partition`) per cell, cold and
  warm-started from the previous cell's result, with node counts and the
  boundary fingerprint;
* **portfolio races** — each cell solved solo, per racing backend
  (:func:`repro.solver.portfolio._solve_bnb` / ``_solve_highs``), and
  through the real :func:`repro.solver.portfolio.race_partition` pool;
  the row records which backend won and that every path returned the
  solo boundaries (``parity``).

Node counts, statuses, objectives, and fingerprints are deterministic
(budget-bound, clock-free searches); wall times — including the
per-backend race latencies — are informational only.  The CI gate
(:func:`compare_benchmarks`) fails on a parity regression, a portfolio
divergence, or a >25% node-count regression against the committed
baseline, ignoring wall time and race winners (both hardware-dependent).
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.check.corpus import default_corpus
from repro.core.mip_formulation import build_partition_mip
from repro.core.partition import mip_partition
from repro.models.costmodel import CostModel
from repro.solver.branch_bound import BranchAndBoundSolver, MIPStatus
from repro.solver.scipy_backend import solve_milp_scipy
from repro.solver.warmstart import WarmStartContext

__all__ = ["run_bench", "write_bench", "compare_benchmarks", "BENCH_SCHEMA"]

BENCH_SCHEMA = "mobius-bench-solver/1"

#: Node-count regressions beyond this ratio fail the CI gate.
NODE_REGRESSION_RATIO = 1.25

#: The serial, uncached suite total committed before this solver overhaul
#: (BENCH_suite.json at the fault-injection PR) — the perf baseline the
#: overhaul is measured against.
SUITE_BASELINE_SECONDS = 85.7


@dataclasses.dataclass
class _MIPRow:
    name: str
    n_vars: int
    n_rows: int
    status: str
    objective: float | None
    ref_status: str
    ref_objective: float | None
    parity: bool
    nodes: int
    pivots: int
    cuts: int
    warm_nodes: int
    warm_identical: bool
    wall_seconds: float


def _objectives_match(a: float | None, b: float | None) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-6)


def _bench_mip_instances() -> list[tuple[str, Any]]:
    """(name, LinearProgram) pairs: one literal partition MIP per cell."""
    instances = []
    for cell in default_corpus():
        topology = cell.topology
        microbatch = (
            cell.config.microbatch_size or cell.model.default_microbatch_size
        )
        cost_model = CostModel(topology.gpu_spec, microbatch)
        n_gpus = topology.n_gpus
        lp, _assign = build_partition_mip(
            cell.model,
            cost_model,
            n_gpus,
            n_gpus,
            cell.config.n_microbatches or n_gpus,
            cell.config.bandwidth or topology.pcie_bandwidth,
            cost_model.usable_gpu_bytes(),
        )
        instances.append((f"{cell.name}/S{n_gpus}", lp))
    return instances


def _run_mip_rows() -> list[_MIPRow]:
    rows = []
    for name, lp in _bench_mip_instances():
        solver = BranchAndBoundSolver(presolve=True)
        started = time.perf_counter()
        ours = solver.solve(lp)
        wall = time.perf_counter() - started
        theirs = solve_milp_scipy(lp)
        parity = ours.status.value == theirs.status.value and (
            ours.status is not MIPStatus.OPTIMAL
            or _objectives_match(ours.objective, theirs.objective)
        )
        if ours.x is not None:
            warm = BranchAndBoundSolver(presolve=True).solve(
                lp, warm_start=WarmStartContext.from_mip(ours)
            )
            warm_nodes = warm.nodes_explored
            warm_identical = warm.x is not None and bool(
                np.array_equal(warm.x, ours.x)
            )
        else:
            warm_nodes = 0
            warm_identical = True
        form = lp.to_standard_form()
        rows.append(
            _MIPRow(
                name=name,
                n_vars=len(form.c),
                n_rows=form.a_ub.shape[0] + form.a_eq.shape[0],
                status=ours.status.value,
                objective=None if math.isnan(ours.objective) else ours.objective,
                ref_status=theirs.status.value,
                ref_objective=(
                    None if math.isnan(theirs.objective) else theirs.objective
                ),
                parity=parity,
                nodes=ours.nodes_explored,
                pivots=ours.pivots,
                cuts=ours.cuts_added,
                warm_nodes=warm_nodes,
                warm_identical=warm_identical,
                wall_seconds=round(wall, 4),
            )
        )
    return rows


def _run_partition_rows() -> list[dict[str, Any]]:
    rows = []
    previous: WarmStartContext | None = None
    for cell in default_corpus():
        topology = cell.topology
        microbatch = (
            cell.config.microbatch_size or cell.model.default_microbatch_size
        )
        cost_model = CostModel(topology.gpu_spec, microbatch)
        n_gpus = topology.n_gpus
        n_microbatches = cell.config.n_microbatches or n_gpus
        bandwidth = cell.config.bandwidth or topology.pcie_bandwidth
        started = time.perf_counter()
        cold = mip_partition(
            cell.model, cost_model, n_gpus, n_microbatches, bandwidth
        )
        wall = time.perf_counter() - started
        warm = mip_partition(
            cell.model,
            cost_model,
            n_gpus,
            n_microbatches,
            bandwidth,
            warm_start=previous if previous is not None else cold.partition,
        )
        rows.append(
            {
                "name": cell.name,
                "boundaries": list(cold.partition.boundaries),
                "step_seconds": cold.timings.step_seconds,
                "nodes": cold.nodes_explored,
                "optimal": cold.optimal,
                "warm_nodes": warm.nodes_explored,
                "warm_identical": (
                    warm.partition.boundaries == cold.partition.boundaries
                ),
                "wall_seconds": round(wall, 4),
            }
        )
        previous = WarmStartContext.from_partition(cold.partition)
    return rows


def _run_portfolio_rows() -> list[dict[str, Any]]:
    """Race every corpus cell; winners and walls are reporting-only.

    The perf-counter reads here are why this function is on the MOB002
    clock allowlist: they time finished solves for the report, they never
    steer a result.  Parity is the gated column — the raced plan and both
    backends' direct solves must return the solo boundaries bit-identically.
    """
    from repro.experiments.runner import resolve_jobs
    from repro.solver.portfolio import (
        BACKEND_RANK,
        DEFAULT_MAX_NODES,
        RaceTask,
        _solve_bnb,
        _solve_highs,
        race_partition,
        shutdown_portfolio_pool,
    )

    jobs = resolve_jobs(ceiling=len(BACKEND_RANK))
    rows = []
    try:
        for cell in default_corpus():
            topology = cell.topology
            microbatch = (
                cell.config.microbatch_size or cell.model.default_microbatch_size
            )
            cost_model = CostModel(topology.gpu_spec, microbatch)
            n_gpus = topology.n_gpus
            n_microbatches = cell.config.n_microbatches or n_gpus
            bandwidth = cell.config.bandwidth or topology.pcie_bandwidth
            solo = mip_partition(
                cell.model, cost_model, n_gpus, n_microbatches, bandwidth
            )
            task = RaceTask(
                model=cell.model,
                gpu_spec=topology.gpu_spec,
                microbatch_size=microbatch,
                recompute=cost_model.recompute,
                precision=cost_model.precision,
                n_gpus=n_gpus,
                n_microbatches=n_microbatches,
                bandwidth=bandwidth,
                gpu_memory=cost_model.usable_gpu_bytes(),
                time_limit=10.0,
                max_nodes=DEFAULT_MAX_NODES,
                warm_boundaries=None,
            )
            started = time.perf_counter()
            bnb = _solve_bnb(task)
            bnb_wall = time.perf_counter() - started
            started = time.perf_counter()
            highs = _solve_highs(task)
            highs_wall = time.perf_counter() - started
            started = time.perf_counter()
            raced = race_partition(
                cell.model, cost_model, n_gpus, n_microbatches, bandwidth,
                jobs=jobs,
            )
            race_wall = time.perf_counter() - started
            reference = solo.partition.boundaries
            rows.append(
                {
                    "name": cell.name,
                    "boundaries": list(raced.partition.boundaries),
                    "parity": (
                        raced.partition.boundaries == reference
                        and bnb.partition.boundaries == reference
                        and highs.partition.boundaries == reference
                    ),
                    "winner": raced.solver_backend,
                    "raced": jobs >= 2,
                    "highs_verified": highs.optimal,
                    "highs_certified": highs.shadow_optimal,
                    "bnb_wall_seconds": round(bnb_wall, 4),
                    "highs_wall_seconds": round(highs_wall, 4),
                    "race_wall_seconds": round(race_wall, 4),
                }
            )
    finally:
        shutdown_portfolio_pool()
    return rows


def run_bench() -> dict[str, Any]:
    """Run the full solver benchmark; returns the JSON document."""
    mip_rows = _run_mip_rows()
    partition_rows = _run_partition_rows()
    portfolio_rows = _run_portfolio_rows()
    wins: dict[str, int] = {}
    for row in portfolio_rows:
        wins[row["winner"]] = wins.get(row["winner"], 0) + 1
    suite_after = None
    bench_suite = Path("BENCH_suite.json")
    if bench_suite.is_file():
        try:
            suite_doc = json.loads(bench_suite.read_text())
            # A three-pass (--baseline) suite document records the serial
            # uncached total under "baseline"; single-pass documents only
            # have the top-level total.
            suite_after = suite_doc.get("baseline", {}).get(
                "total_seconds", suite_doc["total_seconds"]
            )
        except (ValueError, KeyError):
            suite_after = None
    return {
        "schema": BENCH_SCHEMA,
        "suite_uncached": {
            "before_seconds": SUITE_BASELINE_SECONDS,
            "after_seconds": suite_after,
        },
        "mip": [dataclasses.asdict(row) for row in mip_rows],
        "partition": partition_rows,
        "portfolio": portfolio_rows,
        "portfolio_wins": dict(sorted(wins.items())),
    }


def write_bench(path: Path | str, document: dict[str, Any] | None = None) -> dict:
    """Run (if needed) and write the benchmark JSON to ``path``."""
    document = document if document is not None else run_bench()
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=False) + "\n")
    return document


def compare_benchmarks(
    current: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """CI gate: regressions of ``current`` against the committed baseline.

    Returns a list of human-readable failures (empty = gate passes):

    * an instance whose ``parity`` was true is now false (objective-parity
      regression);
    * an instance's ``nodes`` grew beyond ``NODE_REGRESSION_RATIO`` times
      the baseline (node-count regression);
    * a warm-started re-solve stopped returning the cold solution;
    * a portfolio race returned anything but the solo B&B boundaries —
      gated unconditionally (not merely as a regression): bit-identity is
      the portfolio's contract, so one diverging row fails the gate even
      on a fresh baseline;
    * a corpus cell whose HiGHS verification exhausted but lost its
      shadow certificate (``highs_certified``) — uncertified wins are
      ineligible, so such a cell silently stops racing.

    Instances present only on one side are reported as failures too — the
    corpus is part of the contract.  Wall times and race winners are
    never compared: both depend on the hardware the bench ran on.
    """
    failures: list[str] = []
    for section in ("mip", "partition"):
        base_rows = {row["name"]: row for row in baseline.get(section, [])}
        cur_rows = {row["name"]: row for row in current.get(section, [])}
        for name in sorted(base_rows.keys() | cur_rows.keys()):
            if name not in cur_rows:
                failures.append(f"{section}:{name}: instance missing from current run")
                continue
            if name not in base_rows:
                failures.append(f"{section}:{name}: instance missing from baseline")
                continue
            base, cur = base_rows[name], cur_rows[name]
            if base.get("parity", True) and not cur.get("parity", True):
                failures.append(
                    f"{section}:{name}: objective parity regressed "
                    f"(ours={cur.get('objective')} ref={cur.get('ref_objective')})"
                )
            if not cur.get("warm_identical", True):
                failures.append(
                    f"{section}:{name}: warm-started solve no longer matches cold"
                )
            base_nodes = base.get("nodes", 0)
            cur_nodes = cur.get("nodes", 0)
            if base_nodes > 0 and cur_nodes > NODE_REGRESSION_RATIO * base_nodes:
                failures.append(
                    f"{section}:{name}: node count regressed "
                    f"{base_nodes} -> {cur_nodes} "
                    f"(>{NODE_REGRESSION_RATIO:.2f}x)"
                )
    base_rows = {row["name"] for row in baseline.get("portfolio", [])}
    cur_rows = {row["name"]: row for row in current.get("portfolio", [])}
    for name in sorted(base_rows - cur_rows.keys()):
        failures.append(f"portfolio:{name}: instance missing from current run")
    for name, row in sorted(cur_rows.items()):
        if not row.get("parity", True):
            failures.append(
                f"portfolio:{name}: raced result diverged from solo B&B "
                f"(winner={row.get('winner')}, boundaries={row.get('boundaries')})"
            )
        if row.get("highs_verified", True) and not row.get("highs_certified", True):
            failures.append(
                f"portfolio:{name}: highs verification exhausted without the "
                "shadow certificate (hint-dependent exhaustion: highs can "
                "never win this cell)"
            )
    return failures
