"""Warm-start context: carry one solve's outcome into the next.

The suite's solver calls are rarely independent: the partition sweep
solves the same model for N, N+1, ... GPUs; fault re-planning solves the
N-1 instance right after the N instance.  :class:`WarmStartContext` is the
small, explicit bridge between those solves:

* ``boundaries`` seeds :func:`repro.core.partition.mip_partition`'s
  incumbent (the previous partition, re-split to the new stage count);
* ``x`` seeds :class:`repro.solver.branch_bound.BranchAndBoundSolver`'s
  incumbent when it is integer-feasible for the new instance.

Warm starts are *hints*: both consumers use canonical tie-breaking and
tie-exploring pruning, so the returned optimum is identical with or
without the context — only the work (nodes, pivots) shrinks.  That
invariance is what keeps warm starts out of the memoization cache keys.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["WarmStartContext"]


@dataclasses.dataclass(frozen=True)
class WarmStartContext:
    """Hints carried from a previous solve into a related one.

    Attributes:
        boundaries: Layer cut points of a previously optimal partition
            (consumed by ``mip_partition``; duck-typed via this attribute).
        x: Integer-feasible point of a previous MIP solve in the *original*
            variable space (consumed by ``BranchAndBoundSolver.solve``).
        label: Where the hint came from, for traces and benchmarks.
    """

    boundaries: tuple[int, ...] | None = None
    x: tuple[float, ...] | None = None
    label: str = ""

    @classmethod
    def from_partition(cls, result: object, *, label: str = "partition") -> "WarmStartContext":
        """Build from a ``PartitionResult`` / ``Partition`` / boundary list."""
        boundaries = getattr(result, "boundaries", None)
        if boundaries is None:
            partition = getattr(result, "partition", None)
            boundaries = getattr(partition, "boundaries", None)
        if boundaries is None and isinstance(result, (tuple, list)):
            boundaries = result
        if boundaries is None:
            raise TypeError(f"cannot extract boundaries from {type(result).__name__}")
        return cls(boundaries=tuple(int(b) for b in boundaries), label=label)

    @classmethod
    def from_mip(cls, solution: object, *, label: str = "mip") -> "WarmStartContext":
        """Build from a ``MIPSolution`` with a solution vector."""
        x = getattr(solution, "x", None)
        if x is None:
            raise TypeError("MIP solution has no x vector to warm start from")
        return cls(x=tuple(float(v) for v in np.asarray(x, dtype=float)), label=label)

    def x_array(self) -> np.ndarray | None:
        return None if self.x is None else np.asarray(self.x, dtype=float)
