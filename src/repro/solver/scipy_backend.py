"""Optional scipy (HiGHS) backends for LPs and MILPs.

Used to cross-validate the from-scratch simplex and branch & bound, and as a
faster solver for large partitioning MIPs.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize, sparse

from repro.solver.branch_bound import MIPSolution, MIPStatus
from repro.solver.model import LinearProgram, StandardForm
from repro.solver.simplex import LPSolution, LPStatus

__all__ = ["solve_lp_scipy", "solve_milp_scipy"]


def solve_lp_scipy(form: StandardForm) -> LPSolution:
    """Solve the LP relaxation of ``form`` with :func:`scipy.optimize.linprog`."""
    bounds = list(zip(form.lb, [u if math.isfinite(u) else None for u in form.ub]))
    result = optimize.linprog(
        form.c,
        A_ub=form.a_ub if form.a_ub.size else None,
        b_ub=form.b_ub if form.b_ub.size else None,
        A_eq=form.a_eq if form.a_eq.size else None,
        b_eq=form.b_eq if form.b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 2:
        return LPSolution(LPStatus.INFEASIBLE)
    if result.status == 3:
        return LPSolution(LPStatus.UNBOUNDED)
    if not result.success:  # pragma: no cover - solver hiccup
        return LPSolution(LPStatus.INFEASIBLE)
    return LPSolution(LPStatus.OPTIMAL, np.asarray(result.x), float(result.fun))


def solve_milp_scipy(program: LinearProgram, *, time_limit: float = 60.0) -> MIPSolution:
    """Solve a MILP with :func:`scipy.optimize.milp` (HiGHS branch & cut)."""
    form = program.to_standard_form()
    constraints = []
    if form.a_ub.size:
        constraints.append(
            optimize.LinearConstraint(sparse.csr_matrix(form.a_ub), -np.inf, form.b_ub)
        )
    if form.a_eq.size:
        constraints.append(
            optimize.LinearConstraint(sparse.csr_matrix(form.a_eq), form.b_eq, form.b_eq)
        )
    result = optimize.milp(
        form.c,
        constraints=constraints or None,
        bounds=optimize.Bounds(form.lb, form.ub),
        integrality=form.integer.astype(int),
        options={"time_limit": time_limit},
    )
    if result.status == 2:
        return MIPSolution(MIPStatus.INFEASIBLE)
    if result.status == 3:
        return MIPSolution(MIPStatus.UNBOUNDED)
    if result.x is None:
        return MIPSolution(MIPStatus.NO_SOLUTION)
    x = np.asarray(result.x)
    x[form.integer] = np.round(x[form.integer])
    status = MIPStatus.OPTIMAL if result.status == 0 else MIPStatus.FEASIBLE
    return MIPSolution(status, x=x, objective=form.objective_value(x))
