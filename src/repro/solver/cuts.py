"""Cutting planes for the branch & bound root: Gomory fractional cuts and
knapsack cover cuts.

Both separators return cuts as dense ``(row, rhs)`` pairs over the
*structural* variables, ready to append to ``StandardForm.a_ub`` /
``b_ub``.  Cuts never remove integer-feasible points, so adding them
cannot change the MIP optimum — only tighten the LP relaxation and shrink
the branch & bound tree.

Gomory cuts are read off the optimal simplex tableau
(:attr:`~repro.solver.simplex.RevisedSimplex.last_workspace`): a basic
integer variable at fractional value yields

``sum_j frac(alpha_ij) x_j >= frac(beta_i)``

over the nonbasic columns, valid when every participating nonbasic column
is an integral quantity resting at a zero lower bound (the textbook
all-integer setting).  Nonbasic slacks are substituted out via their
defining row so the cut lands back in structural space.

Cover cuts apply to knapsack rows ``sum a_j x_j <= b`` over binaries with
``a_j > 0``: a minimal cover ``C`` (``sum_{C} a_j > b``) gives
``sum_{C} x_j <= |C| - 1``; separation greedily packs the most-fractional
variables first.
"""

from __future__ import annotations

import math

import numpy as np

from repro.solver.model import StandardForm
from repro.solver.simplex import RevisedSimplex, _AT_LOWER, _TOL

__all__ = ["gomory_cuts", "cover_cuts"]

#: Only cut on meaningfully fractional basics — shallow fractionality
#: yields numerically weak cuts.
_MIN_FRAC = 0.01


def _frac(value: float) -> float:
    return value - math.floor(value)


def _integral_columns(form: StandardForm) -> np.ndarray:
    """Which simplex columns (structurals then ub-row slacks) are integral
    in every feasible solution: integer structurals, and slacks of rows
    whose support is all-integer with integer coefficients and rhs."""
    n = len(form.c)
    m_ub = form.a_ub.shape[0]
    integral = np.zeros(n + m_ub, dtype=bool)
    integral[:n] = form.integer
    for r in range(m_ub):
        row = form.a_ub[r]
        support = np.abs(row) > _TOL
        if (
            np.all(form.integer[support])
            and np.all(np.abs(row - np.round(row)) < _TOL)
            and abs(form.b_ub[r] - round(form.b_ub[r])) < _TOL
        ):
            integral[n + r] = True
    return integral


def gomory_cuts(
    simplex: RevisedSimplex, form: StandardForm, *, max_cuts: int = 8
) -> list[tuple[np.ndarray, float]]:
    """Gomory fractional cuts from the last optimal tableau of ``simplex``.

    Must be called right after an OPTIMAL ``simplex.solve(...)`` on the
    same ``form``.  Deterministic: rows are scanned in index order and the
    first ``max_cuts`` valid cuts are returned.
    """
    ws = getattr(simplex, "last_workspace", None)
    if ws is None:
        return []
    n = len(form.c)
    n_total = simplex.n_total
    integral = _integral_columns(form)
    beta = ws.beta()
    cuts: list[tuple[np.ndarray, float]] = []
    for i in range(ws.m):
        basic = int(ws.basic[i])
        if basic >= n or not form.integer[basic]:
            continue
        f0 = _frac(float(beta[i]))
        if not _MIN_FRAC < f0 < 1.0 - _MIN_FRAC:
            continue
        alpha = ws.binv[i] @ ws.a
        coefs = np.zeros(n)  # structural part of the cut
        slack_part = 0.0  # rhs correction from substituted slacks
        rhs = f0
        ok = True
        for j in range(ws.ncols):
            if j == basic or ws.status[j] == 2:  # other basics: coefficient 0
                continue
            fj = _frac(float(alpha[j]))
            if fj < _TOL or fj > 1.0 - _TOL:
                continue
            if j >= n_total:
                # Scratch artificial fixed at 0: contributes nothing.
                if ws.ub[j] - ws.lb[j] <= _TOL:
                    continue
                ok = False
                break
            # Validity needs an integral column resting at a zero lower
            # bound (x_j >= 0 with x_j integer in the derivation).
            if (
                not integral[j]
                or ws.status[j] != _AT_LOWER
                or abs(ws.lb[j]) > _TOL
            ):
                ok = False
                break
            if j < n:
                coefs[j] += fj
            else:
                # Slack of ub-row r: s_r = b_r - a_r . x
                r = j - n
                coefs -= fj * form.a_ub[r]
                slack_part += fj * float(form.b_ub[r])
        if not ok:
            continue
        rhs -= slack_part
        if np.all(np.abs(coefs) < _TOL):
            continue
        # "sum coefs . x >= rhs"  ->  "-coefs . x <= -rhs" for a_ub.
        cuts.append((-coefs, -rhs))
        if len(cuts) >= max_cuts:
            break
    return cuts


def cover_cuts(
    form: StandardForm, x_lp: np.ndarray, *, max_cuts: int = 8
) -> list[tuple[np.ndarray, float]]:
    """Violated minimal-cover cuts for the knapsack rows of ``form``.

    Separation: for each knapsack row, greedily build a cover preferring
    variables the LP sets closest to 1; emit the cut when the LP point
    violates it.  Deterministic (index-order tie-breaks).
    """
    n = len(form.c)
    binary = form.integer & (form.lb <= _TOL) & (np.abs(form.ub - 1.0) <= _TOL)
    cuts: list[tuple[np.ndarray, float]] = []
    for r in range(form.a_ub.shape[0]):
        row = form.a_ub[r]
        b = float(form.b_ub[r])
        support = np.flatnonzero(row > _TOL)
        if len(support) < 2 or b <= _TOL:
            continue
        if np.any(np.abs(row) > _TOL) and not np.all(
            binary[np.flatnonzero(np.abs(row) > _TOL)]
        ):
            continue
        if np.any(row[np.abs(row) > _TOL] < 0):
            continue
        # Greedy cover: most-fractional-toward-1 first (stable order).
        order = sorted(support, key=lambda j: (-x_lp[j], j))
        cover: list[int] = []
        weight = 0.0
        for j in order:
            cover.append(int(j))
            weight += float(row[j])
            if weight > b + _TOL:
                break
        else:
            continue  # whole support fits: no cover exists
        # Minimalise: drop members whose removal keeps it a cover.
        for j in sorted(cover, key=lambda j: (x_lp[j], j)):
            if weight - float(row[j]) > b + _TOL:
                cover.remove(j)
                weight -= float(row[j])
        if sum(x_lp[j] for j in cover) <= len(cover) - 1 + 1e-6:
            continue  # not violated by the LP point
        coefs = np.zeros(n)
        coefs[cover] = 1.0
        cuts.append((coefs, float(len(cover) - 1)))
        if len(cuts) >= max_cuts:
            break
    return cuts
