"""MILP solver substrate (replaces Gurobi, which the paper uses for §3.2).

Stack: algebraic model builder -> dense two-phase simplex -> best-first
branch & bound, with optional scipy/HiGHS backends for cross-validation.
"""

from repro.solver.branch_bound import BranchAndBoundSolver, MIPSolution, MIPStatus
from repro.solver.model import (
    Constraint,
    ConstraintSense,
    LinearExpr,
    LinearProgram,
    StandardForm,
    Variable,
)
from repro.solver.presolve import PresolveResult, postsolve, presolve
from repro.solver.scipy_backend import solve_lp_scipy, solve_milp_scipy
from repro.solver.simplex import LPSolution, LPStatus, SimplexError, solve_standard_form

__all__ = [
    "BranchAndBoundSolver",
    "Constraint",
    "ConstraintSense",
    "LPSolution",
    "LPStatus",
    "LinearExpr",
    "LinearProgram",
    "MIPSolution",
    "MIPStatus",
    "PresolveResult",
    "postsolve",
    "presolve",
    "SimplexError",
    "StandardForm",
    "Variable",
    "solve_lp_scipy",
    "solve_milp_scipy",
    "solve_standard_form",
]
