"""MILP solver substrate (replaces Gurobi, which the paper uses for §3.2).

Stack: algebraic model builder -> bounded-variable revised simplex (primal
+ dual, warm-startable basis) -> best-first branch & bound with root cuts,
primal heuristics, incremental bound propagation, and deterministic
node/pivot budgets — with optional scipy/HiGHS backends for
cross-validation.
"""

from repro.solver.branch_bound import BranchAndBoundSolver, MIPSolution, MIPStatus
from repro.solver.cuts import cover_cuts, gomory_cuts
from repro.solver.heuristics import dive, round_and_repair
from repro.solver.model import (
    Constraint,
    ConstraintSense,
    LinearExpr,
    LinearProgram,
    StandardForm,
    Variable,
)
from repro.solver.portfolio import (
    BACKEND_RANK,
    InlineRaceExecutor,
    RaceTask,
    race_partition,
    shutdown_portfolio_pool,
)
from repro.solver.presolve import (
    PresolveResult,
    postsolve,
    presolve,
    propagate_bounds,
)
from repro.solver.scipy_backend import solve_lp_scipy, solve_milp_scipy
from repro.solver.simplex import (
    Basis,
    LPSolution,
    LPStatus,
    RevisedSimplex,
    SimplexError,
    solve_standard_form,
)
from repro.solver.warmstart import WarmStartContext

__all__ = [
    "BACKEND_RANK",
    "Basis",
    "BranchAndBoundSolver",
    "Constraint",
    "ConstraintSense",
    "LPSolution",
    "LPStatus",
    "InlineRaceExecutor",
    "LinearExpr",
    "LinearProgram",
    "MIPSolution",
    "MIPStatus",
    "PresolveResult",
    "RaceTask",
    "RevisedSimplex",
    "SimplexError",
    "StandardForm",
    "Variable",
    "WarmStartContext",
    "cover_cuts",
    "dive",
    "gomory_cuts",
    "postsolve",
    "presolve",
    "propagate_bounds",
    "race_partition",
    "round_and_repair",
    "shutdown_portfolio_pool",
    "solve_lp_scipy",
    "solve_milp_scipy",
    "solve_standard_form",
]
