"""Racing solver portfolio: branch-and-bound vs HiGHS, first valid win.

The production partition search (:func:`repro.core.partition.
mip_partition`) and the literal Eqs. 3-11 boolean MIP solved by HiGHS
(:mod:`repro.core.mip_formulation` over :mod:`repro.solver.
scipy_backend`) provably agree — the solvebench parity gate pins it — so
planning latency is ``min(backend latencies)`` if both run at once.
:func:`race_partition` does exactly that:

* a leased *pair* of persistent child processes (one per backend,
  spawned lazily, reused across races, one pair per concurrent race up
  to the container's job budget) each solve the same :class:`RaceTask`;
* the first *eligible* result wins and is returned immediately;
* the loser is cancelled through a shared :class:`multiprocessing.Event`
  polled inside its search (a cancelled search returns nothing, so
  cancellation can discard work but never change a returned plan);
* when several backends finish in the same wait round, the fixed
  ``BACKEND_RANK`` order breaks the tie deterministically.

**Bit-identity.**  The ``bnb`` backend *is* the solo solve.  The
``highs`` backend solves the literal MIP per stage count, then feeds the
best boundaries as a warm-start hint into the same ``mip_partition``
verification pass — and a hint provably cannot change an exhausted
search's result (canonical tie-break, tied subtrees explored).
Exhaustion of the *hinted* pass is not enough, though: a hint tightens
pruning, so the hinted search can exhaust within ``max_nodes`` on a
model where the solo search would have hit the budget and returned a
(different) non-optimal incumbent.  A ``highs`` result is therefore
eligible only when its verification pass ran to completion
(``optimal=True``) **and** carries the search's shadow certificate
(``shadow_optimal=True``: the solo-seeded search provably also exhausts
within the budget — see ``mip_partition``'s ``shadow_warm_start``).
Uncertified or budget-truncated searches answer from ``bnb`` alone.
Deadline-truncated solves (``max_nodes`` below the default budget)
never race at all — their contract is "the solo incumbent at that
budget", which only the solo search defines.

**Fallbacks.**  Racing degrades to the plain solo solve — never to an
error — whenever the environment cannot support it: a single-job
container (``REPRO_JOBS`` / :func:`repro.experiments.runner.
default_jobs`), a daemonic worker process that may not spawn children,
a custom cost model the child could not reconstruct, a pool that fails
to start, or every pair already leased to another race (the solo solve
runs on the caller's own thread, preserving thread parallelism).

This module reads no clocks: the winner is decided by arrival order and
rank, and per-backend wall times are measured only by ``repro
solvebench``'s allowlisted reporting sites.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import threading
from multiprocessing import connection

from repro.core.mip_formulation import solve_partition_mip
from repro.core.partition import (
    PartitionResult,
    PartitionSearchCancelled,
    mip_partition,
)
from repro.models.costmodel import CostModel

__all__ = [
    "BACKEND_RANK",
    "DEFAULT_MAX_NODES",
    "InlineRaceExecutor",
    "RaceTask",
    "race_partition",
    "shutdown_portfolio_pool",
]

#: Fixed backend rank: index 0 wins every same-round tie.  ``bnb`` first —
#: it is the solo solve, so ties resolve to the reference computation.
BACKEND_RANK: tuple[str, ...] = ("bnb", "highs")

#: ``mip_partition``'s default deterministic node budget.  Solves truncated
#: below it (serve deadlines) are answered by the solo search only.
DEFAULT_MAX_NODES = 20_000


@dataclasses.dataclass(frozen=True)
class RaceTask:
    """A picklable partition solve, self-contained for a child process.

    The cost model is shipped as its constructor arguments rather than as
    an object: rebuilding ``CostModel(gpu_spec, microbatch_size, ...)`` in
    the child guarantees both backends price layers identically to the
    parent's solo path.
    """

    model: object
    gpu_spec: object
    microbatch_size: int
    recompute: bool
    precision: object
    n_gpus: int
    n_microbatches: int
    bandwidth: float
    gpu_memory: int
    time_limit: float
    max_nodes: int
    warm_boundaries: tuple[int, ...] | None


def _task_cost_model(task: RaceTask) -> CostModel:
    return CostModel(
        task.gpu_spec,
        task.microbatch_size,
        recompute=task.recompute,
        precision=task.precision,
    )


def _solve_bnb(task: RaceTask, poll=None) -> PartitionResult:
    """The solo boundary branch-and-bound, verbatim (rank-0 backend)."""
    return mip_partition(
        task.model,
        _task_cost_model(task),
        task.n_gpus,
        task.n_microbatches,
        task.bandwidth,
        gpu_memory=task.gpu_memory,
        time_limit=task.time_limit,
        max_nodes=task.max_nodes,
        warm_start=task.warm_boundaries,
        poll=poll,
    )


def _solve_highs(task: RaceTask, poll=None) -> PartitionResult:
    """Literal-MIP backend: HiGHS boundaries hint a verification pass.

    The per-stage-count MIPs only produce a *hint*; the returned result
    always comes from ``mip_partition``, whose exhausted searches are
    hint-invariant — that is the whole bit-identity argument.  ``poll``
    is checked between stage counts and inside the verification search.
    """
    cost_model = _task_cost_model(task)
    best: tuple[float, tuple[int, ...]] | None = None
    for n_stages in range(max(1, task.n_gpus), task.model.n_layers + 1):
        if poll is not None and poll():
            raise PartitionSearchCancelled(
                f"highs backend cancelled before S={n_stages}"
            )
        outcome = solve_partition_mip(
            task.model,
            cost_model,
            task.n_gpus,
            task.n_microbatches,
            task.bandwidth,
            gpu_memory=task.gpu_memory,
            stage_counts=[n_stages],
            backend="scipy",
            time_limit_per_stage=task.time_limit,
        )
        if outcome.partition is None:
            continue
        candidate = (outcome.step_seconds, tuple(outcome.partition.boundaries))
        if best is None or candidate < best:
            best = candidate
    hint = best[1] if best is not None else task.warm_boundaries
    result = mip_partition(
        task.model,
        cost_model,
        task.n_gpus,
        task.n_microbatches,
        task.bandwidth,
        gpu_memory=task.gpu_memory,
        time_limit=task.time_limit,
        max_nodes=task.max_nodes,
        warm_start=hint,
        # The solo search is seeded with the caller's hint, not ours:
        # shadow_optimal certifies it would have exhausted too, which is
        # what makes this result returnable as the solo answer.
        shadow_warm_start=task.warm_boundaries,
        poll=poll,
    )
    result.solver_backend = "highs"
    return result


_BACKENDS = {"bnb": _solve_bnb, "highs": _solve_highs}


def _eligible(backend: str, result: PartitionResult) -> bool:
    """May this backend's result be returned as the race winner?

    ``bnb`` always — it *is* the solo computation.  ``highs`` only when
    its verification pass exhausted the tree *and* certified that the
    solo-seeded search would have exhausted too (``shadow_optimal``):
    exhausted searches return the canonical optimum regardless of hints,
    but exhaustion of the hinted pass alone proves nothing about the
    solo search, whose budget-truncated incumbent is the contract for
    models where it does not exhaust.  Absent or false certificates
    answer from ``bnb``.
    """
    if backend == "bnb":
        return True
    return bool(result.optimal) and bool(getattr(result, "shadow_optimal", False))


# ----------------------------------------------------------------------
# The persistent process pool (pairs of backend children, one pair per
# concurrent race)
# ----------------------------------------------------------------------


def _portfolio_worker_main(conn, backend: str, cancel) -> None:
    """Child loop: solve races until EOF, honoring the cancel event."""
    solver = _BACKENDS[backend]
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message[0] == "exit":
            return
        _, race_id, task = message
        try:
            result = solver(task, poll=cancel.is_set)
        except PartitionSearchCancelled:
            reply = (race_id, "cancelled", None)
        except Exception as err:
            reply = (race_id, "error", f"{type(err).__name__}: {err}")
        else:
            reply = (race_id, "ok", result)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return  # parent shut the pool down mid-solve


class _BackendWorker:
    """Parent-side handle of one persistent backend child."""

    def __init__(self, backend: str, context) -> None:
        self.backend = backend
        self.rank = BACKEND_RANK.index(backend)
        self.cancel = context.Event()
        self.conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_portfolio_worker_main,
            args=(child_conn, backend, self.cancel),
            name=f"repro-portfolio-{backend}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # parent keeps one end only: EOF means death
        #: Race id this worker was abandoned on (its reply is still owed).
        self.pending_race: int | None = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def drain(self) -> bool:
        """Consume the reply of an abandoned race; False if the child died.

        The cancel event makes abandoned solves return quickly, so the
        blocking receive here is bounded by one backend's remaining work.
        """
        while self.pending_race is not None:
            try:
                reply = self.conn.recv()
            except (EOFError, OSError):
                return False
            if reply[0] == self.pending_race:
                self.pending_race = None
        self.cancel.clear()
        return True

    def close(self) -> None:
        try:
            self.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()


class _RacePair:
    """One worker per backend, leased to exactly one race at a time.

    A race owns its pair for the whole race, so distinct races never
    share a pipe or a cancel event and can run concurrently — the old
    single global pool serialized every racing caller behind one lock.
    """

    def __init__(self) -> None:
        context = multiprocessing.get_context("spawn")
        self.workers = [_BackendWorker(b, context) for b in BACKEND_RANK]

    def refresh(self) -> list[_BackendWorker]:
        """Drain stale replies, respawn dead workers; the live roster.

        Raises on spawn failure — the caller discards the whole pair.
        """
        context = multiprocessing.get_context("spawn")
        roster = []
        for index, worker in enumerate(self.workers):
            if not worker.alive or not worker.drain():
                worker.close()
                worker = _BackendWorker(worker.backend, context)
                self.workers[index] = worker
            roster.append(worker)
        return roster

    def close(self) -> None:
        for worker in self.workers:
            worker.close()


#: Every live pair (leased or idle) and the idle subset.  Written only
#: through the MOB007-registered seams below; the race itself runs
#: lock-free on its leased pair, so concurrent races proceed in parallel.
_PAIRS: list[_RacePair] = []
_IDLE_PAIRS: list[_RacePair] = []
_POOL_LOCK = threading.Lock()
_NEXT_RACE = itertools.count(1)


def _max_pairs() -> int:
    """Pair cap: each pair is ``len(BACKEND_RANK)`` processes, and the
    whole pool must fit the container's job budget."""
    # Lazy import: runner -> core.api -> (lazily) this module.
    from repro.experiments.runner import default_jobs

    return max(1, default_jobs() // len(BACKEND_RANK))


def _acquire_pair():
    """Synchronization seam: lease ``(pair, race id)``; ``None`` at capacity.

    Prefers an idle pair; spawns a new one while under the cap.  ``None``
    (capacity reached, or spawn failure) sends the caller to the inline
    solo solve — which still runs on the *caller's* thread, so saturated
    racing degrades to plain thread parallelism, not to a queue.
    """
    with _POOL_LOCK:
        if _IDLE_PAIRS:
            return _IDLE_PAIRS.pop(), next(_NEXT_RACE)
        if len(_PAIRS) >= _max_pairs():
            return None
        try:
            pair = _RacePair()
        except Exception:
            return None
        _PAIRS.append(pair)
        return pair, next(_NEXT_RACE)


def _release_pair(pair: _RacePair) -> None:
    """Synchronization seam: return a leased pair to the idle list.

    A pair that ``shutdown_portfolio_pool`` already forgot (shutdown ran
    mid-race) is closed here instead, once its race is over.
    """
    with _POOL_LOCK:
        if pair in _PAIRS:
            _IDLE_PAIRS.append(pair)
            return
    pair.close()


def _discard_pair(pair: _RacePair) -> None:
    """Synchronization seam: drop and close a pair that broke mid-race."""
    with _POOL_LOCK:
        if pair in _PAIRS:
            _PAIRS.remove(pair)
    pair.close()


def shutdown_portfolio_pool() -> None:
    """Synchronization seam: terminate and forget the racing children.

    Pairs leased to in-flight races are forgotten here and closed by
    their race's ``_release_pair``; closing (which joins children) always
    happens outside the pool lock.
    """
    with _POOL_LOCK:
        idle = list(_IDLE_PAIRS)
        _IDLE_PAIRS.clear()
        _PAIRS.clear()
    for pair in idle:
        pair.close()


def _race_over_pool(task: RaceTask) -> PartitionResult | None:
    """Run one race on a leased pair; ``None`` means 'fall back solo'."""
    leased = _acquire_pair()
    if leased is None:
        return None
    pair, race_id = leased
    try:
        try:
            workers = pair.refresh()
        except Exception:
            _discard_pair(pair)
            pair = None
            return None
        racing: dict[object, _BackendWorker] = {}
        for worker in workers:
            try:
                worker.conn.send(("solve", race_id, task))
            except (BrokenPipeError, OSError):
                worker.close()  # refresh respawns it for the next lease
                continue
            racing[worker.conn] = worker
        if not racing:
            return None
        winner: PartitionResult | None = None
        while racing and winner is None:
            ready = connection.wait(list(racing))
            replies = []
            for conn in ready:
                worker = racing.pop(conn)
                try:
                    reply = worker.conn.recv()
                except (EOFError, OSError):
                    worker.close()
                    continue
                reply_race, kind, payload = reply
                if reply_race != race_id:
                    racing[conn] = worker  # stale reply; the real one is owed
                    continue
                replies.append((worker, kind, payload))
            # Same-round ties break by fixed backend rank, deterministically.
            for worker, kind, payload in sorted(replies, key=lambda r: r[0].rank):
                if kind == "ok" and _eligible(worker.backend, payload):
                    winner = payload
                    break
        for worker in racing.values():
            worker.cancel.set()
            worker.pending_race = race_id
        return winner
    finally:
        if pair is not None:
            _release_pair(pair)


# ----------------------------------------------------------------------
# Inline (process-free) racing — the deterministic test seam
# ----------------------------------------------------------------------


class InlineRaceExecutor:
    """Run a race inline with a scripted finish order (no processes).

    ``order`` lists arrival rounds: a string is a backend finishing alone
    in its round; a tuple is several backends finishing simultaneously
    (rank breaks the tie).  ``InlineRaceExecutor(("highs", "bnb"))``
    forces the "HiGHS finishes first" ordering; ``(("bnb", "highs"),)``
    forces a photo finish.  The decision logic consuming these rounds is
    the same one the process pool uses.
    """

    def __init__(self, order=(("bnb", "highs"),)) -> None:
        self.rounds: list[tuple[str, ...]] = [
            (entry,) if isinstance(entry, str) else tuple(entry)
            for entry in order
        ]
        seen = [b for r in self.rounds for b in r]
        if sorted(seen) != sorted(set(seen)) or not set(seen) <= set(BACKEND_RANK):
            raise ValueError(f"invalid race order {order!r}")

    def race(self, task: RaceTask):
        for round_backends in self.rounds:
            replies = []
            for backend in round_backends:
                try:
                    result = _BACKENDS[backend](task)
                except Exception as err:
                    replies.append((backend, "error", f"{err}"))
                else:
                    replies.append((backend, "ok", result))
            yield replies


def _race_inline(task: RaceTask, executor) -> PartitionResult | None:
    for replies in executor.race(task):
        ranked = sorted(replies, key=lambda r: BACKEND_RANK.index(r[0]))
        for backend, kind, payload in ranked:
            if kind == "ok" and _eligible(backend, payload):
                return payload
    return None


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def _racing_available(jobs: int | None) -> bool:
    if multiprocessing.current_process().daemon:
        # Daemonic children (the serve layer's process workers) may not
        # spawn grandchildren; they solve solo, and that is also why the
        # race lives here rather than inside every worker.
        return False
    if jobs is None:
        # Lazy import: runner -> core.api -> (lazily) this module.
        from repro.experiments.runner import resolve_jobs

        # Ceiling 2: a race uses exactly len(BACKEND_RANK) processes, so
        # never claim more of the container than that.
        jobs = resolve_jobs(ceiling=len(BACKEND_RANK))
    return jobs >= 2


def race_partition(
    model,
    cost_model: CostModel,
    n_gpus: int,
    n_microbatches: int,
    bandwidth: float,
    *,
    gpu_memory: int | None = None,
    time_limit: float = 10.0,
    max_nodes: int = DEFAULT_MAX_NODES,
    warm_start: object = None,
    jobs: int | None = None,
    executor=None,
) -> PartitionResult:
    """Race the portfolio backends; bit-identical to the solo solve.

    Drop-in replacement for :func:`repro.core.partition.mip_partition`
    (same arguments, same result contract, same exceptions), plus:

    Args:
        jobs: Parallelism available to the race; ``None`` consults
            ``REPRO_JOBS`` / :func:`repro.experiments.runner.default_jobs`
            so nested pools never oversubscribe a container.  Below 2 the
            solve runs solo inline.
        executor: Test/bench seam — an :class:`InlineRaceExecutor` races
            in-process with a scripted finish order instead of spawning
            the persistent pool.
    """
    if gpu_memory is None:
        gpu_memory = cost_model.usable_gpu_bytes()
    if max_nodes < DEFAULT_MAX_NODES or type(cost_model) is not CostModel:
        # Deadline-truncated solves answer from the solo incumbent by
        # contract; exotic cost models cannot be rebuilt in a child.
        return mip_partition(
            model, cost_model, n_gpus, n_microbatches, bandwidth,
            gpu_memory=gpu_memory, time_limit=time_limit,
            max_nodes=max_nodes, warm_start=warm_start,
        )
    boundaries = getattr(warm_start, "boundaries", warm_start)
    task = RaceTask(
        model=model,
        gpu_spec=cost_model.gpu_spec,
        microbatch_size=cost_model.microbatch_size,
        recompute=cost_model.recompute,
        precision=cost_model.precision,
        n_gpus=n_gpus,
        n_microbatches=n_microbatches,
        bandwidth=bandwidth,
        gpu_memory=gpu_memory,
        time_limit=time_limit,
        max_nodes=max_nodes,
        warm_boundaries=(
            tuple(int(b) for b in boundaries) if boundaries is not None else None
        ),
    )
    if executor is not None:
        winner = _race_inline(task, executor)
    elif _racing_available(jobs):
        winner = _race_over_pool(task)
    else:
        winner = None
    if winner is None:
        return _solve_bnb(task)
    return winner
