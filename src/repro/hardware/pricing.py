"""Server pricing model (Table 1 and §4.8).

The paper's cost argument has two parts:

* **Purchase prices** (Table 1): a commodity 8x3090-Ti server costs ~$20,000
  versus ~$200,000 for a DGX A100 and ~$20,000/month for a rented EC2 P4.
* **Per-step training price** (Figure 15b): renting the data-center server
  (EC2 P3.8xlarge, 4xV100) is compared against renting a commodity 4x3090-Ti
  server; per-step price = hourly rate x per-step time.  The paper finds
  Mobius-on-commodity costs ~43% less per step than DeepSpeed-on-DC while
  being only ~42% slower.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "ServerRental",
    "EC2_P3_8XLARGE",
    "COMMODITY_4X3090TI",
    "COMMODITY_8X3090TI",
    "per_step_price",
]

SECONDS_PER_HOUR = 3600.0


@dataclasses.dataclass(frozen=True)
class ServerRental:
    """Hourly rental pricing for one server configuration.

    Attributes:
        name: Configuration label.
        hourly_usd: Rental price in USD per hour.
        n_gpus: Number of GPUs in the configuration.
    """

    name: str
    hourly_usd: float
    n_gpus: int

    def price_for(self, seconds: float) -> float:
        """Rental cost in USD of occupying the server for ``seconds``."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        return self.hourly_usd * seconds / SECONDS_PER_HOUR


#: Amazon EC2 P3.8xlarge (4xV100, NVLink), on-demand [paper ref 1].
EC2_P3_8XLARGE = ServerRental(name="EC2 P3.8xlarge (4xV100)", hourly_usd=12.24, n_gpus=4)

#: Commodity 4x3090-Ti cloud rental (immers.cloud class pricing, paper ref 8).
COMMODITY_4X3090TI = ServerRental(name="4x3090-Ti server", hourly_usd=4.90, n_gpus=4)

#: Commodity 8x3090-Ti cloud rental.
COMMODITY_8X3090TI = ServerRental(name="8x3090-Ti server", hourly_usd=9.80, n_gpus=8)


def per_step_price(rental: ServerRental, step_seconds: float) -> float:
    """Training price of one step (Figure 15b): hourly rate x step time."""
    return rental.price_for(step_seconds)
