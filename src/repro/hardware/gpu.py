"""GPU device models.

Mobius (ASPLOS 2023) targets commodity GPUs (RTX 3090-Ti class) and compares
against data-center GPUs (A100, V100).  Since the reproduction runs without
physical GPUs, a :class:`GPUSpec` captures everything the paper's results
depend on: memory capacity, sustained compute throughput, price, and whether
GPUDirect peer-to-peer / high-bandwidth NVLink connectivity are available
(Table 1 of the paper).

Compute-time estimation uses a simple roofline-style model: a layer that
performs ``flops`` floating point operations at precision ``dtype`` runs for
``flops / (peak_throughput * utilization)`` seconds.  The ``utilization``
factor models the usual gap between peak and achieved throughput for
transformer workloads (roughly 40-60% in practice).
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = [
    "Precision",
    "GPUSpec",
    "RTX_3090TI",
    "A100",
    "V100",
    "GPU_PRESETS",
]

TERA = 1e12
GIB = 1024**3


class Precision(enum.Enum):
    """Numeric precision of a compute kernel."""

    FP32 = "fp32"
    FP16 = "fp16"


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU device.

    Attributes:
        name: Marketing name, e.g. ``"RTX 3090-Ti"``.
        memory_bytes: Usable device memory in bytes.
        fp32_tflops: Peak FP32 throughput in TFLOP/s.
        fp16_tflops: Peak FP16 (tensor-core) throughput in TFLOP/s.
        tensor_cores: Number of tensor cores (Table 1).
        price_usd: Purchase price in USD (Table 1).
        supports_p2p: Whether GPUDirect P2P is available.  Commodity GPUs
            lack it, so GPU-to-GPU transfers bounce through CPU DRAM.
        supports_nvlink: Whether high-bandwidth NVLink connectivity is
            available (data-center GPUs only).
        utilization: Fraction of peak throughput achieved on transformer
            kernels; used by :meth:`compute_seconds`.  The default (0.09)
            is calibrated to the paper's measured per-step times: fine-tuning
            with microbatch size 1-2, sequence 512, and heterogeneous-memory
            swapping achieves only single-digit-percent MFU (small kernels,
            launch overhead, host synchronisation), i.e. a few TFLOP/s
            effective on a 3090-Ti.
    """

    name: str
    memory_bytes: int
    fp32_tflops: float
    fp16_tflops: float
    tensor_cores: int
    price_usd: float
    supports_p2p: bool
    supports_nvlink: bool
    utilization: float = 0.09

    def peak_flops(self, precision: Precision) -> float:
        """Peak throughput in FLOP/s at the given precision."""
        if precision is Precision.FP32:
            return self.fp32_tflops * TERA
        return self.fp16_tflops * TERA

    def compute_seconds(self, flops: float, precision: Precision = Precision.FP16) -> float:
        """Time to execute ``flops`` operations at ``precision``.

        Args:
            flops: Number of floating point operations.
            precision: Kernel precision; mixed-precision training runs its
                matmuls in FP16.

        Returns:
            Estimated kernel time in seconds.
        """
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        sustained = self.peak_flops(precision) * self.utilization
        return flops / sustained


RTX_3090TI = GPUSpec(
    name="RTX 3090-Ti",
    memory_bytes=24 * GIB,
    fp32_tflops=40.0,
    fp16_tflops=160.0,
    tensor_cores=336,
    price_usd=2_000.0,
    supports_p2p=False,
    supports_nvlink=False,
)

A100 = GPUSpec(
    name="A100",
    memory_bytes=40 * GIB,
    fp32_tflops=19.0,
    fp16_tflops=312.0,
    tensor_cores=432,
    price_usd=14_000.0,
    supports_p2p=True,
    supports_nvlink=True,
    utilization=0.16,  # data-center stack (NVLink, GPUDirect) sustains more
)

V100 = GPUSpec(
    name="V100",
    memory_bytes=16 * GIB,
    fp32_tflops=15.7,
    fp16_tflops=125.0,
    tensor_cores=640,
    price_usd=9_000.0,
    supports_p2p=True,
    supports_nvlink=True,
    utilization=0.16,  # data-center stack (NVLink, GPUDirect) sustains more
)

GPU_PRESETS = {spec.name: spec for spec in (RTX_3090TI, A100, V100)}
