"""Server interconnect topology models.

The paper's core observation is that *where* a GPU sits in the PCIe tree
determines how much communication bandwidth it can actually use:

* Commodity servers attach several GPUs to one CPU **root complex** through a
  PCIe switch (Figure 1a).  Without GPUDirect P2P every GPU-to-GPU transfer
  bounces through DRAM, so concurrent transfers from GPUs under the same root
  complex contend for the root complex's uplink.
* Data-center servers add fully-connected NVLink (Figure 1b), so GPU-to-GPU
  traffic bypasses the PCIe tree entirely.

A :class:`Topology` is a directed graph (full-duplex PCIe links become two
directed edges with independent capacity) over GPU, switch, root-complex and
DRAM nodes.  Transfers are described by *paths* — tuples of directed edges —
which the discrete-event simulator turns into bandwidth-shared flows.

The standard topologies of the evaluation (§4) are provided as factories:
``Topo 4`` (four GPUs on one root complex), ``Topo 2+2``, ``Topo 1+3``, the
8-GPU ``Topo 4+4`` and the EC2 P3 style NVLink data-center server.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Iterator, Sequence

import networkx as nx

from repro.hardware.gpu import RTX_3090TI, V100, GPUSpec

__all__ = [
    "Edge",
    "Path",
    "Topology",
    "commodity_server",
    "datacenter_server",
    "large_cluster",
    "topo_4",
    "topo_2_2",
    "topo_1_3",
    "topo_4_4",
    "PCIE_EFFECTIVE_BW",
    "DRAM_BW",
    "NVLINK_BW",
]

GB = 1e9

#: Measured effective PCIe bandwidth on the paper's testbed (§4.2: "the
#: maximum bandwidth measured is 13.1 GB/s").
PCIE_EFFECTIVE_BW = 13.1 * GB

#: DRAM copy bandwidth; far above PCIe so it is never the bottleneck.
DRAM_BW = 80.0 * GB

#: Per-pair NVLink bandwidth on the V100 data-center server.  The paper quotes
#: 300 GB/s aggregate for the P3.8xlarge's NVLink mesh; with six link pairs
#: this is 50 GB/s per GPU pair.
NVLINK_BW = 50.0 * GB

#: A directed edge ``(src_node, dst_node)``; node names are strings such as
#: ``"gpu0"``, ``"sw1"``, ``"rc0"`` and ``"dram"``.
Edge = tuple[str, str]

#: A transfer path: an ordered tuple of directed edges.
Path = tuple[Edge, ...]


def _gpu_node(index: int) -> str:
    return f"gpu{index}"


@dataclasses.dataclass(frozen=True)
class _LinkCapacity:
    """Capacity of one directed edge, in bytes per second."""

    bandwidth: float


class Topology:
    """Interconnect topology of one multi-GPU server.

    Args:
        gpu_spec: Device model for every GPU in the server (homogeneous
            servers only, as in the paper).
        groups: Number of GPUs under each CPU root complex; ``[2, 2]`` is
            the paper's ``Topo 2+2``.
        pcie_bandwidth: Effective bandwidth of each PCIe link (GPU-to-switch
            and switch-to-root-complex uplink) in bytes/s.
        dram_bandwidth: Root-complex-to-DRAM bandwidth in bytes/s.
        nvlink_bandwidth: If not ``None``, adds fully-connected direct
            GPU-to-GPU links of this bandwidth and enables GPUDirect P2P.
        name: Human-readable label, e.g. ``"Topo 2+2"``.
    """

    def __init__(
        self,
        gpu_spec: GPUSpec,
        groups: Sequence[int],
        *,
        pcie_bandwidth: float = PCIE_EFFECTIVE_BW,
        dram_bandwidth: float = DRAM_BW,
        nvlink_bandwidth: float | None = None,
        name: str | None = None,
    ) -> None:
        if not groups or any(g <= 0 for g in groups):
            raise ValueError(f"groups must be positive GPU counts, got {groups!r}")
        self.gpu_spec = gpu_spec
        self.groups = tuple(groups)
        self.pcie_bandwidth = pcie_bandwidth
        self.dram_bandwidth = dram_bandwidth
        self.nvlink_bandwidth = nvlink_bandwidth
        self.name = name or "+".join(str(g) for g in groups)

        self._rc_of_gpu: dict[int, int] = {}
        self._gpus_of_rc: dict[int, tuple[int, ...]] = {}
        self._capacity: dict[Edge, _LinkCapacity] = {}
        self.graph = nx.DiGraph()
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add_duplex_link(self, a: str, b: str, bandwidth: float) -> None:
        """Add a full-duplex link as two independent directed edges."""
        for u, v in ((a, b), (b, a)):
            self.graph.add_edge(u, v)
            self._capacity[(u, v)] = _LinkCapacity(bandwidth)

    def _build(self) -> None:
        self.graph.add_node("dram")
        gpu_index = 0
        for rc_index, group_size in enumerate(self.groups):
            rc = f"rc{rc_index}"
            switch = f"sw{rc_index}"
            self._add_duplex_link(switch, rc, self.pcie_bandwidth)
            self._add_duplex_link(rc, "dram", self.dram_bandwidth)
            members = []
            for _ in range(group_size):
                gpu = _gpu_node(gpu_index)
                self._add_duplex_link(gpu, switch, self.pcie_bandwidth)
                self._rc_of_gpu[gpu_index] = rc_index
                members.append(gpu_index)
                gpu_index += 1
            self._gpus_of_rc[rc_index] = tuple(members)
        if self.nvlink_bandwidth is not None:
            for a, b in itertools.combinations(range(self.n_gpus), 2):
                self._add_duplex_link(_gpu_node(a), _gpu_node(b), self.nvlink_bandwidth)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_gpus(self) -> int:
        """Total number of GPUs in the server."""
        return sum(self.groups)

    @property
    def n_root_complexes(self) -> int:
        """Number of CPU root complexes."""
        return len(self.groups)

    @property
    def has_p2p(self) -> bool:
        """Whether GPUDirect P2P (direct GPU-to-GPU paths) is available."""
        return self.nvlink_bandwidth is not None

    def root_complex_of(self, gpu: int) -> int:
        """Index of the root complex that ``gpu`` hangs off."""
        self._check_gpu(gpu)
        return self._rc_of_gpu[gpu]

    def gpus_under_root_complex(self, rc: int) -> tuple[int, ...]:
        """GPU indices attached to root complex ``rc``."""
        if rc not in self._gpus_of_rc:
            raise ValueError(f"no root complex {rc}; topology has {self.n_root_complexes}")
        return self._gpus_of_rc[rc]

    def share_root_complex(self, gpu_a: int, gpu_b: int) -> bool:
        """Whether two GPUs share a CPU root complex (and hence its uplink)."""
        return self.root_complex_of(gpu_a) == self.root_complex_of(gpu_b)

    def shared_group_size(self, gpu_a: int, gpu_b: int) -> int:
        """``shared(i, j)`` of Eq. 12: the number of GPUs under the common
        root complex of ``gpu_a`` and ``gpu_b``, or 0 when they differ."""
        if not self.share_root_complex(gpu_a, gpu_b):
            return 0
        return len(self.gpus_under_root_complex(self.root_complex_of(gpu_a)))

    def bandwidth_of(self, edge: Edge) -> float:
        """Capacity of a directed edge in bytes/s."""
        try:
            return self._capacity[edge].bandwidth
        except KeyError:
            raise KeyError(f"edge {edge!r} is not part of topology {self.name!r}") from None

    def iter_links(self) -> Iterator[tuple[Edge, float]]:
        """All directed edges with their capacities in bytes/s.

        The static checkers (:mod:`repro.check.trace_check`) iterate links to
        verify that no trace implies more bytes through an edge than its
        capacity allows.
        """
        for edge, capacity in self._capacity.items():
            yield edge, capacity.bandwidth

    @property
    def max_link_bandwidth(self) -> float:
        """The fastest directed link in the server (bytes/s).

        No single transfer, whatever its path, can exceed this rate — a
        topology-wide ceiling usable even when the path is unknown.
        """
        return max(capacity.bandwidth for capacity in self._capacity.values())

    def path_bandwidth(self, path: Path) -> float:
        """Uncontended bandwidth of a path (minimum edge capacity)."""
        if not path:
            raise ValueError("path must contain at least one edge")
        return min(self.bandwidth_of(edge) for edge in path)

    def _check_gpu(self, gpu: int) -> None:
        if not 0 <= gpu < self.n_gpus:
            raise ValueError(f"gpu index {gpu} out of range [0, {self.n_gpus})")

    # ------------------------------------------------------------------
    # Transfer paths
    # ------------------------------------------------------------------

    def path_to_dram(self, gpu: int) -> Path:
        """Directed edges for a GPU-to-DRAM transfer (offload direction)."""
        self._check_gpu(gpu)
        rc = self._rc_of_gpu[gpu]
        g, sw, rcn = _gpu_node(gpu), f"sw{rc}", f"rc{rc}"
        return ((g, sw), (sw, rcn), (rcn, "dram"))

    def path_from_dram(self, gpu: int) -> Path:
        """Directed edges for a DRAM-to-GPU transfer (upload direction)."""
        return tuple((v, u) for (u, v) in reversed(self.path_to_dram(gpu)))

    def gpu_to_gpu_path(self, src: int, dst: int) -> Path:
        """Directed edges for a GPU-to-GPU transfer.

        With GPUDirect P2P the transfer uses the direct NVLink edge.  Without
        it (commodity servers, §2.2) the data is bounced through DRAM; the
        bounce is chunk-pipelined in practice, so it is modelled as a single
        flow occupying *both* the source's upload path and the destination's
        download path simultaneously.
        """
        self._check_gpu(src)
        self._check_gpu(dst)
        if src == dst:
            return ()
        if self.has_p2p:
            return ((_gpu_node(src), _gpu_node(dst)),)
        return self.path_to_dram(src) + self.path_from_dram(dst)

    def __mobius_fingerprint__(self) -> tuple:
        """Canonical content for :func:`repro.perf.fingerprint.fingerprint`.

        Covers every constructor input (the graph and path tables are
        derived from these, so they need not be encoded separately).
        """
        return (
            self.gpu_spec,
            self.groups,
            self.pcie_bandwidth,
            self.dram_bandwidth,
            self.nvlink_bandwidth,
            self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, gpus={self.n_gpus}, "
            f"groups={self.groups}, p2p={self.has_p2p})"
        )


# ----------------------------------------------------------------------
# Standard topologies from the evaluation (§4)
# ----------------------------------------------------------------------


def commodity_server(
    groups: Sequence[int], gpu_spec: GPUSpec = RTX_3090TI, *, name: str | None = None
) -> Topology:
    """A commodity GPU server: PCIe-only, no GPUDirect P2P (Figure 1a)."""
    label = name or ("Topo " + "+".join(str(g) for g in groups))
    return Topology(gpu_spec, groups, name=label)


def topo_4(gpu_spec: GPUSpec = RTX_3090TI) -> Topology:
    """Four GPUs sharing one root complex — the most contended topology."""
    return commodity_server([4], gpu_spec, name="Topo 4")


def topo_2_2(gpu_spec: GPUSpec = RTX_3090TI) -> Topology:
    """Two GPUs per root complex — the least contended 4-GPU topology."""
    return commodity_server([2, 2], gpu_spec, name="Topo 2+2")


def topo_1_3(gpu_spec: GPUSpec = RTX_3090TI) -> Topology:
    """One GPU on one root complex, three on the other."""
    return commodity_server([1, 3], gpu_spec, name="Topo 1+3")


def topo_4_4(gpu_spec: GPUSpec = RTX_3090TI) -> Topology:
    """The 8-GPU server of §4.4: four GPUs per root complex."""
    return commodity_server([4, 4], gpu_spec, name="Topo 4+4")


def large_cluster(
    n_gpus: int = 1024, group_size: int = 4, gpu_spec: GPUSpec = RTX_3090TI
) -> Topology:
    """A datacenter-scale fleet of commodity PCIe servers (no P2P).

    Models the paper's "thousands of commodity GPUs" setting as one large
    PCIe forest: ``n_gpus / group_size`` root complexes, each with
    ``group_size`` GPUs behind a switch, all sharing DRAM.  Cross-group
    traffic bounces through DRAM exactly as on the small topologies, so
    flow components stay bounded by the per-root-complex fan-in and the
    incremental allocator's O(component) property carries to 1024 GPUs.
    """
    if n_gpus <= 0 or group_size <= 0 or n_gpus % group_size:
        raise ValueError(
            f"n_gpus ({n_gpus}) must be a positive multiple of "
            f"group_size ({group_size})"
        )
    return commodity_server(
        [group_size] * (n_gpus // group_size),
        gpu_spec,
        name=f"Cluster {n_gpus // group_size}x{group_size}",
    )


def datacenter_server(n_gpus: int = 4, gpu_spec: GPUSpec = V100) -> Topology:
    """An EC2 P3 style data-center server (§4.8).

    GPUs are fully connected via NVLink with GPUDirect P2P, while DRAM
    offload traffic still crosses the PCIe tree (two GPUs per root complex).
    """
    if n_gpus % 2:
        raise ValueError(f"data-center server expects an even GPU count, got {n_gpus}")
    return Topology(
        gpu_spec,
        [2] * (n_gpus // 2),
        nvlink_bandwidth=NVLINK_BW,
        name=f"DC {n_gpus}x{gpu_spec.name}",
    )
