"""Hardware substrate: GPU specs, interconnect topologies, and pricing.

This subpackage replaces the paper's physical testbed (8x3090-Ti PCIe server
and an EC2 P3 NVLink server) with parametric models; see DESIGN.md §2 for the
substitution rationale.
"""

from repro.hardware.gpu import (
    A100,
    GPU_PRESETS,
    RTX_3090TI,
    V100,
    GPUSpec,
    Precision,
)
from repro.hardware.pricing import (
    COMMODITY_4X3090TI,
    COMMODITY_8X3090TI,
    EC2_P3_8XLARGE,
    ServerRental,
    per_step_price,
)
from repro.hardware.topology import (
    DRAM_BW,
    NVLINK_BW,
    PCIE_EFFECTIVE_BW,
    Edge,
    Path,
    Topology,
    commodity_server,
    datacenter_server,
    topo_1_3,
    topo_2_2,
    topo_4,
    topo_4_4,
)

__all__ = [
    "A100",
    "COMMODITY_4X3090TI",
    "COMMODITY_8X3090TI",
    "DRAM_BW",
    "EC2_P3_8XLARGE",
    "Edge",
    "GPU_PRESETS",
    "GPUSpec",
    "NVLINK_BW",
    "PCIE_EFFECTIVE_BW",
    "Path",
    "Precision",
    "RTX_3090TI",
    "ServerRental",
    "Topology",
    "V100",
    "commodity_server",
    "datacenter_server",
    "per_step_price",
    "topo_1_3",
    "topo_2_2",
    "topo_4",
    "topo_4_4",
]
