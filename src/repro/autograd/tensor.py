"""A compact reverse-mode automatic differentiation engine on numpy.

This is the training substrate for the paper's convergence experiment
(§4.6, Figure 13): Mobius must produce the *same* gradients as GPipe because
both use synchronous microbatch accumulation.  Demonstrating that requires
real gradients, so the reproduction ships its own autodiff rather than
depending on PyTorch.

Design: a :class:`Tensor` wraps an ``ndarray`` and records, when gradients
are required, a backward closure over its parents.  ``backward()`` runs a
topological sweep accumulating ``grad`` arrays.  Broadcasting is supported
by summing gradients back over broadcast dimensions.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling gradient recording (for evaluation)."""

    def __enter__(self) -> None:
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """A differentiable array.

    Attributes:
        data: The underlying float array (float32 by default).
        grad: Accumulated gradient, populated by :meth:`backward`.
        requires_grad: Whether this tensor participates in autodiff.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        *,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._parents = tuple(_parents) if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # Autodiff core
    # ------------------------------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float32), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Args:
            grad: Seed gradient; defaults to 1 for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a seed needs a scalar output")
            grad = np.ones_like(self.data)
        # Topological order via iterative DFS.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic (backward closures accumulate into parents)
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        return self * self._coerce(other).pow(-1.0)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        return self.pow(exponent)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and elementwise functions
    # ------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(shape) for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)
