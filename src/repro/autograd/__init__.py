"""Reverse-mode autodiff on numpy (convergence-experiment substrate)."""

from repro.autograd.ops import (
    causal_mask_fill,
    cross_entropy_logits,
    dropout,
    embedding,
    gelu,
    layer_norm,
    softmax,
)
from repro.autograd.optim import SGD, Adam, LossScaler
from repro.autograd.schedule import WarmupCosine, WarmupLinear, clip_grad_norm
from repro.autograd.tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Adam",
    "LossScaler",
    "SGD",
    "WarmupCosine",
    "WarmupLinear",
    "clip_grad_norm",
    "Tensor",
    "causal_mask_fill",
    "cross_entropy_logits",
    "dropout",
    "embedding",
    "gelu",
    "is_grad_enabled",
    "layer_norm",
    "no_grad",
    "softmax",
]
