"""Optimizers and mixed-precision emulation for the autograd engine."""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["SGD", "Adam", "LossScaler"]


class _Optimizer:
    """Shared parameter bookkeeping."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(_Optimizer):
    """Adam with bias correction (the paper's fine-tuning optimizer)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        correction1 = 1.0 - b1**self._t
        correction2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            p.data -= self.lr * (m / correction1) / (np.sqrt(v / correction2) + self.eps)


@dataclasses.dataclass
class LossScaler:
    """Static loss scaling, emulating FP16 mixed-precision training.

    Gradients computed through the (FP32) graph are scaled up before
    backward and scaled back at unscale time; overflow checks mirror what a
    dynamic scaler would do on real FP16 hardware.
    """

    scale: float = 1024.0

    def scale_loss(self, loss: Tensor) -> Tensor:
        return loss * self.scale

    def unscale_(self, params: Iterable[Tensor]) -> bool:
        """Divide grads by the scale; returns False when non-finite."""
        finite = True
        for p in params:
            if p.grad is None:
                continue
            p.grad /= self.scale
            if not np.isfinite(p.grad).all():
                finite = False
        return finite
