"""Learning-rate schedules and gradient clipping.

Standard fine-tuning machinery: warmup + cosine/linear decay schedules
driving any optimizer's ``lr``, and global-norm gradient clipping.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["LRSchedule", "WarmupCosine", "WarmupLinear", "clip_grad_norm"]


class LRSchedule:
    """Base schedule: drives an optimizer's ``lr`` per step."""

    def __init__(self, optimizer, base_lr: float | None = None) -> None:
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        self._step = 0

    def lr_at(self, step: int) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step; sets and returns the new learning rate."""
        self._step += 1
        lr = self.lr_at(self._step)
        self.optimizer.lr = lr
        return lr


class WarmupCosine(LRSchedule):
    """Linear warmup to ``base_lr`` then cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer,
        *,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
        base_lr: float | None = None,
    ) -> None:
        if warmup_steps < 0 or total_steps <= warmup_steps:
            raise ValueError(
                f"need 0 <= warmup_steps < total_steps, got {warmup_steps}/{total_steps}"
            )
        super().__init__(optimizer, base_lr)
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        progress = min(
            1.0,
            (step - self.warmup_steps) / (self.total_steps - self.warmup_steps),
        )
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLinear(LRSchedule):
    """Linear warmup then linear decay to zero at ``total_steps``."""

    def __init__(
        self,
        optimizer,
        *,
        warmup_steps: int,
        total_steps: int,
        base_lr: float | None = None,
    ) -> None:
        if warmup_steps < 0 or total_steps <= warmup_steps:
            raise ValueError(
                f"need 0 <= warmup_steps < total_steps, got {warmup_steps}/{total_steps}"
            )
        super().__init__(optimizer, base_lr)
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        remaining = max(
            0.0,
            (self.total_steps - step) / (self.total_steps - self.warmup_steps),
        )
        return self.base_lr * remaining


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns:
        The pre-clipping global norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in params if p.grad is not None]
    if not grads:
        return 0.0
    total = math.sqrt(sum(float(np.sum(g.astype(np.float64) ** 2)) for g in grads))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for grad in grads:
            grad *= scale
    return total
