"""Fused neural-network operations for the autograd engine.

Composite kernels (softmax cross-entropy, layer norm, GELU, embedding
lookup, causal attention masking, dropout) implemented with hand-written
backward passes — both faster and numerically safer than composing them from
primitive ops.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = [
    "gelu",
    "softmax",
    "cross_entropy_logits",
    "layer_norm",
    "embedding",
    "dropout",
    "causal_mask_fill",
]

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in GPT-2)."""
    u = _SQRT_2_OVER_PI * (x.data + 0.044715 * x.data**3)
    t = np.tanh(u)
    out_data = 0.5 * x.data * (1.0 + t)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            du = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x.data**2)
            dt = (1.0 - t**2) * du
            x._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x.data * dt))

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def cross_entropy_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits and integer targets.

    Args:
        logits: ``(..., vocab)`` unnormalised scores.
        targets: Integer array matching the leading dims of ``logits``.
    """
    targets = np.asarray(targets)
    if targets.shape != logits.shape[:-1]:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits {logits.shape[:-1]}"
        )
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1))
    picked = shifted[np.arange(len(flat_targets)), flat_targets]
    losses = logsumexp - picked
    out_data = np.array(losses.mean(), dtype=np.float32)

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            probs = np.exp(shifted - logsumexp[:, None])
            probs[np.arange(len(flat_targets)), flat_targets] -= 1.0
            probs *= float(grad) / len(flat_targets)
            logits._accumulate(probs.reshape(logits.shape))

    return Tensor._make(out_data, (logits,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normed = (x.data - mean) * inv_std
    out_data = normed * weight.data + bias.data

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate((grad * normed).sum(axis=tuple(range(grad.ndim - 1))))
        if bias.requires_grad:
            bias._accumulate(grad.sum(axis=tuple(range(grad.ndim - 1))))
        if x.requires_grad:
            d = grad * weight.data
            n = x.shape[-1]
            dx = (
                d - d.mean(axis=-1, keepdims=True)
                - normed * (d * normed).mean(axis=-1, keepdims=True)
            ) * inv_std
            del n
            x._accumulate(dx)

    return Tensor._make(out_data, (x, weight, bias), backward)


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``table[indices]`` with scatter-add backward."""
    indices = np.asarray(indices)
    out_data = table.data[indices]

    def backward(grad: np.ndarray) -> None:
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, table.shape[-1]))
            table._accumulate(full)

    return Tensor._make(out_data, (table,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def causal_mask_fill(scores: Tensor, fill: float = -1e9) -> Tensor:
    """Mask the strictly-upper triangle of the last two dims (future tokens)."""
    seq = scores.shape[-1]
    if scores.shape[-2] != seq:
        raise ValueError(f"expected square attention scores, got {scores.shape}")
    mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
    out_data = np.where(mask, np.float32(fill), scores.data)

    def backward(grad: np.ndarray) -> None:
        if scores.requires_grad:
            scores._accumulate(np.where(mask, 0.0, grad))

    return Tensor._make(out_data, (scores,), backward)
