"""Two-tier (memory + disk) content-addressed result cache.

Layout and lifecycle:

* The **memory tier** is a per-process dict keyed by
  ``(namespace, fingerprint)``.  It is always safe — entries never outlive
  the process that computed them — and is enabled by default, so repeated
  ``plan_mobius``/``run_system`` calls within one figure (or across figures
  in one suite run) hit it transparently.
* The **disk tier** persists pickled results under
  ``<directory>/v<CACHE_VERSION>/<namespace>/<fingerprint>.pkl`` (default
  directory ``.mobius_cache/``, override with ``MOBIUS_CACHE_DIR``).  It is
  what lets worker *processes* share results, and it survives across runs,
  so it is **opt-in**: the suite runner and ``repro figures`` enable it;
  plain library use and the test suite do not, which keeps stale results
  from one code revision out of the next run's tests.  The whole directory
  is safe to delete at any time.
* ``CACHE_VERSION`` names the on-disk entry format.  Bumping it orphans
  every existing ``v<N>`` subdirectory — old entries are simply never read
  again — so stale-format entries can never be returned.

Environment overrides (read at import): ``MOBIUS_CACHE=0`` disables both
tiers, ``MOBIUS_CACHE_DISK=1`` enables the disk tier, ``MOBIUS_CACHE_DIR``
relocates it.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import pickle
import shutil
import tempfile
import time
from pathlib import Path
from typing import Callable

from repro.perf.fingerprint import fingerprint

__all__ = [
    "CACHE_VERSION",
    "CacheConfig",
    "CacheStats",
    "LeaseTable",
    "ResultCache",
    "cache_overridden",
    "configure_cache",
    "get_cache",
    "merge_stats",
]

#: On-disk entry format version; bump to invalidate all persisted entries.
#: v2: the fast-MIP solver overhaul — PartitionResult/MIPSolution grew
#: fields (warm_started, pivots, cuts_added) and the partition search moved
#: to a deterministic node budget, so v1 entries describe a different
#: search and must never be returned.
#: v3: Trace moved to columnar span storage — its pickle payload is now
#: exported column arrays, so v2 entries (list-of-spans layout) cannot be
#: loaded into the new class.
CACHE_VERSION = 3

DEFAULT_CACHE_DIR = ".mobius_cache"


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Which tiers are active and where the disk tier lives."""

    memory: bool = True
    disk: bool = False
    directory: str = DEFAULT_CACHE_DIR

    @staticmethod
    def from_env() -> "CacheConfig":
        enabled = os.environ.get("MOBIUS_CACHE", "1") != "0"
        return CacheConfig(
            memory=enabled,
            disk=enabled and os.environ.get("MOBIUS_CACHE_DISK", "0") == "1",
            directory=os.environ.get("MOBIUS_CACHE_DIR", DEFAULT_CACHE_DIR),
        )


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for one namespace."""

    memory_hits: int = 0
    disk_hits: int = 0
    backend_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits + self.backend_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "backend_hits": self.backend_hits,
            "misses": self.misses,
        }


class ResultCache:
    """Content-addressed memoization of expensive planning/simulation calls.

    Values are stored as-is in the memory tier and pickled in the disk
    tier; callers must treat returned values as immutable (or copy before
    mutating).
    """

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig.from_env()
        self._memory: dict[tuple[str, str], object] = {}
        self.stats: dict[str, CacheStats] = {}
        #: Optional durable third tier (``repro.serve.store.DurableStore``
        #: duck-type: ``load(namespace, digest) -> (value, found)`` and
        #: ``store(namespace, digest, value)``).  Consulted after the disk
        #: tier and written through on every store; always best-effort —
        #: a broken backend degrades to recomputation, never to failure.
        self._backend = None

    def attach_backend(self, backend) -> None:
        """Attach a durable store tier (the serve daemon's sqlite store)."""
        self._backend = backend

    def detach_backend(self) -> None:
        self._backend = None

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------

    def memoize(self, namespace: str, key_obj, compute: Callable[[], object]):
        """Return the cached value for ``key_obj``, computing it on a miss.

        ``key_obj`` is any fingerprintable value describing the *complete*
        input of ``compute`` — over-keying costs a miss, under-keying would
        return wrong results, so include everything.
        """
        if not (self.config.memory or self.config.disk or self._backend):
            return compute()
        key = (namespace, fingerprint(key_obj))
        stats = self.stats.setdefault(namespace, CacheStats())

        if self.config.memory and key in self._memory:
            stats.memory_hits += 1
            return self._memory[key]

        if self.config.disk:
            value, found = self._disk_read(key)
            if found:
                stats.disk_hits += 1
                if self.config.memory:
                    self._memory[key] = value
                return value

        if self._backend is not None:
            value, found = self._backend_read(key)
            if found:
                stats.backend_hits += 1
                if self.config.memory:
                    self._memory[key] = value
                return value

        stats.misses += 1
        value = compute()
        self.store(namespace, key_obj, value)
        return value

    def store(self, namespace: str, key_obj, value) -> None:
        """Insert a value computed elsewhere (e.g. by a worker process)."""
        key = (namespace, fingerprint(key_obj))
        if self.config.memory:
            self._memory[key] = value
        if self.config.disk:
            self._disk_write(key, value)
        if self._backend is not None:
            try:
                self._backend.store(key[0], key[1], value)
            except Exception:
                pass  # durable tier is best-effort

    def adopt(self, namespace: str, key_obj, value) -> None:
        """Insert into the memory tier only.

        For values a pool worker computed *and already persisted* through
        its own cache (workers share the disk directory): re-pickling them
        here would double the write per cell for no durability gain.  If
        the worker's disk write failed, later processes recompute — the
        disk tier is best-effort by contract.
        """
        if self.config.memory:
            self._memory[(namespace, fingerprint(key_obj))] = value

    def lookup(self, namespace: str, key_obj) -> tuple[object, bool]:
        """Non-counting probe; returns ``(value, found)``."""
        key = (namespace, fingerprint(key_obj))
        if self.config.memory and key in self._memory:
            return self._memory[key], True
        if self.config.disk:
            value, found = self._disk_read(key)
            if found:
                return value, True
        if self._backend is not None:
            return self._backend_read(key)
        return None, False

    def _backend_read(self, key: tuple[str, str]) -> tuple[object, bool]:
        try:
            return self._backend.load(key[0], key[1])
        except Exception:
            return None, False  # durable tier is best-effort

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------

    def _entry_path(self, key: tuple[str, str]) -> Path:
        namespace, digest = key
        return Path(self.config.directory) / f"v{CACHE_VERSION}" / namespace / f"{digest}.pkl"

    def _disk_read(self, key: tuple[str, str]) -> tuple[object, bool]:
        path = self._entry_path(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle), True
        except FileNotFoundError:
            return None, False
        except Exception:
            # Corrupt or truncated entry (e.g. interrupted writer without
            # atomic rename support, or a torn page after a crash): treat
            # it as a miss and quarantine the bytes under ``.corrupt`` —
            # out of the lookup path, but preserved for diagnosis.  The
            # caller recomputes; the recomputed value overwrites the entry.
            with contextlib.suppress(OSError):
                os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
            return None, False

    def _disk_write(self, key: tuple[str, str], value) -> None:
        path = self._entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)  # atomic: readers never see partial files
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        except (OSError, pickle.PicklingError):
            pass  # persistence is best-effort; the computed value still flows

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------

    def clear_memory(self) -> None:
        self._memory.clear()

    def clear_disk(self) -> None:
        """Delete this cache version's persisted entries (all namespaces)."""
        shutil.rmtree(
            Path(self.config.directory) / f"v{CACHE_VERSION}", ignore_errors=True
        )

    def reset_stats(self) -> None:
        self.stats.clear()

    def stats_snapshot(self) -> dict:
        """JSON-ready ``{namespace: {hits, misses, ...}}`` mapping."""
        return {name: stats.as_dict() for name, stats in sorted(self.stats.items())}

    def __len__(self) -> int:
        return len(self._memory)


def merge_stats(*snapshots: dict) -> dict:
    """Sum per-namespace ``CacheStats.as_dict()`` snapshots key by key.

    Workers in a process pool each accumulate their own hit/miss counters;
    without folding them back the suite's summary table under-reports
    every lookup that happened off-process.  The result has the same
    ``{namespace: {hits, memory_hits, ...}}`` shape as
    :meth:`ResultCache.stats_snapshot`.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for namespace, counters in snapshot.items():
            into = merged.setdefault(namespace, {})
            for key, value in counters.items():
                into[key] = into.get(key, 0) + value
    return {namespace: merged[namespace] for namespace in sorted(merged)}


class LeaseTable:
    """Cross-process in-flight dedup: one lease per ``(namespace, digest)``.

    A lease is an ``O_CREAT | O_EXCL`` file under the cache directory whose
    payload is the holder's PID.  Before computing a cell, a scheduler
    worker tries to :meth:`acquire` the cell's lease; losing the race means
    *another process is already computing this exact key*, so the loser
    :meth:`wait`\\ s for the lease to clear and re-reads the cache instead
    of solving the same problem twice (serve-style request coalescing,
    lifted to suite workers).

    Leases are purely a work-avoidance protocol, never a correctness one:
    every outcome — lease broken because its holder died, a wait that
    exhausts ``max_polls``, a filesystem that refuses the lock file —
    degrades to "compute it yourself", which is exactly what would have
    happened without the table.  Wall time therefore paces the polling
    loop but never steers what any caller returns.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        poll_interval: float = 0.05,
        max_polls: int = 2400,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        self.directory = Path(directory)
        self.poll_interval = poll_interval
        self.max_polls = max_polls
        self._sleep = sleeper  # injectable so coalescing tests never wait

    def _path(self, namespace: str, digest: str) -> Path:
        return self.directory / f"{namespace}.{digest}.lease"

    def acquire(self, namespace: str, digest: str) -> bool:
        """Try to claim the lease; ``True`` iff this process now holds it."""
        path = self._path(namespace, digest)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return True  # unusable lease dir: degrade to computing locally
        try:
            os.write(fd, str(os.getpid()).encode("ascii"))
        finally:
            os.close(fd)
        return True

    def release(self, namespace: str, digest: str) -> None:
        with contextlib.suppress(OSError):
            os.unlink(self._path(namespace, digest))

    def holder(self, namespace: str, digest: str) -> int | None:
        """PID currently holding the lease, or ``None`` if unheld."""
        try:
            payload = self._path(namespace, digest).read_bytes()
            return int(payload) if payload else None
        except (OSError, ValueError):
            return None

    @staticmethod
    def _alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except OSError:
            return True  # EPERM: alive but not ours
        return True

    def wait(self, namespace: str, digest: str) -> str:
        """Block until the lease clears; ``"released"|"broken"|"timeout"``.

        ``released`` — the holder finished (its result should now be in
        the shared cache tier); ``broken`` — the holder died mid-compute
        and this caller removed the stale lease; ``timeout`` — the holder
        outlived ``max_polls`` polls.  On ``broken``/``timeout`` the
        caller should compute the value itself.
        """
        path = self._path(namespace, digest)
        for _ in range(self.max_polls):
            if not path.exists():
                return "released"
            pid = self.holder(namespace, digest)
            if pid is not None and not self._alive(pid):
                self.release(namespace, digest)
                return "broken"
            self._sleep(self.poll_interval)
        return "timeout"

    def clear(self) -> None:
        """Remove every lease file (end-of-drain hygiene)."""
        with contextlib.suppress(OSError):
            for path in self.directory.glob("*.lease"):
                with contextlib.suppress(OSError):
                    path.unlink()


_cache = ResultCache()


def get_cache() -> ResultCache:
    """The process-global cache used by ``plan_mobius``/``run_system``."""
    return _cache


def configure_cache(
    *,
    memory: bool | None = None,
    disk: bool | None = None,
    directory: str | None = None,
) -> ResultCache:
    """Replace the global cache with one using the given configuration.

    Unspecified fields keep their current values.  Returns the new cache
    (with empty memory tier and fresh stats).
    """
    global _cache
    current = _cache.config
    _cache = ResultCache(
        CacheConfig(
            memory=current.memory if memory is None else memory,
            disk=current.disk if disk is None else disk,
            directory=current.directory if directory is None else directory,
        )
    )
    return _cache


@contextlib.contextmanager
def cache_overridden(
    *,
    memory: bool | None = None,
    disk: bool | None = None,
    directory: str | None = None,
):
    """Temporarily swap the global cache (tests, CLI ``--no-cache``)."""
    global _cache
    previous = _cache
    try:
        yield configure_cache(memory=memory, disk=disk, directory=directory)
    finally:
        _cache = previous
