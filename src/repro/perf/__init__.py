"""Performance layer: content-addressed memoization and parallel helpers.

The experiment suite re-solves identical planning problems and re-simulates
identical training steps many times over — ``fig5``, ``fig7`` and ``fig8``
share most of their (system, model, topology) cells, and ``fig11`` repeats
``fig10``'s runs verbatim.  This package provides the machinery to compute
each cell once:

* :mod:`repro.perf.fingerprint` — stable, cross-process content hashes for
  the planner's input objects (canonical-bytes encoding, never ``id()`` or
  ``repr()``);
* :mod:`repro.perf.cache` — a two-tier (in-memory + on-disk) result cache
  keyed by those fingerprints, versioned and safe to delete.

:func:`repro.core.api.plan_mobius` and
:func:`repro.experiments.runner.run_system` consult the global cache
transparently; :func:`repro.experiments.runner.run_systems_parallel` and
:mod:`repro.experiments.suite` fan work out across processes that share the
on-disk tier.
"""

from repro.perf.cache import (
    CACHE_VERSION,
    CacheConfig,
    CacheStats,
    ResultCache,
    cache_overridden,
    configure_cache,
    get_cache,
)
from repro.perf.fingerprint import canonical_bytes, fingerprint

__all__ = [
    "CACHE_VERSION",
    "CacheConfig",
    "CacheStats",
    "ResultCache",
    "cache_overridden",
    "canonical_bytes",
    "configure_cache",
    "fingerprint",
    "get_cache",
]
