"""Stable content fingerprints for planner inputs.

A cache key must identify a planning problem by *content*: two
:class:`~repro.models.spec.ModelSpec` objects built by the same factory in
different processes must hash identically, and changing any field — a layer's
FLOP count, a topology bandwidth, one config knob — must change the hash.
Python's builtin ``hash`` is salted per process and ``repr`` is neither
canonical nor complete, so neither qualifies.  Instead every supported value
is serialised to a canonical, type-tagged, length-prefixed byte string and
digested with SHA-256.

Supported values: ``None``, ``bool``, ``int``, ``float`` (hex encoding, so
``nan``/``inf`` and signed zeros are distinguished exactly), ``str``,
``bytes``, ``Enum``, sequences, sets (element-order independent), mappings
(key-order independent), dataclasses (tagged with their qualified class
name), and numpy scalars/arrays.  Arbitrary objects can opt in by defining
``__mobius_fingerprint__()`` returning any supported value — see
:class:`repro.hardware.topology.Topology`.  Everything else raises
``TypeError`` rather than silently producing an unstable key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import math

import numpy as np

__all__ = ["canonical_bytes", "fingerprint"]

_SEPARATOR = b"\x00"


def _tag(out: bytearray, tag: bytes, payload: bytes = b"") -> None:
    out += tag
    out += str(len(payload)).encode("ascii")
    out += _SEPARATOR
    out += payload


def _encode(out: bytearray, value) -> None:
    if value is None:
        _tag(out, b"N")
    elif isinstance(value, bool):
        _tag(out, b"B", b"1" if value else b"0")
    elif isinstance(value, int):
        _tag(out, b"i", str(value).encode("ascii"))
    elif isinstance(value, float):
        # float.hex() is exact and canonical; it keeps nan/inf distinct from
        # every finite value and -0.0 distinct from 0.0.
        encoded = value.hex() if math.isfinite(value) else repr(value)
        _tag(out, b"f", encoded.encode("ascii"))
    elif isinstance(value, str):
        _tag(out, b"s", value.encode("utf-8"))
    elif isinstance(value, (bytes, bytearray)):
        _tag(out, b"b", bytes(value))
    elif isinstance(value, enum.Enum):
        _tag(out, b"E", _qualname(type(value)).encode("utf-8"))
        _encode(out, value.value)
    elif isinstance(value, np.ndarray):
        _tag(out, b"A", str(value.dtype).encode("ascii"))
        _encode(out, value.shape)
        _tag(out, b"a", np.ascontiguousarray(value).tobytes())
    elif isinstance(value, np.generic):
        _encode(out, value.item())
    elif hasattr(value, "__mobius_fingerprint__"):
        _tag(out, b"O", _qualname(type(value)).encode("utf-8"))
        _encode(out, value.__mobius_fingerprint__())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        _tag(out, b"D", _qualname(type(value)).encode("utf-8"))
        for field in dataclasses.fields(value):
            _tag(out, b"k", field.name.encode("utf-8"))
            _encode(out, getattr(value, field.name))
        _tag(out, b"d")
    elif isinstance(value, (tuple, list)):
        _tag(out, b"(" if isinstance(value, tuple) else b"[")
        for item in value:
            _encode(out, item)
        _tag(out, b")")
    elif isinstance(value, (set, frozenset)):
        encoded = sorted(canonical_bytes(item) for item in value)
        _tag(out, b"{")
        for item in encoded:
            _tag(out, b"e", item)
        _tag(out, b"}")
    elif isinstance(value, dict):
        items = sorted(
            (canonical_bytes(k), canonical_bytes(v)) for k, v in value.items()
        )
        _tag(out, b"M")
        for key_bytes, value_bytes in items:
            _tag(out, b"k", key_bytes)
            _tag(out, b"v", value_bytes)
        _tag(out, b"m")
    else:
        raise TypeError(
            f"cannot fingerprint {type(value).__qualname__!r}; add a "
            "__mobius_fingerprint__() method or use a supported type"
        )


def _qualname(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical_bytes(value) -> bytes:
    """Canonical byte encoding of ``value`` (see module docstring)."""
    out = bytearray()
    _encode(out, value)
    return bytes(out)


def fingerprint(value) -> str:
    """Hex SHA-256 digest of ``value``'s canonical encoding.

    Stable across processes and Python invocations; sensitive to every
    field of the encoded object graph.
    """
    return hashlib.sha256(canonical_bytes(value)).hexdigest()
