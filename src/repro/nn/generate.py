"""Autoregressive sampling and evaluation for the GPT model.

Rounds out the training stack: greedy/temperature/top-k sampling from a
trained model, and held-out perplexity evaluation — the metrics a real
fine-tuning run reports.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.tensor import no_grad
from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPTModel

__all__ = ["generate", "perplexity"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def generate(
    model: GPTModel,
    prompt: np.ndarray,
    *,
    max_new_tokens: int = 32,
    temperature: float = 1.0,
    top_k: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample a continuation of ``prompt``.

    Args:
        model: A (trained) GPT model.
        prompt: 1-D int array of seed tokens (non-empty).
        max_new_tokens: Tokens to append.
        temperature: Softmax temperature; 0 means greedy decoding.
        top_k: If set, sample only among the ``top_k`` most likely tokens.
        rng: Source of randomness (defaults to a fixed-seed generator so
            generation is reproducible).

    Returns:
        The full token sequence (prompt + continuation).
    """
    prompt = np.asarray(prompt, dtype=np.int64)
    if prompt.ndim != 1 or prompt.size == 0:
        raise ValueError(f"prompt must be a non-empty 1-D array, got shape {prompt.shape}")
    if temperature < 0:
        raise ValueError(f"temperature must be non-negative, got {temperature}")
    rng = rng or np.random.default_rng(0)
    window = model.config.seq_len
    tokens = list(prompt)

    model.eval()
    try:
        with no_grad():
            for _ in range(max_new_tokens):
                context = np.array(tokens[-window:], dtype=np.int64)[None, :]
                logits = model(context).data[0, -1]
                if temperature == 0:
                    next_token = int(np.argmax(logits))
                else:
                    scaled = logits / temperature
                    if top_k is not None:
                        cutoff = np.sort(scaled)[-top_k]
                        scaled = np.where(scaled < cutoff, -np.inf, scaled)
                    probs = _softmax(scaled)
                    next_token = int(rng.choice(len(probs), p=probs))
                tokens.append(next_token)
    finally:
        model.train()
    return np.array(tokens, dtype=np.int64)


def perplexity(
    model: GPTModel,
    corpus: SyntheticCorpus,
    *,
    n_batches: int = 8,
    batch_size: int = 8,
    seed: int = 0,
) -> float:
    """Held-out perplexity of ``model`` on ``corpus``.

    Returns:
        ``exp(mean token cross-entropy)`` over the sampled batches.
    """
    if n_batches <= 0:
        raise ValueError(f"n_batches must be positive, got {n_batches}")
    model.eval()
    total = 0.0
    try:
        with no_grad():
            stream = corpus.batches(batch_size, model.config.seq_len, seed=seed)
            for _, batch in zip(range(n_batches), stream):
                total += model.loss(batch.inputs, batch.targets).item()
    finally:
        model.train()
    return math.exp(total / n_batches)
