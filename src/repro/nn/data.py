"""Synthetic language-modelling corpus (WikiText-2 stand-in).

The convergence experiment (§4.6) fine-tunes GPT-2 on WikiText-2; offline,
we substitute a synthetic corpus with the statistical structure a small LM
can actually learn: a Zipfian unigram distribution blended with a sparse
first-order Markov transition matrix (so there is real sequential signal,
and the loss curve visibly decreases during fine-tuning).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

__all__ = ["SyntheticCorpus", "Batch"]


@dataclasses.dataclass(frozen=True)
class Batch:
    """One LM training batch: inputs and shifted-by-one targets."""

    inputs: np.ndarray  # (batch, seq) int64
    targets: np.ndarray  # (batch, seq) int64


class SyntheticCorpus:
    """Deterministic synthetic token stream with learnable structure.

    Args:
        vocab_size: Token vocabulary.
        n_tokens: Corpus length.
        seed: Generation seed.
        zipf_exponent: Skew of the unigram distribution.
        markov_weight: Blend factor between Markov transitions (learnable
            structure) and the unigram background.
    """

    def __init__(
        self,
        vocab_size: int = 256,
        n_tokens: int = 100_000,
        *,
        seed: int = 0,
        zipf_exponent: float = 1.1,
        markov_weight: float = 0.7,
    ) -> None:
        if vocab_size < 4:
            raise ValueError(f"vocab_size too small: {vocab_size}")
        if not 0.0 <= markov_weight <= 1.0:
            raise ValueError(f"markov_weight must be in [0, 1], got {markov_weight}")
        self.vocab_size = vocab_size
        rng = np.random.default_rng(seed)

        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        unigram = ranks**-zipf_exponent
        unigram /= unigram.sum()

        # Sparse successor structure: each token prefers a handful of others.
        n_successors = 4
        successors = rng.integers(0, vocab_size, size=(vocab_size, n_successors))
        successor_probs = rng.dirichlet(np.ones(n_successors), size=vocab_size)

        tokens = np.empty(n_tokens, dtype=np.int64)
        tokens[0] = rng.choice(vocab_size, p=unigram)
        unigram32 = unigram.astype(np.float64)
        for i in range(1, n_tokens):
            if rng.random() < markov_weight:
                prev = tokens[i - 1]
                tokens[i] = rng.choice(successors[prev], p=successor_probs[prev])
            else:
                tokens[i] = rng.choice(vocab_size, p=unigram32)
        self.tokens = tokens

    def batches(
        self, batch_size: int, seq_len: int, *, seed: int = 0
    ) -> Iterator[Batch]:
        """Yield an endless stream of random contiguous windows."""
        rng = np.random.default_rng(seed)
        limit = len(self.tokens) - seq_len - 1
        if limit <= 0:
            raise ValueError("corpus shorter than one sequence")
        while True:
            starts = rng.integers(0, limit, size=batch_size)
            inputs = np.stack([self.tokens[s : s + seq_len] for s in starts])
            targets = np.stack([self.tokens[s + 1 : s + seq_len + 1] for s in starts])
            yield Batch(inputs=inputs, targets=targets)
