"""Neural-network module system and basic layers."""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np

from repro.autograd.ops import dropout as dropout_op
from repro.autograd.ops import embedding as embedding_op
from repro.autograd.ops import layer_norm
from repro.autograd.tensor import Tensor

__all__ = ["Module", "Linear", "LayerNorm", "Embedding", "Dropout"]


class Module:
    """Base class: recursive parameter discovery plus train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Tensor]:
        """All trainable tensors of this module and its children."""
        seen: set[int] = set()
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()
                    elif isinstance(item, Tensor) and item.requires_grad:
                        if id(item) not in seen:
                            seen.add(id(item))
                            yield item

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix or type(self).__name__, self
        for name, value in self.__dict__.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Module):
                yield from value.named_modules(child_prefix)
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(f"{child_prefix}[{index}]")

    def train(self, mode: bool = True) -> "Module":
        for _, module in self.named_modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``x @ W + b`` with GPT-2 style initialisation."""

    def __init__(self, in_dim: int, out_dim: int, *, rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        std = 1.0 / math.sqrt(in_dim)
        self.weight = Tensor(
            rng.normal(0.0, std, size=(in_dim, out_dim)).astype(np.float32),
            requires_grad=True,
            name="weight",
        )
        self.bias = (
            Tensor(np.zeros(out_dim, dtype=np.float32), requires_grad=True, name="bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation with learnable scale and shift."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.weight = Tensor(np.ones(dim, dtype=np.float32), requires_grad=True)
        self.bias = Tensor(np.zeros(dim, dtype=np.float32), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.weight, self.bias, self.eps)


class Embedding(Module):
    """Token (or position) embedding table."""

    def __init__(self, n_rows: int, dim: int, *, rng: np.random.Generator, std: float = 0.02) -> None:
        super().__init__()
        self.weight = Tensor(
            rng.normal(0.0, std, size=(n_rows, dim)).astype(np.float32),
            requires_grad=True,
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_op(self.weight, indices)


class Dropout(Module):
    """Inverted dropout driven by an explicit generator for reproducibility."""

    def __init__(self, p: float, *, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout_op(x, self.p, self.rng, training=self.training)
