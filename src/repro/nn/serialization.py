"""Model checkpointing: state dicts and ``.npz`` save/load.

Fine-tuning starts from a *pretrained* checkpoint (§2.1 — the whole point
of the paper's workload).  This module provides the standard mechanics:
``state_dict`` / ``load_state_dict`` over any :class:`~repro.nn.layers.Module`
tree, and ``.npz`` persistence so a pretraining run's weights can seed a
fine-tuning run.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.layers import Module

__all__ = ["state_dict", "load_state_dict", "save_model", "load_model"]


def _named_parameters(module: Module) -> dict[str, Tensor]:
    """Stable name -> tensor mapping over a module tree."""
    names: dict[str, Tensor] = {}
    for prefix, sub in module.named_modules():
        for attr, value in sub.__dict__.items():
            if isinstance(value, Tensor) and value.requires_grad:
                key = f"{prefix}.{attr}"
                if key not in names:
                    names[key] = value
    return names


def state_dict(module: Module) -> dict[str, np.ndarray]:
    """Copy all trainable parameters into a name -> array dict."""
    return {name: tensor.data.copy() for name, tensor in _named_parameters(module).items()}


def load_state_dict(
    module: Module, state: Mapping[str, np.ndarray], *, strict: bool = True
) -> list[str]:
    """Load parameters in place.

    Args:
        module: Target module tree.
        state: Name -> array mapping, as produced by :func:`state_dict`.
        strict: When ``True`` (default), missing or unexpected keys raise.

    Returns:
        Names of parameters that were loaded.

    Raises:
        KeyError: On missing/unexpected keys in strict mode.
        ValueError: On shape mismatches.
    """
    params = _named_parameters(module)
    missing = sorted(set(params) - set(state))
    unexpected = sorted(set(state) - set(params))
    if strict and (missing or unexpected):
        raise KeyError(
            f"state dict mismatch: missing={missing[:5]} unexpected={unexpected[:5]}"
        )
    loaded = []
    for name, tensor in params.items():
        if name not in state:
            continue
        array = np.asarray(state[name], dtype=np.float32)
        if array.shape != tensor.data.shape:
            raise ValueError(
                f"shape mismatch for {name}: checkpoint {array.shape} vs "
                f"model {tensor.data.shape}"
            )
        tensor.data[...] = array
        loaded.append(name)
    return loaded


def save_model(module: Module, path: str) -> None:
    """Persist a module's parameters to an ``.npz`` file."""
    np.savez(path, **state_dict(module))


def load_model(module: Module, path: str, *, strict: bool = True) -> list[str]:
    """Load an ``.npz`` checkpoint saved by :func:`save_model`."""
    with np.load(path) as archive:
        return load_state_dict(module, dict(archive), strict=strict)
