"""GPT-style transformer language model.

The model is deliberately structured as an ordered list of *pipeline-able
layers* (embedding, blocks, final norm + head) so the training package can
partition it into stages exactly like the planner partitions
:class:`~repro.models.spec.ModelSpec` layers.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.autograd.ops import cross_entropy_logits, gelu
from repro.autograd.tensor import Tensor
from repro.nn.attention import CausalSelfAttention
from repro.nn.layers import Embedding, LayerNorm, Linear, Module

__all__ = ["GPTConfig", "TransformerBlock", "EmbeddingLayer", "HeadLayer", "GPTModel"]


@dataclasses.dataclass(frozen=True)
class GPTConfig:
    """Shape of a GPT model.

    Attributes:
        vocab_size: Vocabulary size.
        seq_len: Maximum sequence length (positions table size).
        dim: Hidden dimension.
        n_heads: Attention heads.
        n_blocks: Transformer blocks.
        mlp_ratio: MLP expansion factor.
    """

    vocab_size: int = 256
    seq_len: int = 64
    dim: int = 64
    n_heads: int = 4
    n_blocks: int = 2
    mlp_ratio: int = 4


class EmbeddingLayer(Module):
    """Token + position embedding; the pipeline's first layer."""

    def __init__(self, config: GPTConfig, *, rng: np.random.Generator) -> None:
        super().__init__()
        self.tokens = Embedding(config.vocab_size, config.dim, rng=rng)
        self.positions = Embedding(config.seq_len, config.dim, rng=rng)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        _, seq = token_ids.shape
        return self.tokens(token_ids) + self.positions(np.arange(seq))


class TransformerBlock(Module):
    """Pre-norm attention + MLP block."""

    def __init__(self, config: GPTConfig, *, rng: np.random.Generator) -> None:
        super().__init__()
        self.ln1 = LayerNorm(config.dim)
        self.attn = CausalSelfAttention(config.dim, config.n_heads, rng=rng)
        self.ln2 = LayerNorm(config.dim)
        self.fc_in = Linear(config.dim, config.mlp_ratio * config.dim, rng=rng)
        self.fc_out = Linear(config.mlp_ratio * config.dim, config.dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        return x + self.fc_out(gelu(self.fc_in(self.ln2(x))))


class HeadLayer(Module):
    """Final norm + LM projection; the pipeline's last layer."""

    def __init__(self, config: GPTConfig, *, rng: np.random.Generator) -> None:
        super().__init__()
        self.norm = LayerNorm(config.dim)
        self.proj = Linear(config.dim, config.vocab_size, rng=rng, bias=False)

    def forward(self, x: Tensor) -> Tensor:
        return self.proj(self.norm(x))


class GPTModel(Module):
    """The full language model as an ordered layer list."""

    def __init__(self, config: GPTConfig, *, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.pipeline_layers: list[Module] = [
            EmbeddingLayer(config, rng=rng),
            *[TransformerBlock(config, rng=rng) for _ in range(config.n_blocks)],
            HeadLayer(config, rng=rng),
        ]

    @property
    def n_pipeline_layers(self) -> int:
        return len(self.pipeline_layers)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        out: Tensor | np.ndarray = token_ids
        for layer in self.pipeline_layers:
            out = layer(out)
        return out

    def loss(self, token_ids: np.ndarray, targets: np.ndarray) -> Tensor:
        """Mean next-token cross entropy."""
        return cross_entropy_logits(self.forward(token_ids), targets)
