"""Multi-head causal self-attention."""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.ops import causal_mask_fill, softmax
from repro.autograd.tensor import Tensor
from repro.nn.layers import Linear, Module

__all__ = ["CausalSelfAttention"]


class CausalSelfAttention(Module):
    """GPT-style masked multi-head attention.

    Args:
        dim: Model hidden size.
        n_heads: Number of attention heads (must divide ``dim``).
        rng: Initialisation generator.
    """

    def __init__(self, dim: int, n_heads: int, *, rng: np.random.Generator) -> None:
        super().__init__()
        if dim % n_heads:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.qkv = Linear(dim, 3 * dim, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, dim = x.shape
        qkv = self.qkv(x)  # (B, S, 3D)
        qkv = qkv.reshape(batch, seq, 3, self.n_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, S, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        scores = causal_mask_fill(scores)
        weights = softmax(scores, axis=-1)
        context = weights @ v  # (B, H, S, hd)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.proj(context)
