"""Transformer language model on the numpy autograd engine."""

from repro.nn.attention import CausalSelfAttention
from repro.nn.data import Batch, SyntheticCorpus
from repro.nn.generate import generate, perplexity
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module
from repro.nn.serialization import load_model, load_state_dict, save_model, state_dict
from repro.nn.transformer import (
    EmbeddingLayer,
    GPTConfig,
    GPTModel,
    HeadLayer,
    TransformerBlock,
)

__all__ = [
    "Batch",
    "CausalSelfAttention",
    "Dropout",
    "Embedding",
    "EmbeddingLayer",
    "GPTConfig",
    "GPTModel",
    "generate",
    "perplexity",
    "HeadLayer",
    "LayerNorm",
    "load_model",
    "load_state_dict",
    "save_model",
    "state_dict",
    "Linear",
    "Module",
    "SyntheticCorpus",
    "TransformerBlock",
]
