"""Training loops: reference accumulation, pipeline schedules, convergence."""

from repro.training.convergence import ConvergenceResult, run_convergence_experiment
from repro.training.microbatch import ReferenceTrainer, accumulate_gradients, split_batch
from repro.training.pipeline_train import (
    GPipeScheduleTrainer,
    MobiusScheduleTrainer,
    StagePartition,
    SwapEvent,
)

__all__ = [
    "ConvergenceResult",
    "GPipeScheduleTrainer",
    "MobiusScheduleTrainer",
    "ReferenceTrainer",
    "StagePartition",
    "SwapEvent",
    "accumulate_gradients",
    "run_convergence_experiment",
    "split_batch",
]
