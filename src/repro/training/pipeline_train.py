"""Pipeline-schedule training on the numpy transformer.

Executes real gradient computation in the *order* the schedulers prescribe:

* stages are contiguous runs of the model's pipeline layers;
* stage boundaries cut the autograd graph — each stage's forward consumes a
  detached activation and backward receives the boundary activation
  gradient from its successor, exactly like activations/activation
  gradients crossing GPUs;
* the :class:`MobiusScheduleTrainer` additionally enforces heterogeneous
  memory semantics: stage parameters "live in DRAM" and at most
  ``resident_limit`` stages may be resident per virtual GPU at any moment
  (current + prefetched), with every swap recorded.

Because both schedules accumulate the same averaged microbatch gradients
and update synchronously, their parameter trajectories match plain
accumulation bit-for-bit up to float summation order — the §3.1 convergence
argument, which the tests assert.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.autograd.optim import Adam
from repro.autograd.tensor import Tensor
from repro.nn.data import Batch
from repro.nn.transformer import GPTModel
from repro.training.microbatch import split_batch

__all__ = ["SwapEvent", "StagePartition", "GPipeScheduleTrainer", "MobiusScheduleTrainer"]


@dataclasses.dataclass(frozen=True)
class SwapEvent:
    """One stage swap between DRAM and virtual GPU memory."""

    kind: str  # "upload" | "free"
    stage: int
    gpu: int
    phase: str  # "forward" | "backward"


@dataclasses.dataclass(frozen=True)
class StagePartition:
    """Contiguous partition of a model's pipeline layers into stages."""

    boundaries: tuple[int, ...]
    n_layers: int

    @property
    def n_stages(self) -> int:
        return len(self.boundaries) + 1

    def stage_range(self, stage: int) -> tuple[int, int]:
        cuts = (0, *self.boundaries, self.n_layers)
        return cuts[stage], cuts[stage + 1]

    @staticmethod
    def uniform(n_layers: int, n_stages: int) -> "StagePartition":
        if not 1 <= n_stages <= n_layers:
            raise ValueError(f"cannot split {n_layers} layers into {n_stages} stages")
        boundaries = tuple(
            round(n_layers * i / n_stages) for i in range(1, n_stages)
        )
        return StagePartition(boundaries, n_layers)


class _StagedStep:
    """Shared staged forward/backward machinery for one optimizer step.

    With ``recompute`` (activation checkpointing, the configuration the
    paper evaluates under), the forward pass stores only stage-boundary
    activations — no autograd graph — and each stage's graph is rebuilt
    from its checkpoint during backward, exactly like gradient
    checkpointing on real hardware.  Gradients are identical either way.
    """

    def __init__(
        self, model: GPTModel, partition: StagePartition, *, recompute: bool = False
    ) -> None:
        self.model = model
        self.partition = partition
        self.recompute = recompute

    def run_stage_forward(self, stage: int, micro_input):
        """Forward one microbatch through one stage.

        Returns ``(boundary_input, output)`` where ``boundary_input`` is the
        detached graph root that will receive the activation gradient.
        """
        start, stop = self.partition.stage_range(stage)
        if stage == 0:
            boundary = None
            out = micro_input  # raw token ids
        else:
            boundary = Tensor(micro_input.data.copy(), requires_grad=True)
            out = boundary
        for layer in self.model.pipeline_layers[start:stop]:
            out = layer(out)
        return boundary, out

    def forward_checkpoint(self, stage: int, micro_input):
        """Forward one microbatch keeping only the boundary activation."""
        from repro.autograd.tensor import no_grad

        with no_grad():
            _, out = self.run_stage_forward(stage, micro_input)
        return None, out

    def forward(self, stage: int, micro_input):
        if self.recompute:
            return self.forward_checkpoint(stage, micro_input)
        return self.run_stage_forward(stage, micro_input)

    def rebuild_for_backward(self, stage: int, saved, micro_input):
        """Materialise the stage's graph for backward.

        ``saved`` is the forward result; without recompute it already holds
        the graph, with recompute the stage forward is replayed from its
        input checkpoint.
        """
        if not self.recompute:
            return saved
        return self.run_stage_forward(stage, micro_input)

    def backward_stage(self, outputs, seed_grad):
        """Backward through one stage's graph; returns the input's gradient."""
        boundary, out = outputs
        out.backward(seed_grad)
        return None if boundary is None else boundary.grad


class GPipeScheduleTrainer:
    """GPipe: one resident stage per GPU, all-forward then all-backward."""

    def __init__(
        self,
        model: GPTModel,
        n_gpus: int,
        *,
        lr: float = 3e-4,
        n_microbatches: int | None = None,
        recompute: bool = False,
    ) -> None:
        self.model = model
        self.n_gpus = n_gpus
        self.n_microbatches = n_microbatches or n_gpus
        self.partition = StagePartition.uniform(model.n_pipeline_layers, n_gpus)
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.recompute = recompute

    def step(self, batch: Batch) -> float:
        """One synchronous GPipe step; returns the mean loss."""
        micros = split_batch(batch, self.n_microbatches)
        staged = _StagedStep(self.model, self.partition, recompute=self.recompute)
        s, m = self.partition.n_stages, len(micros)
        self.optimizer.zero_grad()

        acts = [[None] * m for _ in range(s)]
        for j in range(s):
            for mb in range(m):
                source = micros[mb].inputs if j == 0 else acts[j - 1][mb][1]
                acts[j][mb] = staged.forward(j, source)

        total = 0.0
        seeds = [[None] * m for _ in range(s)]
        from repro.autograd.ops import cross_entropy_logits

        for j in range(s - 1, -1, -1):
            for mb in range(m):
                source = micros[mb].inputs if j == 0 else acts[j - 1][mb][1]
                graph = staged.rebuild_for_backward(j, acts[j][mb], source)
                if j == s - 1:
                    boundary, out = graph
                    loss = cross_entropy_logits(out, micros[mb].targets) * (1.0 / m)
                    total += loss.item()
                    loss.backward()
                    seed = None if boundary is None else boundary.grad
                else:
                    seed = staged.backward_stage(graph, seeds[j + 1][mb])
                if j:
                    seeds[j][mb] = seed

        self.optimizer.step()
        return total


class MobiusScheduleTrainer:
    """Mobius: more stages than GPUs, swapped through heterogeneous memory.

    Stage ``j`` executes on virtual GPU ``j % n_gpus``; at most
    ``resident_limit`` stages are resident per GPU (the current one plus the
    prefetched next one).  Swaps are recorded in :attr:`swap_events` and the
    residency invariant is enforced, so tests can check the §3.1 schedule
    semantics while the gradients stay identical to GPipe's.
    """

    def __init__(
        self,
        model: GPTModel,
        n_gpus: int,
        n_stages: int | None = None,
        *,
        lr: float = 3e-4,
        n_microbatches: int | None = None,
        resident_limit: int = 2,
        recompute: bool = False,
    ) -> None:
        self.model = model
        self.n_gpus = n_gpus
        self.n_microbatches = n_microbatches or n_gpus
        stages = n_stages or min(2 * n_gpus, model.n_pipeline_layers)
        self.partition = StagePartition.uniform(model.n_pipeline_layers, stages)
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.resident_limit = resident_limit
        self.recompute = recompute
        self.swap_events: list[SwapEvent] = []
        self._resident: dict[int, list[int]] = {g: [] for g in range(n_gpus)}

    def gpu_of_stage(self, stage: int) -> int:
        return stage % self.n_gpus

    def _upload(self, stage: int, phase: str) -> None:
        gpu = self.gpu_of_stage(stage)
        resident = self._resident[gpu]
        if stage in resident:
            return
        if len(resident) >= self.resident_limit:
            evicted = resident.pop(0)
            self.swap_events.append(SwapEvent("free", evicted, gpu, phase))
        resident.append(stage)
        self.swap_events.append(SwapEvent("upload", stage, gpu, phase))

    def _free(self, stage: int, phase: str) -> None:
        gpu = self.gpu_of_stage(stage)
        if stage in self._resident[gpu]:
            self._resident[gpu].remove(stage)
            self.swap_events.append(SwapEvent("free", stage, gpu, phase))

    def step(self, batch: Batch) -> float:
        """One synchronous Mobius step; returns the mean loss."""
        micros = split_batch(batch, self.n_microbatches)
        staged = _StagedStep(self.model, self.partition, recompute=self.recompute)
        s, m = self.partition.n_stages, len(micros)
        n = self.n_gpus
        self.optimizer.zero_grad()

        acts = [[None] * m for _ in range(s)]
        for j in range(s):
            self._upload(j, "forward")
            for mb in range(m):
                source = micros[mb].inputs if j == 0 else acts[j - 1][mb][1]
                acts[j][mb] = staged.forward(j, source)
            if j < s - n:  # the top N stages stay resident for backward
                self._free(j, "forward")

        total = 0.0
        seeds = [[None] * m for _ in range(s)]
        from repro.autograd.ops import cross_entropy_logits

        for j in range(s - 1, -1, -1):
            self._upload(j, "backward")
            for mb in range(m):
                source = micros[mb].inputs if j == 0 else acts[j - 1][mb][1]
                graph = staged.rebuild_for_backward(j, acts[j][mb], source)
                if j == s - 1:
                    boundary, out = graph
                    loss = cross_entropy_logits(out, micros[mb].targets) * (1.0 / m)
                    total += loss.item()
                    loss.backward()
                    seed = None if boundary is None else boundary.grad
                else:
                    seed = staged.backward_stage(graph, seeds[j + 1][mb])
                if j:
                    seeds[j][mb] = seed
            self._free(j, "backward")

        self.optimizer.step()
        return total
