"""Convergence experiment driver (§4.6, Figure 13).

Fine-tunes the same GPT model with the GPipe schedule (8 virtual GPUs in
the paper) and with the Mobius schedule (4 virtual GPUs), recording the
training-loss curves.  Because both schedules are synchronous, the curves
overlap; the paper attributes the residual wiggle to "variation of
randomness caused by different numbers of GPUs", which here manifests as a
different microbatch split (and hence float summation order) per system.
"""

from __future__ import annotations

import dataclasses

from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPTConfig, GPTModel
from repro.training.pipeline_train import GPipeScheduleTrainer, MobiusScheduleTrainer

__all__ = ["ConvergenceResult", "run_convergence_experiment"]


@dataclasses.dataclass
class ConvergenceResult:
    """Loss curves of the two systems over the same data stream."""

    steps: list[int]
    gpipe_loss: list[float]
    mobius_loss: list[float]

    def max_divergence(self) -> float:
        """Largest absolute gap between the two loss curves."""
        return max(
            abs(a - b) for a, b in zip(self.gpipe_loss, self.mobius_loss)
        )

    def final_losses(self) -> tuple[float, float]:
        return self.gpipe_loss[-1], self.mobius_loss[-1]


def run_convergence_experiment(
    *,
    n_steps: int = 60,
    config: GPTConfig | None = None,
    batch_size: int = 8,
    gpipe_gpus: int = 8,
    mobius_gpus: int = 4,
    lr: float = 3e-4,
    seed: int = 0,
) -> ConvergenceResult:
    """Run the Figure 13 comparison.

    Both trainers see the *same* global batches (same corpus, same sampling
    seed) from identically initialised models; only the schedule — and the
    microbatch count implied by the GPU count — differs.
    """
    config = config or GPTConfig(vocab_size=128, seq_len=32, dim=64, n_heads=4, n_blocks=6)
    corpus = SyntheticCorpus(vocab_size=config.vocab_size, n_tokens=50_000, seed=seed)

    gpipe_model = GPTModel(config, seed=seed)
    mobius_model = GPTModel(config, seed=seed)
    gpipe = GPipeScheduleTrainer(
        gpipe_model, gpipe_gpus, lr=lr, n_microbatches=gpipe_gpus
    )
    mobius = MobiusScheduleTrainer(
        mobius_model, mobius_gpus, lr=lr, n_microbatches=mobius_gpus
    )

    steps: list[int] = []
    gpipe_losses: list[float] = []
    mobius_losses: list[float] = []
    stream = corpus.batches(batch_size, config.seq_len, seed=seed + 1)
    for step, batch in zip(range(n_steps), stream):
        gpipe_losses.append(gpipe.step(batch))
        mobius_losses.append(mobius.step(batch))
        steps.append(step)
    return ConvergenceResult(steps, gpipe_losses, mobius_losses)
