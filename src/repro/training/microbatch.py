"""Reference microbatch training: plain gradient accumulation.

The ground truth that both pipeline trainers must match: split the global
batch into microbatches, accumulate parameter gradients, average, and step.
Synchronous pipelines (GPipe, Mobius) are mathematically identical to this
— the equivalence the §3.1 convergence discussion relies on, asserted
directly by the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.optim import Adam
from repro.nn.data import Batch
from repro.nn.transformer import GPTModel

__all__ = ["split_batch", "accumulate_gradients", "ReferenceTrainer"]


def split_batch(batch: Batch, n_microbatches: int) -> list[Batch]:
    """Split a global batch into equal microbatches."""
    if batch.inputs.shape[0] % n_microbatches:
        raise ValueError(
            f"batch size {batch.inputs.shape[0]} not divisible by "
            f"{n_microbatches} microbatches"
        )
    inputs = np.array_split(batch.inputs, n_microbatches)
    targets = np.array_split(batch.targets, n_microbatches)
    return [Batch(i, t) for i, t in zip(inputs, targets)]


def accumulate_gradients(model: GPTModel, microbatches: list[Batch]) -> float:
    """Accumulate averaged gradients over microbatches; returns mean loss."""
    scale = 1.0 / len(microbatches)
    total = 0.0
    for micro in microbatches:
        loss = model.loss(micro.inputs, micro.targets) * scale
        loss.backward()
        total += loss.item()
    return total


class ReferenceTrainer:
    """Vanilla data-order training loop used as the correctness oracle."""

    def __init__(self, model: GPTModel, *, lr: float = 3e-4, n_microbatches: int = 4) -> None:
        self.model = model
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.n_microbatches = n_microbatches

    def step(self, batch: Batch) -> float:
        """One optimizer step over ``batch``; returns the mean loss."""
        self.optimizer.zero_grad()
        loss = accumulate_gradients(self.model, split_batch(batch, self.n_microbatches))
        self.optimizer.step()
        return loss
