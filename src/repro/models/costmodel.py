"""Analytic cost model: layer and stage execution time and memory.

This is the bridge between :mod:`repro.models.spec` (sizes and FLOPs) and the
schedulers/partitioners, replacing on-GPU measurement.  All schedulers and
the MIP partitioner consume :class:`StageCost` aggregates, so Mobius,
GPipe and DeepSpeed are compared on identical cost assumptions.

Memory accounting follows mixed-precision training with activation
recomputation (checkpointing), the configuration used throughout §4:

* a stage executing *forward* holds its FP16 parameters, a rolling activation
  buffer, transient working memory, and one stashed input activation per
  in-flight microbatch (the recompute checkpoint);
* a stage executing *backward* additionally holds FP16 gradients and the
  recomputed intra-stage activations of one microbatch.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from functools import cached_property

from repro.hardware.gpu import GPUSpec, Precision
from repro.models.spec import FP16_BYTES, LayerSpec, ModelSpec

__all__ = ["LayerCost", "StageCost", "CostModel", "FRAMEWORK_OVERHEAD_BYTES"]

#: Constant per-GPU memory claimed by the framework (CUDA context, NCCL
#: buffers, allocator slack) and unavailable to stage data.
FRAMEWORK_OVERHEAD_BYTES = int(1.5 * 1024**3)


@dataclasses.dataclass(frozen=True)
class LayerCost:
    """Per-microbatch execution cost of one layer."""

    layer: LayerSpec
    fwd_seconds: float
    bwd_seconds: float
    param_bytes: int
    activation_bytes: int
    working_bytes: int


@dataclasses.dataclass(frozen=True)
class StageCost:
    """Aggregated execution cost of a contiguous run of layers.

    All times are per-microbatch; memory methods take the microbatch count
    ``m`` where the footprint scales with in-flight microbatches.

    The aggregates are :func:`functools.cached_property` values: the planner
    evaluates millions of candidate schedules against the same StageCost
    objects, and re-summing ``layer_costs`` on every access dominated the
    uncached suite.  Caching is sound because the dataclass is frozen, and
    invisible to equality/fingerprinting because both iterate
    ``dataclasses.fields`` only.
    """

    layer_costs: tuple[LayerCost, ...]
    input_activation_bytes: int

    @property
    def n_layers(self) -> int:
        return len(self.layer_costs)

    @cached_property
    def param_bytes(self) -> int:
        """FP16 parameter bytes — the stage's DRAM-to-GPU upload size."""
        return sum(c.param_bytes for c in self.layer_costs)

    @property
    def grad_bytes(self) -> int:
        """FP16 gradient bytes — the stage's GPU-to-DRAM offload size."""
        return self.param_bytes

    @cached_property
    def fwd_seconds(self) -> float:
        """Forward compute time for one microbatch."""
        return sum(c.fwd_seconds for c in self.layer_costs)

    @cached_property
    def bwd_seconds(self) -> float:
        """Backward (incl. recompute) compute time for one microbatch."""
        return sum(c.bwd_seconds for c in self.layer_costs)

    @property
    def output_activation_bytes(self) -> int:
        """Boundary activation sent to the next stage, per microbatch."""
        if not self.layer_costs:
            return 0
        return self.layer_costs[-1].activation_bytes

    @cached_property
    def max_working_bytes(self) -> int:
        return max((c.working_bytes for c in self.layer_costs), default=0)

    @cached_property
    def intra_activation_bytes(self) -> int:
        """All intra-stage boundary activations of one microbatch (the
        recompute footprint during backward)."""
        return sum(c.activation_bytes for c in self.layer_costs)

    @cached_property
    def _rolling_buffer_bytes(self) -> int:
        peak = 0
        prev_act = self.input_activation_bytes
        for cost in self.layer_costs:
            peak = max(peak, prev_act + cost.activation_bytes + cost.working_bytes)
            prev_act = cost.activation_bytes
        return peak

    def rolling_buffer_bytes(self) -> int:
        """Peak transient during forward of one microbatch: the largest
        (input + output + working) window over the stage's layers."""
        return self._rolling_buffer_bytes

    @cached_property
    def _mem_fwd_base(self) -> int:
        return self.param_bytes + self._rolling_buffer_bytes

    @cached_property
    def _mem_bwd_base(self) -> int:
        recompute = self.intra_activation_bytes + self.max_working_bytes
        grad_in = self.output_activation_bytes  # incoming activation gradient
        return self.param_bytes + self.grad_bytes + recompute + grad_in

    def mem_fwd(self, m: int) -> int:
        """GPU bytes needed while this stage runs forward on ``m`` in-flight
        microbatches (Eq. 4's S_j^f); the ``m``-scaled term is the stash of
        recompute-checkpoint input activations."""
        return self._mem_fwd_base + m * self.input_activation_bytes

    def mem_bwd(self, m: int) -> int:
        """GPU bytes needed while this stage runs backward (Eq. 4's S_j^b)."""
        return self._mem_bwd_base + m * self.input_activation_bytes

    def mem_peak(self, m: int) -> int:
        """Maximum of the forward and backward footprints."""
        return max(self.mem_fwd(m), self.mem_bwd(m))

    def resident_bytes_static(self) -> int:
        """All-in-GPU-memory footprint of the stage's *states* (GPipe-style):
        FP16 params + FP16 grads + FP32 master & Adam state (16 bytes/param
        total)."""
        n_params = self.param_bytes // FP16_BYTES
        return n_params * 16


class CostModel:
    """Maps model layers to execution costs on a specific GPU.

    Args:
        gpu_spec: Target device.
        microbatch_size: Sequences per microbatch.
        recompute: Whether activation checkpointing is on (default, as in
            the paper's evaluation).
        precision: Kernel precision (mixed-precision training -> FP16).
    """

    def __init__(
        self,
        gpu_spec: GPUSpec,
        microbatch_size: int,
        *,
        recompute: bool = True,
        precision: Precision = Precision.FP16,
    ) -> None:
        if microbatch_size <= 0:
            raise ValueError(f"microbatch_size must be positive, got {microbatch_size}")
        self.gpu_spec = gpu_spec
        self.microbatch_size = microbatch_size
        self.recompute = recompute
        self.precision = precision
        self._cache: dict[tuple, LayerCost] = {}

    def layer_cost(self, layer: LayerSpec) -> LayerCost:
        """Execution cost of one layer for one microbatch."""
        key = layer.signature or (layer.name,)
        cached = self._cache.get(key)
        if cached is not None:
            return dataclasses.replace(cached, layer=layer)
        cost = LayerCost(
            layer=layer,
            fwd_seconds=self.gpu_spec.compute_seconds(
                layer.fwd_flops(self.microbatch_size), self.precision
            ),
            bwd_seconds=self.gpu_spec.compute_seconds(
                layer.bwd_flops(self.microbatch_size, recompute=self.recompute),
                self.precision,
            ),
            param_bytes=layer.param_bytes(FP16_BYTES),
            activation_bytes=layer.activation_bytes(self.microbatch_size),
            working_bytes=layer.working_bytes(self.microbatch_size),
        )
        self._cache[key] = cost
        return cost

    def stage_cost(self, model: ModelSpec, start: int, stop: int) -> StageCost:
        """Aggregate cost of the stage spanning layers ``[start, stop)``."""
        layers = model.layer_range(start, stop)
        input_act = (
            model.layers[start - 1].activation_bytes(self.microbatch_size)
            if start > 0
            else model.layers[0].activation_bytes(self.microbatch_size)
        )
        return StageCost(
            layer_costs=tuple(self.layer_cost(layer) for layer in layers),
            input_activation_bytes=input_act,
        )

    def stage_costs_for_partition(
        self, model: ModelSpec, boundaries: Sequence[int]
    ) -> list[StageCost]:
        """Stage costs for a partition given as boundary indices.

        ``boundaries`` are the cut points: a partition into stages
        ``[0,b0) [b0,b1) ... [bk,L)``.  Must be strictly increasing and lie
        inside ``(0, L)``.
        """
        cuts = [0, *boundaries, model.n_layers]
        if any(a >= b for a, b in zip(cuts, cuts[1:])):
            raise ValueError(f"boundaries not strictly increasing: {boundaries!r}")
        return [self.stage_cost(model, a, b) for a, b in zip(cuts, cuts[1:])]

    def usable_gpu_bytes(self) -> int:
        """Per-GPU memory available for stage data (Eq. 4's G)."""
        return self.gpu_spec.memory_bytes - FRAMEWORK_OVERHEAD_BYTES
