"""The evaluation's model zoo (Table 3) plus the convergence model.

Table 3 of the paper:

====================  =====  ======  ======  ==========
Parameters (billion)  Heads  Hidden  Layers  Microbatch
====================  =====  ======  ======  ==========
3                     32     2048    64      2
8                     32     4096    40      2
15                    64     5120    40      1
51                    80     9216    50      1
====================  =====  ======  ======  ==========

Sequence length is fixed to 512.  Layer counts refer to transformer blocks;
the built specs additionally carry the embedding, final norm and LM head.
"""

from __future__ import annotations

from repro.models.spec import ModelSpec, build_gpt_like, build_vit_like

__all__ = [
    "vit_huge",
    "gpt_3b",
    "gpt_8b",
    "gpt_15b",
    "gpt_51b",
    "gpt2_small",
    "TABLE3_MODELS",
    "model_by_name",
]


def gpt_3b() -> ModelSpec:
    """The 3B model: 64 layers, hidden 2048, 32 heads, microbatch 2."""
    return build_gpt_like(
        "GPT-3B", n_blocks=64, hidden_dim=2048, n_heads=32, default_microbatch_size=2
    )


def gpt_8b() -> ModelSpec:
    """The 8B model: 40 layers, hidden 4096, 32 heads, microbatch 2."""
    return build_gpt_like(
        "GPT-8B", n_blocks=40, hidden_dim=4096, n_heads=32, default_microbatch_size=2
    )


def gpt_15b() -> ModelSpec:
    """The 15B model: 40 layers, hidden 5120, 64 heads, microbatch 1."""
    return build_gpt_like(
        "GPT-15B", n_blocks=40, hidden_dim=5120, n_heads=64, default_microbatch_size=1
    )


def gpt_51b() -> ModelSpec:
    """The 51B model: 50 layers, hidden 9216, 80 heads, microbatch 1."""
    return build_gpt_like(
        "GPT-51B", n_blocks=50, hidden_dim=9216, n_heads=80, default_microbatch_size=1
    )


def vit_huge() -> ModelSpec:
    """ViT-Huge-class vision transformer (the intro's CV workloads [18])."""
    return build_vit_like(
        "ViT-Huge", n_blocks=32, hidden_dim=1280, n_heads=16, patch_size=14
    )


def gpt2_small(seq_len: int = 128) -> ModelSpec:
    """A GPT-2-small-shaped model for the convergence experiment (§4.6)."""
    return build_gpt_like(
        "GPT2-small",
        n_blocks=12,
        hidden_dim=768,
        n_heads=12,
        seq_len=seq_len,
        default_microbatch_size=4,
    )


def TABLE3_MODELS() -> list[ModelSpec]:
    """All four Table 3 models, smallest first."""
    return [gpt_3b(), gpt_8b(), gpt_15b(), gpt_51b()]


_FACTORIES = {
    "VIT-H": vit_huge,
    "3B": gpt_3b,
    "8B": gpt_8b,
    "15B": gpt_15b,
    "51B": gpt_51b,
    "GPT2": gpt2_small,
}


def model_by_name(name: str) -> ModelSpec:
    """Look up a zoo model by short name (``"3B"``, ``"8B"``, ...)."""
    key = name.upper().removeprefix("GPT-").removeprefix("GPT_")
    try:
        return _FACTORIES[key]()
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
