"""Simulated model profiling with layer-similarity compression (§3.2).

The MIP partition algorithm needs per-layer compute times and memory
footprints.  On real hardware Mobius measures them by running each layer a
few times with prefetching disabled; profiling the whole model is slow, so
Mobius merges layers with identical structure ("layer similarity") and
profiles one representative per group.

Here, "measurement" reads the analytic cost model (optionally with
deterministic multiplicative noise, to exercise robustness of the
partitioner), and the profiling *wall time* is itself simulated — upload
time of the representative layer's parameters plus warm-up and measurement
runs — so Figure 12's profiling-overhead observations can be reproduced:

* profiling time tracks the number of *unique* layers, not total layers;
* models with similar hidden dimensions (8B vs 15B) profile in similar time.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hardware.topology import PCIE_EFFECTIVE_BW
from repro.models.costmodel import CostModel, LayerCost
from repro.models.spec import ModelSpec

__all__ = ["ProfileReport", "Profiler"]


@dataclasses.dataclass(frozen=True)
class ProfileReport:
    """Result of profiling one model.

    Attributes:
        model: The profiled model.
        layer_costs: One measured :class:`LayerCost` per model layer, in
            layer order (group representatives replicated across members).
        profiling_seconds: Simulated wall-clock time the profiling run took.
        n_unique_layers: Number of similarity groups actually measured.
    """

    model: ModelSpec
    layer_costs: tuple[LayerCost, ...]
    profiling_seconds: float
    n_unique_layers: int

    def stage_cost_model(self) -> "ProfiledCostModel":
        """A cost-model-compatible view backed by the measured numbers."""
        return ProfiledCostModel(self)


class ProfiledCostModel:
    """Adapter exposing measured layer costs through the CostModel API."""

    def __init__(self, report: ProfileReport) -> None:
        self._report = report
        self._by_index = {i: c for i, c in enumerate(report.layer_costs)}

    def layer_cost_at(self, index: int) -> LayerCost:
        return self._by_index[index]


class Profiler:
    """Simulates Mobius's profiling pass.

    Args:
        cost_model: Ground-truth layer costs (the "hardware").
        warmup_runs: Discarded executions per measured layer.
        measure_runs: Timed executions per measured layer.
        setup_seconds: Fixed per-profiling-session overhead (process launch,
            CUDA context, model load).
        per_layer_overhead_seconds: Fixed per-measured-layer overhead
            (allocation, synchronisation).
        upload_bandwidth: Bandwidth for staging each measured layer's
            parameters into GPU memory, bytes/s.
        noise: Relative measurement noise amplitude; 0 is exact.
        seed: RNG seed for the (deterministic) noise.
    """

    def __init__(
        self,
        cost_model: CostModel,
        *,
        warmup_runs: int = 2,
        measure_runs: int = 3,
        setup_seconds: float = 10.0,
        per_layer_overhead_seconds: float = 0.5,
        upload_bandwidth: float = PCIE_EFFECTIVE_BW,
        noise: float = 0.0,
        seed: int = 0,
    ) -> None:
        if warmup_runs < 0 or measure_runs <= 0:
            raise ValueError("need measure_runs > 0 and warmup_runs >= 0")
        if not 0.0 <= noise < 1.0:
            raise ValueError(f"noise must be in [0, 1), got {noise}")
        self.cost_model = cost_model
        self.warmup_runs = warmup_runs
        self.measure_runs = measure_runs
        self.setup_seconds = setup_seconds
        self.per_layer_overhead_seconds = per_layer_overhead_seconds
        self.upload_bandwidth = upload_bandwidth
        self.noise = noise
        self.seed = seed

    def profile(self, model: ModelSpec, *, use_similarity: bool = True) -> ProfileReport:
        """Profile ``model``, measuring one layer per similarity group.

        Args:
            model: Model to profile.
            use_similarity: When ``False``, every layer is measured
                individually (the "basic way" of §3.2, for comparison).
        """
        rng = np.random.default_rng(self.seed)
        groups = (
            model.similarity_groups()
            if use_similarity
            else {("layer", i): [i] for i in range(model.n_layers)}
        )

        measured: dict[int, LayerCost] = {}
        wall = self.setup_seconds
        runs = self.warmup_runs + self.measure_runs
        for members in groups.values():
            representative = model.layers[members[0]]
            true_cost = self.cost_model.layer_cost(representative)
            wall += (
                self.per_layer_overhead_seconds
                + true_cost.param_bytes / self.upload_bandwidth
                + runs * (true_cost.fwd_seconds + true_cost.bwd_seconds)
            )
            factor = 1.0 + (self.noise * rng.uniform(-1.0, 1.0) if self.noise else 0.0)
            observed = dataclasses.replace(
                true_cost,
                fwd_seconds=true_cost.fwd_seconds * factor,
                bwd_seconds=true_cost.bwd_seconds * factor,
            )
            for index in members:
                measured[index] = dataclasses.replace(
                    observed, layer=model.layers[index]
                )

        layer_costs = tuple(measured[i] for i in range(model.n_layers))
        return ProfileReport(
            model=model,
            layer_costs=layer_costs,
            profiling_seconds=wall,
            n_unique_layers=len(groups),
        )
