"""Model substrate: transformer specs, analytic cost model, and profiler."""

from repro.models.costmodel import (
    FRAMEWORK_OVERHEAD_BYTES,
    CostModel,
    LayerCost,
    StageCost,
)
from repro.models.profiler import ProfileReport, Profiler
from repro.models.spec import (
    FP16_BYTES,
    FP32_BYTES,
    LayerKind,
    LayerSpec,
    ModelSpec,
    build_gpt_like,
    build_vit_like,
)
from repro.models.zoo import (
    TABLE3_MODELS,
    gpt2_small,
    gpt_3b,
    gpt_8b,
    gpt_15b,
    gpt_51b,
    model_by_name,
)

__all__ = [
    "CostModel",
    "FP16_BYTES",
    "FP32_BYTES",
    "FRAMEWORK_OVERHEAD_BYTES",
    "LayerCost",
    "LayerKind",
    "LayerSpec",
    "ModelSpec",
    "ProfileReport",
    "Profiler",
    "StageCost",
    "TABLE3_MODELS",
    "build_gpt_like",
    "build_vit_like",
    "gpt2_small",
    "gpt_3b",
    "gpt_8b",
    "gpt_15b",
    "gpt_51b",
    "model_by_name",
]
