"""Model descriptions: layers, parameter counts, FLOPs, activation sizes.

The paper fine-tunes GPT-like transformers (Table 3).  For the simulation we
need, per layer: parameter bytes (FP16 working copy and FP32 master copy),
forward/backward FLOPs as a function of microbatch size and sequence length,
output-activation bytes, and the transient working memory of executing the
layer.  Standard transformer arithmetic is used throughout (e.g. a block has
~12h^2 parameters and a forward pass costs ~24*b*s*h^2 + 4*b*s^2*h FLOPs).
"""

from __future__ import annotations

import dataclasses

__all__ = ["LayerKind", "LayerSpec", "ModelSpec", "FP16_BYTES", "FP32_BYTES", "build_gpt_like", "build_vit_like"]

FP16_BYTES = 2
FP32_BYTES = 4

#: Bytes of optimizer state per parameter with Adam + FP32 master weights:
#: master copy (4) + momentum (4) + variance (4).
OPTIMIZER_BYTES_PER_PARAM = 12


class LayerKind:
    """Layer categories used for similarity grouping."""

    EMBEDDING = "embedding"
    TRANSFORMER_BLOCK = "transformer_block"
    FINAL_NORM = "final_norm"
    LM_HEAD = "lm_head"


@dataclasses.dataclass(frozen=True)
class LayerSpec:
    """One model layer as seen by the partitioner.

    Attributes:
        name: Unique layer name within its model.
        kind: One of :class:`LayerKind`; used for layer-similarity grouping.
        param_count: Number of parameters.
        fwd_flops_per_sample: Forward FLOPs for one sequence (batch of 1).
        activation_elems_per_sample: Elements in the layer's output
            activation for one sequence (what flows to the next stage).
        working_elems_per_sample: Peak transient elements while executing
            the layer (attention scores, MLP intermediates, ...).
        signature: Hashable similarity key; layers with equal signatures are
            assumed to profile identically (§3.2 "layer similarity").
    """

    name: str
    kind: str
    param_count: int
    fwd_flops_per_sample: float
    activation_elems_per_sample: int
    working_elems_per_sample: int
    signature: tuple = ()

    def param_bytes(self, dtype_bytes: int = FP16_BYTES) -> int:
        """Parameter footprint at the given precision."""
        return self.param_count * dtype_bytes

    def fwd_flops(self, microbatch_size: int) -> float:
        """Forward FLOPs for a microbatch."""
        return self.fwd_flops_per_sample * microbatch_size

    def bwd_flops(self, microbatch_size: int, *, recompute: bool = True) -> float:
        """Backward FLOPs for a microbatch.

        The backward pass costs ~2x the forward; activation recomputation
        (gradient checkpointing, used by all systems in the paper's
        evaluation) replays the forward first, adding another 1x.
        """
        factor = 3.0 if recompute else 2.0
        return factor * self.fwd_flops(microbatch_size)

    def activation_bytes(self, microbatch_size: int, dtype_bytes: int = FP16_BYTES) -> int:
        """Bytes of the layer's boundary activation for a microbatch."""
        return self.activation_elems_per_sample * microbatch_size * dtype_bytes

    def working_bytes(self, microbatch_size: int, dtype_bytes: int = FP16_BYTES) -> int:
        """Peak transient memory while executing the layer on a microbatch."""
        return self.working_elems_per_sample * microbatch_size * dtype_bytes


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """A model: an ordered list of layers plus global shape metadata.

    Attributes:
        name: Label, e.g. ``"GPT-15B"``.
        layers: Ordered layers, input side first.
        hidden_dim: Transformer hidden dimension.
        n_heads: Attention head count.
        seq_len: Training sequence length (fixed at 512 in §4).
        vocab_size: Vocabulary size.
        default_microbatch_size: Table 3's microbatch size for this model.
    """

    name: str
    layers: tuple[LayerSpec, ...]
    hidden_dim: int
    n_heads: int
    seq_len: int
    vocab_size: int
    default_microbatch_size: int = 1

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def param_count(self) -> int:
        """Total parameters across all layers."""
        return sum(layer.param_count for layer in self.layers)

    def param_bytes(self, dtype_bytes: int = FP16_BYTES) -> int:
        """Total parameter bytes at the given precision."""
        return self.param_count * dtype_bytes

    def layer_range(self, start: int, stop: int) -> tuple[LayerSpec, ...]:
        """Layers ``start .. stop-1`` (used to materialise stages)."""
        if not 0 <= start < stop <= self.n_layers:
            raise ValueError(
                f"invalid layer range [{start}, {stop}) for {self.n_layers} layers"
            )
        return self.layers[start:stop]

    def similarity_groups(self) -> dict[tuple, list[int]]:
        """Indices of layers grouped by profile signature (§3.2).

        Large models are dominated by identical transformer blocks; the
        profiler measures one representative per group.
        """
        groups: dict[tuple, list[int]] = {}
        for index, layer in enumerate(self.layers):
            groups.setdefault(layer.signature, []).append(index)
        return groups

    def fingerprint(self) -> str:
        """Stable content hash of this spec (see :mod:`repro.perf`).

        Two specs built with identical shapes hash identically in any
        process; changing any layer or shape field changes the hash.  Used
        as the model component of planner/simulation cache keys.
        """
        from repro.perf.fingerprint import fingerprint

        return fingerprint(self)

    def dram_footprint_bytes(self) -> int:
        """DRAM needed to host the model for heterogeneous-memory training:
        FP16 working copy + FP16 gradients + Adam optimizer state."""
        p = self.param_count
        return p * (FP16_BYTES + FP16_BYTES + OPTIMIZER_BYTES_PER_PARAM)


def build_vit_like(
    name: str,
    *,
    n_blocks: int,
    hidden_dim: int,
    n_heads: int,
    image_size: int = 224,
    patch_size: int = 16,
    n_classes: int = 1000,
    default_microbatch_size: int = 8,
) -> ModelSpec:
    """Construct a ViT-like :class:`ModelSpec` (the intro's CV workloads).

    Same transformer-block arithmetic as the GPT builder with the sequence
    length set by the patch grid; the boundary layers are the patch
    embedding and the classification head.
    """
    if image_size % patch_size:
        raise ValueError(
            f"image_size {image_size} not divisible by patch_size {patch_size}"
        )
    seq_len = (image_size // patch_size) ** 2 + 1  # patches + CLS token
    h, s = hidden_dim, seq_len
    patch_dim = 3 * patch_size * patch_size
    layers: list[LayerSpec] = [
        LayerSpec(
            name="patch_embed",
            kind=LayerKind.EMBEDDING,
            param_count=patch_dim * h + s * h,
            fwd_flops_per_sample=2.0 * s * patch_dim * h,
            activation_elems_per_sample=s * h,
            working_elems_per_sample=2 * s * h,
            signature=(LayerKind.EMBEDDING, h, patch_dim),
        )
    ]
    block_params = 12 * h * h + 13 * h
    block_fwd_flops = 24.0 * s * h * h + 4.0 * s * s * h
    block_working = 8 * s * h + n_heads * s * s
    for index in range(n_blocks):
        layers.append(
            LayerSpec(
                name=f"block{index}",
                kind=LayerKind.TRANSFORMER_BLOCK,
                param_count=block_params,
                fwd_flops_per_sample=block_fwd_flops,
                activation_elems_per_sample=s * h,
                working_elems_per_sample=block_working,
                signature=(LayerKind.TRANSFORMER_BLOCK, h, n_heads),
            )
        )
    layers.append(
        LayerSpec(
            name="cls_head",
            kind=LayerKind.LM_HEAD,
            param_count=h * n_classes + 2 * h,
            fwd_flops_per_sample=2.0 * h * n_classes + 5.0 * s * h,
            activation_elems_per_sample=n_classes,
            working_elems_per_sample=s * h,
            signature=(LayerKind.LM_HEAD, h, n_classes),
        )
    )
    return ModelSpec(
        name=name,
        layers=tuple(layers),
        hidden_dim=h,
        n_heads=n_heads,
        seq_len=s,
        vocab_size=n_classes,
        default_microbatch_size=default_microbatch_size,
    )


def build_gpt_like(
    name: str,
    *,
    n_blocks: int,
    hidden_dim: int,
    n_heads: int,
    seq_len: int = 512,
    vocab_size: int = 50_257,
    default_microbatch_size: int = 1,
    include_embedding: bool = True,
) -> ModelSpec:
    """Construct a GPT-like :class:`ModelSpec` from Table 3 style shapes.

    Layer inventory: token+position embedding, ``n_blocks`` identical
    transformer blocks, a final layer norm, and the LM head projection.
    """
    if n_blocks <= 0 or hidden_dim <= 0 or n_heads <= 0:
        raise ValueError("model shape parameters must be positive")
    if n_heads > hidden_dim:
        raise ValueError(f"n_heads {n_heads} exceeds hidden_dim {hidden_dim}")
    h, s, v = hidden_dim, seq_len, vocab_size
    layers: list[LayerSpec] = []

    if include_embedding:
        layers.append(
            LayerSpec(
                name="embedding",
                kind=LayerKind.EMBEDDING,
                param_count=v * h + s * h,
                fwd_flops_per_sample=2.0 * s * h,  # lookup + add, negligible
                activation_elems_per_sample=s * h,
                working_elems_per_sample=2 * s * h,
                signature=(LayerKind.EMBEDDING, h, v),
            )
        )

    block_params = 12 * h * h + 13 * h
    block_fwd_flops = 24.0 * s * h * h + 4.0 * s * s * h
    # Peak transient: QKV/MLP intermediates ~8*s*h plus attention scores
    # n_heads * s^2 (stored per head).
    block_working = 8 * s * h + n_heads * s * s
    for index in range(n_blocks):
        layers.append(
            LayerSpec(
                name=f"block{index}",
                kind=LayerKind.TRANSFORMER_BLOCK,
                param_count=block_params,
                fwd_flops_per_sample=block_fwd_flops,
                activation_elems_per_sample=s * h,
                working_elems_per_sample=block_working,
                signature=(LayerKind.TRANSFORMER_BLOCK, h, n_heads),
            )
        )

    layers.append(
        LayerSpec(
            name="final_norm",
            kind=LayerKind.FINAL_NORM,
            param_count=2 * h,
            fwd_flops_per_sample=5.0 * s * h,
            activation_elems_per_sample=s * h,
            working_elems_per_sample=2 * s * h,
            signature=(LayerKind.FINAL_NORM, h),
        )
    )
    layers.append(
        LayerSpec(
            name="lm_head",
            kind=LayerKind.LM_HEAD,
            param_count=v * h,
            fwd_flops_per_sample=2.0 * s * h * v,
            activation_elems_per_sample=s * v,
            working_elems_per_sample=s * v,
            signature=(LayerKind.LM_HEAD, h, v),
        )
    )

    return ModelSpec(
        name=name,
        layers=tuple(layers),
        hidden_dim=h,
        n_heads=n_heads,
        seq_len=s,
        vocab_size=v,
        default_microbatch_size=default_microbatch_size,
    )
