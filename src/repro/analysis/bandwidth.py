"""Bandwidth-CDF extraction (Figures 2, 7, 11, 16).

The paper characterises communication health with byte-weighted CDFs of
per-transfer bandwidth: a system whose transfers contend at a CPU root
complex sees most bytes move at half (or less) of the link's maximum.  This
module turns simulator traces into the same curves and summary statistics.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.sim.trace import Trace

__all__ = ["BandwidthCDF", "bandwidth_cdf", "fraction_of_bytes_above", "fraction_of_bytes_below"]

GB = 1e9


@dataclasses.dataclass(frozen=True)
class BandwidthCDF:
    """A byte-weighted bandwidth CDF sampled on a fixed grid.

    Attributes:
        grid_gbps: Bandwidth grid in GB/s.
        cdf: Fraction of transferred bytes at bandwidth <= grid point.
        label: Curve label for tables/plots.
    """

    grid_gbps: tuple[float, ...]
    cdf: tuple[float, ...]
    label: str = ""

    def value_at(self, gbps: float) -> float:
        """CDF value at ``gbps`` (step interpolation)."""
        grid = np.asarray(self.grid_gbps)
        index = int(np.searchsorted(grid, gbps, side="right")) - 1
        if index < 0:
            return 0.0
        return self.cdf[min(index, len(self.cdf) - 1)]

    def rows(self) -> list[tuple[float, float]]:
        """(bandwidth GB/s, cumulative fraction) pairs for printing."""
        return list(zip(self.grid_gbps, self.cdf))


def bandwidth_cdf(
    trace: Trace,
    *,
    label: str = "",
    grid_gbps: Sequence[float] | None = None,
    kinds: Sequence[str] | None = None,
) -> BandwidthCDF:
    """Build the byte-weighted bandwidth CDF of a trace.

    Args:
        trace: Simulated step trace.
        label: Curve label.
        grid_gbps: Bandwidth grid in GB/s (default 0..14 in 0.5 steps, the
            paper's axis range).
        kinds: Restrict to these transfer kinds (e.g. only ``"allgather"``).
    """
    if grid_gbps is None:
        grid_gbps = np.arange(29) * 0.5
    grid = np.asarray(grid_gbps, dtype=float)
    cdf = trace.bandwidth_cdf(grid * GB, kinds=kinds)
    return BandwidthCDF(
        grid_gbps=tuple(grid.tolist()), cdf=tuple(float(v) for v in cdf), label=label
    )


def fraction_of_bytes_below(
    trace: Trace, gbps: float, *, kinds: Sequence[str] | None = None
) -> float:
    """Fraction of transferred bytes moving at bandwidth < ``gbps`` GB/s."""
    bandwidths, weights = trace.bandwidth_samples(kinds=kinds)
    if len(bandwidths) == 0:
        return 0.0
    mask = bandwidths < gbps * GB
    return float(weights[mask].sum() / weights.sum())


def fraction_of_bytes_above(
    trace: Trace, gbps: float, *, kinds: Sequence[str] | None = None
) -> float:
    """Fraction of transferred bytes moving at bandwidth > ``gbps`` GB/s."""
    bandwidths, weights = trace.bandwidth_samples(kinds=kinds)
    if len(bandwidths) == 0:
        return 0.0
    mask = bandwidths > gbps * GB
    return float(weights[mask].sum() / weights.sum())
