"""Analytic communication-traffic model (Eqs. 1-2, Figure 6).

Computes the per-step communication volume of Mobius and DeepSpeed from
model sizes alone, mirroring §3.1's derivation:

* Mobius moves two FP16 copies of the parameters (forward and backward
  swap-in), twice the stashed activations, and one FP16 copy of gradients —
  about ``1.5x`` the FP32 model bytes, independent of GPU count;
* DeepSpeed moves ``2N`` FP16 parameter copies (per-GPU layer gathers in
  both traversals), twice the activations, and ``N`` FP16 gradient copies —
  about ``1.5N x`` the FP32 model bytes.

The measured counterparts come from simulator traces
(:meth:`repro.sim.trace.Trace.total_transfer_bytes`); Figure 6 compares both.
"""

from __future__ import annotations

import dataclasses

from repro.models.spec import FP16_BYTES, FP32_BYTES, ModelSpec

__all__ = ["TrafficEstimate", "mobius_traffic", "deepspeed_traffic", "model_size_bytes"]


@dataclasses.dataclass(frozen=True)
class TrafficEstimate:
    """Per-step communication volume decomposition, in bytes."""

    parameters: float
    activations: float
    gradients: float

    @property
    def total(self) -> float:
        return self.parameters + self.activations + self.gradients

    def relative_to(self, model_bytes: float) -> float:
        """Traffic as a multiple of the model size (Figure 6's y-axis)."""
        return self.total / model_bytes


def model_size_bytes(model: ModelSpec) -> int:
    """The "size of model parameters" reference line of Figure 6 (FP32)."""
    return model.param_bytes(FP32_BYTES)


def _activation_bytes_per_step(model: ModelSpec, microbatch_size: int, n_microbatches: int) -> float:
    """Stashed boundary activations for one step (small under recompute)."""
    per_microbatch = sum(
        layer.activation_bytes(microbatch_size) for layer in model.layers[:-1]
    )
    return per_microbatch * n_microbatches


def mobius_traffic(
    model: ModelSpec,
    microbatch_size: int,
    n_microbatches: int,
) -> TrafficEstimate:
    """Eq. 1: Mobius's per-step traffic (GPU-count independent)."""
    fp16 = model.param_bytes(FP16_BYTES)
    return TrafficEstimate(
        parameters=2.0 * fp16,
        activations=2.0 * _activation_bytes_per_step(model, microbatch_size, n_microbatches),
        gradients=1.0 * fp16,
    )


def deepspeed_traffic(
    model: ModelSpec,
    microbatch_size: int,
    n_gpus: int,
    *,
    overhead: float = 1.22,
) -> TrafficEstimate:
    """Eq. 2: DeepSpeed's per-step traffic (linear in GPU count).

    Args:
        overhead: Runtime gather overhead; the paper measures 7.3x model
            size against the analytic 6x for N=4.
    """
    fp16 = model.param_bytes(FP16_BYTES)
    return TrafficEstimate(
        parameters=2.0 * n_gpus * fp16 * overhead,
        activations=2.0 * _activation_bytes_per_step(model, microbatch_size, 1) * n_gpus,
        gradients=1.0 * n_gpus * fp16,
    )
