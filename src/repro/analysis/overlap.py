"""Non-overlapped communication analysis (Figure 8).

A transfer is *overlapped* when its GPU is simultaneously computing; the
remainder is stall time the pipeline failed to hide.  Figure 8 reports the
proportion of per-step time spent in non-overlapped communication, averaged
over GPUs; Mobius's prefetching reduces it substantially relative to
DeepSpeed's gather-compute-gather serialisation.
"""

from __future__ import annotations

import dataclasses

from repro.sim.trace import Trace

__all__ = ["OverlapStats", "overlap_stats"]


@dataclasses.dataclass(frozen=True)
class OverlapStats:
    """Overlap summary of one simulated step.

    Attributes:
        step_seconds: Trace makespan.
        non_overlapped_fraction: Mean over GPUs of non-overlapped
            communication seconds / step seconds (Figure 8's bars).
        comm_fraction: Mean over GPUs of total communication-busy seconds /
            step seconds (the §2.3 "70% of training time" statistic).
        compute_fraction: Mean over GPUs of compute-busy seconds / step.
    """

    step_seconds: float
    non_overlapped_fraction: float
    comm_fraction: float
    compute_fraction: float


def overlap_stats(trace: Trace) -> OverlapStats:
    """Compute Figure 8 style overlap statistics for ``trace``."""
    step = trace.makespan
    if step <= 0:
        return OverlapStats(0.0, 0.0, 0.0, 0.0)
    from repro.sim.trace import total_length

    comm = 0.0
    compute = 0.0
    for gpu in range(trace.n_gpus):
        comm += total_length(trace.gpu_transfer_intervals(gpu))
        compute += total_length(trace.gpu_compute_intervals(gpu))
    n = trace.n_gpus
    return OverlapStats(
        step_seconds=step,
        non_overlapped_fraction=trace.non_overlapped_comm_fraction(),
        comm_fraction=comm / (n * step),
        compute_fraction=compute / (n * step),
    )
