"""Per-step training price analysis (Figure 15b, §4.8).

Combines per-step times with server rental rates: the paper's punchline is
that Mobius on a commodity 4x3090-Ti server is ~42% slower per step than
DeepSpeed on an EC2 P3 data-center server but ~43% cheaper per step.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.pricing import ServerRental, per_step_price

__all__ = ["PricePoint", "price_comparison"]


@dataclasses.dataclass(frozen=True)
class PricePoint:
    """One (system, server) cell of Figure 15."""

    system: str
    server: ServerRental
    step_seconds: float

    @property
    def step_price_usd(self) -> float:
        return per_step_price(self.server, self.step_seconds)


def price_comparison(points: list[PricePoint]) -> list[dict[str, float | str]]:
    """Tabulate Figure 15: per-step time and price for each configuration."""
    return [
        {
            "system": p.system,
            "server": p.server.name,
            "step_seconds": p.step_seconds,
            "step_price_usd": p.step_price_usd,
        }
        for p in points
    ]
