"""Trace and model analyses: traffic, bandwidth CDFs, overlap, price."""

from repro.analysis.bandwidth import (
    BandwidthCDF,
    bandwidth_cdf,
    fraction_of_bytes_above,
    fraction_of_bytes_below,
)
from repro.analysis.overlap import OverlapStats, overlap_stats
from repro.analysis.price import PricePoint, price_comparison
from repro.analysis.timeline import ascii_gantt, to_chrome_trace
from repro.analysis.traffic import (
    TrafficEstimate,
    deepspeed_traffic,
    mobius_traffic,
    model_size_bytes,
)

__all__ = [
    "BandwidthCDF",
    "ascii_gantt",
    "to_chrome_trace",
    "OverlapStats",
    "PricePoint",
    "TrafficEstimate",
    "bandwidth_cdf",
    "deepspeed_traffic",
    "fraction_of_bytes_above",
    "fraction_of_bytes_below",
    "mobius_traffic",
    "model_size_bytes",
    "overlap_stats",
    "price_comparison",
]
