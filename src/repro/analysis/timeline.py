"""Trace timelines: ASCII Gantt charts and Chrome-trace export.

Figure 4 of the paper explains Mobius with a pipeline timeline (F/B compute
boxes and C stage-transfer boxes per GPU).  This module renders the same
view from a simulated :class:`~repro.sim.trace.Trace`:

* :func:`ascii_gantt` — a terminal Gantt chart, one row per GPU for compute
  and one for communication, so schedules can be eyeballed in CI logs;
* :func:`to_chrome_trace` — Chrome ``chrome://tracing`` / Perfetto JSON, for
  interactive inspection of larger traces.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.sim.trace import Trace

__all__ = ["ascii_gantt", "to_chrome_trace"]


def _bar(
    spans: Sequence[tuple[float, float, str]],
    makespan: float,
    width: int,
) -> str:
    """Render spans (start, end, glyph) onto a fixed-width character bar."""
    cells = [" "] * width
    for start, end, glyph in spans:
        lo = int(start / makespan * width)
        hi = max(lo + 1, int(end / makespan * width))
        for index in range(lo, min(hi, width)):
            cells[index] = glyph if cells[index] == " " else "#"
    return "".join(cells)


def ascii_gantt(trace: Trace, *, width: int = 100, label_kinds: bool = True) -> str:
    """Render a trace as an ASCII Gantt chart.

    One pair of rows per GPU: ``cmp`` (compute, drawn with ``=``) and
    ``com`` (communication; uploads ``^``, downloads/other ``v``,
    activations ``a``).  Overlapping communication renders as ``#``.

    Args:
        trace: A completed simulation trace.
        width: Chart width in characters.
        label_kinds: Include the glyph legend.
    """
    makespan = trace.makespan
    if makespan <= 0:
        return "(empty trace)"
    glyph_of_kind = {
        "param-upload": "v",
        "act-upload": "v",
        "allgather": "v",
        "shard-restore": "v",
        "activation": "a",
        "act-offload": "^",
        "grad-offload": "^",
        "reduce-scatter": "^",
    }
    lines = [f"step = {makespan:.3f}s, 1 column ~ {makespan / width * 1e3:.1f} ms"]
    for gpu in range(trace.n_gpus):
        compute = [
            (s.start, s.end, "=") for s in trace.compute if s.gpu == gpu
        ]
        comm = [
            (s.start, s.end, glyph_of_kind.get(s.kind, "v"))
            for s in trace.transfers
            if s.gpu == gpu
        ]
        lines.append(f"gpu{gpu} cmp |{_bar(compute, makespan, width)}|")
        lines.append(f"gpu{gpu} com |{_bar(comm, makespan, width)}|")
    if label_kinds:
        lines.append("legend: = compute, v download, ^ offload, a activation, # overlap")
    return "\n".join(lines)


def to_chrome_trace(trace: Trace) -> str:
    """Serialise a trace to Chrome-tracing JSON (open in Perfetto).

    Compute spans go on ``tid 0`` of each GPU's process; transfers on
    ``tid 1``.  Times are exported in microseconds as the format requires.
    """
    events = []
    for span in trace.compute:
        events.append(
            {
                "name": span.label or "compute",
                "cat": "compute",
                "ph": "X",
                "pid": span.gpu,
                "tid": 0,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
            }
        )
    for span in trace.transfers:
        events.append(
            {
                "name": span.label or span.kind or "transfer",
                "cat": span.kind or "transfer",
                "ph": "X",
                "pid": span.gpu,
                "tid": 1,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": {
                    "bytes": span.nbytes,
                    "bandwidth_GBps": span.bandwidth / 1e9,
                },
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": gpu,
            "args": {"name": f"GPU {gpu}"},
        }
        for gpu in range(trace.n_gpus)
    ]
    return json.dumps({"traceEvents": metadata + events}, indent=None)
