"""Synthetic datacenter-scale simulator workloads.

The Mobius planner cannot emit a ~1M-event scenario directly: pipeline
stages are bounded by model depth, so even a 64-GPU corpus plan executes a
few thousand events.  The scale benchmarks (``repro simbench``'s ``large``
section, DESIGN.md §12) instead drive the simulator with a *synthetic*
offload-style workload shaped like Mobius execution at fleet scale: every
GPU runs ``rounds`` chained rounds of

    DRAM upload (``param-upload``) -> compute -> DRAM offload (``grad-offload``)

so at any instant each root complex serves its group's concurrent up/down
flows (cross-heterogeneity keeps completions from collapsing into a single
timestamp).  On :func:`~repro.hardware.topology.large_cluster` at 1024
GPUs this is ~10^6 heap events and ~2000 concurrent flows — past
:attr:`~repro.sim.resources.FlowNetwork.vector_threshold`, so the columnar
flow scans carry the load.

Everything is event-sequence deterministic: per-task variation comes from
integer-hash arithmetic (no ``random``, no clocks — this module is under
the strict-clock/hot-path lint), so the trace digest is bit-identical
across runs, machines and dispatch modes.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.topology import Topology
from repro.sim.resources import FlowNetworkStats
from repro.sim.tasks import ComputeTask, Task, TaskGraphRunner, TransferTask
from repro.sim.trace import Trace

__all__ = [
    "build_cluster_workload",
    "run_cluster_workload",
    "ClusterWorkloadResult",
]

_GB = 1e9

# Knuth-style multiplicative hashes; the exact constants are arbitrary but
# frozen — they are part of the workload's deterministic identity.
_HASH_A = 2654435761
_HASH_B = 40503
_HASH_C = 69427


def _vary(gpu: int, rnd: int, salt: int, span: int) -> int:
    """Deterministic pseudo-variation in ``[0, span)`` from integers only."""
    return ((gpu * _HASH_A) ^ (rnd * _HASH_B) ^ (salt * _HASH_C)) % span


def build_cluster_workload(
    topology: Topology,
    *,
    rounds: int,
    base_bytes: int = 50_000_000,
    base_compute_seconds: float = 0.02,
) -> list[Task]:
    """Task graph for ``rounds`` upload/compute/offload rounds per GPU.

    Per (gpu, round) the byte counts, compute durations and a sprinkling
    of high-priority uploads (the §3.3 prefetch-priority path) vary by
    integer hash, so concurrent flows have distinct completion instants
    and the allocator sees realistic arrival/departure churn.

    Returns ``3 * n_gpus * rounds`` tasks; executing them dispatches
    roughly ``4 * n_gpus * rounds`` simulator events (two per compute,
    one per transfer completion, minus coalesced same-instant finishes).
    """
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    tasks: list[Task] = []
    for gpu in range(topology.n_gpus):
        upload_path = topology.path_from_dram(gpu)
        offload_path = topology.path_to_dram(gpu)
        prev: Task | None = None
        for rnd in range(rounds):
            upload = TransferTask(
                path=upload_path,
                nbytes=base_bytes * (1 + _vary(gpu, rnd, 1, 7)),
                gpu=gpu,
                kind="param-upload",
                priority=1 if _vary(gpu, rnd, 2, 5) == 0 else 0,
            ).after(prev)
            compute = ComputeTask(
                gpu=gpu,
                seconds=base_compute_seconds * (1 + _vary(gpu, rnd, 3, 4)),
            ).after(upload)
            offload = TransferTask(
                path=offload_path,
                nbytes=base_bytes * (1 + _vary(gpu, rnd, 4, 7)),
                gpu=gpu,
                kind="grad-offload",
            ).after(compute)
            tasks.extend((upload, compute, offload))
            prev = offload
    return tasks


@dataclasses.dataclass(frozen=True)
class ClusterWorkloadResult:
    """Outcome of one synthetic cluster run."""

    trace: Trace
    #: Bit-exact columnar trace identity (``Trace.columnar_digest``).
    digest: str
    events_processed: int
    n_tasks: int
    stats: FlowNetworkStats


def run_cluster_workload(
    topology: Topology,
    *,
    rounds: int,
    base_bytes: int = 50_000_000,
    base_compute_seconds: float = 0.02,
    dispatch: str = "batched",
    spill_dir=None,
    spill_chunk: int = 1 << 18,
) -> ClusterWorkloadResult:
    """Build and execute the cluster workload; returns trace + counters.

    Args:
        dispatch: ``"batched"`` (production) or ``"single"`` (the oracle
            loop) — the equivalence tests run both and compare digests.
        spill_dir: If given, record into a spill-to-disk trace (sealed
            ``.npz`` segments of ``spill_chunk`` rows) instead of holding
            every span column in memory.
    """
    tasks = build_cluster_workload(
        topology,
        rounds=rounds,
        base_bytes=base_bytes,
        base_compute_seconds=base_compute_seconds,
    )
    runner = TaskGraphRunner(topology, dispatch=dispatch)
    trace = None
    if spill_dir is not None:
        trace = Trace(topology.n_gpus, spill_dir=spill_dir, spill_chunk=spill_chunk)
    trace = runner.execute(tasks, trace=trace)
    return ClusterWorkloadResult(
        trace=trace,
        digest=trace.columnar_digest(),
        events_processed=runner.sim.events_processed,
        n_tasks=len(tasks),
        stats=runner.network.stats,
    )
