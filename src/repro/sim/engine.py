"""Deterministic discrete-event simulation core.

The simulator is a classic event-heap design: callbacks are scheduled at
absolute times and executed in time order (ties broken by insertion order so
runs are fully deterministic).  Higher-level components — the flow network
(:mod:`repro.sim.resources`) and the task-graph runner
(:mod:`repro.sim.tasks`) — build on these primitives.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """Handle to a scheduled event; allows cancellation.

    Cancellation marks the event dead rather than removing it from the heap
    (lazy deletion), which keeps scheduling O(log n).
    """

    __slots__ = ("time", "_callback", "_cancelled")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Simulator:
    """Event loop with a virtual clock.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
        >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.0, 2.0]
    """

    __slots__ = ("now", "events_processed", "_heap", "_counter")

    def __init__(self) -> None:
        self.now = 0.0
        #: Callbacks dispatched so far (cancelled events excluded); a
        #: deterministic work counter reported by ``repro simbench``.
        self.events_processed = 0
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._counter = itertools.count()

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < now {self.now}")
        handle = EventHandle(time, callback)
        heapq.heappush(self._heap, (time, next(self._counter), handle))
        return handle

    def run(self, until: float | None = None) -> None:
        """Process events in time order.

        Args:
            until: If given, stop once the next event would fire after this
                time (the clock is left at ``until``).  Otherwise run until
                the event heap drains.

        Raises:
            ValueError: If ``until`` lies before the current clock — running
                "until" a past instant would silently rewind ``now`` and
                re-admit events that already fired as schedulable times.
        """
        if until is not None and until < self.now:
            raise ValueError(
                f"cannot run backwards: until={until} < now {self.now}"
            )
        # Hot loop: locals bound outside, heap entries touched once, and the
        # dominant run-to-drain case skips the per-event deadline check.
        heap = self._heap
        heappop = heapq.heappop
        dispatched = 0
        try:
            if until is None:
                while heap:
                    entry = heappop(heap)
                    handle = entry[2]
                    if handle._cancelled:
                        continue
                    self.now = entry[0]
                    dispatched += 1
                    handle._callback()
                return
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > until:
                    self.now = until
                    return
                heappop(heap)
                handle = entry[2]
                if handle._cancelled:
                    continue
                self.now = time
                dispatched += 1
                handle._callback()
            if until > self.now:
                self.now = until
        finally:
            self.events_processed += dispatched

    def peek(self) -> float | None:
        """Time of the next live event, or ``None`` if the heap is empty."""
        while self._heap:
            time, _, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None
