"""Deterministic discrete-event simulation core.

The simulator is a classic event-heap design: callbacks are scheduled at
absolute times and executed in time order (ties broken by insertion order so
runs are fully deterministic).  Higher-level components — the flow network
(:mod:`repro.sim.resources`) and the task-graph runner
(:mod:`repro.sim.tasks`) — build on these primitives.

Two dispatch loops share the heap (DESIGN.md §12):

* :meth:`Simulator.run` — the classic one-event-at-a-time loop, kept as the
  reference oracle for equivalence tests;
* :meth:`Simulator.run_batched` — the production hot path for large
  scenarios: equal-timestamp *cohorts* are popped from the heap in one run
  and dispatched back to back.  Cancellation is re-checked at dispatch time
  and same-timestamp events scheduled by cohort members join the tail of
  the cohort, so the firing order, the clock trajectory and the
  ``events_processed`` count are exactly those of :meth:`run` (asserted by
  the seeded fuzz harness in ``tests/sim/test_dispatch_equivalence.py``).

Events that never need cancellation can skip the :class:`EventHandle`
allocation entirely via :meth:`Simulator.schedule_call`; both loops accept
bare callables and handles on the same heap and the shared insertion
counter keeps tie-breaking identical either way.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """Handle to a scheduled event; allows cancellation.

    Cancellation marks the event dead rather than removing it from the heap
    (lazy deletion), which keeps scheduling O(log n).
    """

    __slots__ = ("time", "_callback", "_cancelled")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Simulator:
    """Event loop with a virtual clock.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
        >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.0, 2.0]
    """

    __slots__ = ("now", "events_processed", "_heap", "_counter")

    def __init__(self) -> None:
        self.now = 0.0
        #: Callbacks dispatched so far (cancelled events excluded); a
        #: deterministic work counter reported by ``repro simbench``.
        self.events_processed = 0
        self._heap: list[tuple[float, int, object]] = []
        self._counter = itertools.count()

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < now {self.now}")
        handle = EventHandle(time, callback)
        heapq.heappush(self._heap, (time, next(self._counter), handle))
        return handle

    def schedule_call(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule a non-cancellable ``callback`` ``delay`` seconds from now.

        The fast path for fire-and-forget events (compute completions,
        barriers, zero-byte transfers): no :class:`EventHandle` is
        allocated.  The shared insertion counter makes the tie-break order
        identical to an equivalent :meth:`schedule` call.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        time = self.now + delay
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def schedule_call_at(self, time: float, callback: Callable[[], None]) -> None:
        """Absolute-time variant of :meth:`schedule_call`."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < now {self.now}")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def run(self, until: float | None = None) -> None:
        """Process events one at a time, in time order (the oracle loop).

        Args:
            until: If given, stop once the next event would fire after this
                time (the clock is left at ``until``).  Otherwise run until
                the event heap drains.

        Raises:
            ValueError: If ``until`` lies before the current clock — running
                "until" a past instant would silently rewind ``now`` and
                re-admit events that already fired as schedulable times.
        """
        if until is not None and until < self.now:
            raise ValueError(
                f"cannot run backwards: until={until} < now {self.now}"
            )
        # Hot loop: locals bound outside, heap entries touched once, and the
        # dominant run-to-drain case skips the per-event deadline check.
        heap = self._heap
        heappop = heapq.heappop
        handle_type = EventHandle
        dispatched = 0
        try:
            if until is None:
                while heap:
                    entry = heappop(heap)
                    handle = entry[2]
                    if handle.__class__ is handle_type:
                        if handle._cancelled:
                            continue
                        handle = handle._callback
                    self.now = entry[0]
                    dispatched += 1
                    handle()
                return
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > until:
                    self.now = until
                    return
                heappop(heap)
                handle = entry[2]
                if handle.__class__ is handle_type:
                    if handle._cancelled:
                        continue
                    handle = handle._callback
                self.now = time
                dispatched += 1
                handle()
            if until > self.now:
                self.now = until
        finally:
            self.events_processed += dispatched

    def run_batched(self, until: float | None = None) -> None:
        """Process events in equal-timestamp cohorts (the production loop).

        Semantics are identical to :meth:`run` — same firing order, same
        clock trajectory, same ``events_processed`` — but the heap is
        drained one *cohort* (maximal run of entries sharing a timestamp)
        at a time:

        * the ``until`` deadline is checked once per cohort, not per event;
        * cancellation is re-checked at dispatch time, so a cohort member
          cancelling a later member still suppresses it, exactly as the
          one-at-a-time loop would;
        * events scheduled *at the cohort's timestamp* by cohort callbacks
          carry larger insertion counters than everything already popped,
          so re-scanning the heap after the popped run preserves the
          oracle's order.
        """
        if until is not None and until < self.now:
            raise ValueError(
                f"cannot run backwards: until={until} < now {self.now}"
            )
        heap = self._heap
        heappop = heapq.heappop
        handle_type = EventHandle
        dispatched = 0
        try:
            while heap:
                time = heap[0][0]
                if until is not None and time > until:
                    self.now = until
                    return
                # Drain every entry at `time`, re-scanning for same-time
                # events the cohort's callbacks scheduled.
                while heap and heap[0][0] == time:
                    cohort = [heappop(heap)[2]]
                    while heap and heap[0][0] == time:
                        cohort.append(heappop(heap)[2])
                    for handle in cohort:
                        if handle.__class__ is handle_type:
                            if handle._cancelled:
                                continue
                            handle = handle._callback
                        self.now = time
                        dispatched += 1
                        handle()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self.events_processed += dispatched

    def peek(self) -> float | None:
        """Time of the next live event, or ``None`` if the heap is empty."""
        while self._heap:
            time, _, handle = self._heap[0]
            if isinstance(handle, EventHandle) and handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None
