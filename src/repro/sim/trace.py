"""Execution traces and their post-processing.

Every simulated training step produces a :class:`Trace`: the list of compute
spans (per GPU) and transfer spans (with byte counts and achieved bandwidth).
The analyses of §4.2 are all derived from traces:

* **bandwidth CDFs** (Figures 2, 7, 11, 16) — per-transfer average bandwidth,
  weighted by bytes transferred;
* **communication traffic** (Figure 6) — total bytes moved per step;
* **non-overlapped communication time** (Figure 8) — per-GPU communication
  intervals minus that GPU's compute intervals.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "ComputeSpan",
    "TransferSpan",
    "Trace",
    "merge_intervals",
    "subtract_intervals",
    "total_length",
]

Interval = tuple[float, float]


@dataclasses.dataclass(frozen=True)
class ComputeSpan:
    """One kernel execution on one GPU."""

    gpu: int
    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class TransferSpan:
    """One completed transfer.

    Attributes:
        gpu: The GPU this transfer belongs to (for overlap accounting); for
            a GPU-to-GPU bounce this is the *destination* GPU, whose compute
            waits on it.
        kind: Free-form category, e.g. ``"stage-upload"``, ``"activation"``,
            ``"allgather"``, ``"grad-offload"``.
    """

    gpu: int
    start: float
    end: float
    nbytes: float
    kind: str = ""
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        """Average achieved bandwidth in bytes/s (0 for instantaneous)."""
        if self.duration <= 0:
            return 0.0
        return self.nbytes / self.duration


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Union a set of (start, end) intervals into disjoint sorted intervals."""
    merged: list[Interval] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def subtract_intervals(base: Sequence[Interval], holes: Sequence[Interval]) -> list[Interval]:
    """Set difference ``base \\ holes``; both inputs may overlap internally."""
    base = merge_intervals(base)
    holes = merge_intervals(holes)
    result: list[Interval] = []
    hole_index = 0
    for start, end in base:
        cursor = start
        while hole_index < len(holes) and holes[hole_index][1] <= cursor:
            hole_index += 1
        index = hole_index
        while index < len(holes) and holes[index][0] < end:
            hole_start, hole_end = holes[index]
            if hole_start > cursor:
                result.append((cursor, hole_start))
            cursor = max(cursor, hole_end)
            if cursor >= end:
                break
            index += 1
        if cursor < end:
            result.append((cursor, end))
    return result


def total_length(intervals: Iterable[Interval]) -> float:
    """Sum of interval lengths after merging overlaps."""
    return sum(end - start for start, end in merge_intervals(intervals))


class Trace:
    """Recorded activity of one simulated training step."""

    def __init__(self, n_gpus: int) -> None:
        if n_gpus <= 0:
            raise ValueError(f"n_gpus must be positive, got {n_gpus}")
        self.n_gpus = n_gpus
        self.compute: list[ComputeSpan] = []
        self.transfers: list[TransferSpan] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def add_compute(self, gpu: int, start: float, end: float, label: str = "") -> None:
        self.compute.append(ComputeSpan(gpu, start, end, label))

    def add_transfer(
        self, gpu: int, start: float, end: float, nbytes: float, kind: str = "", label: str = ""
    ) -> None:
        self.transfers.append(TransferSpan(gpu, start, end, nbytes, kind, label))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def makespan(self) -> float:
        """End-to-end step time: the last compute or transfer completion."""
        ends = [span.end for span in self.compute] + [span.end for span in self.transfers]
        return max(ends, default=0.0)

    def total_transfer_bytes(self, kinds: Iterable[str] | None = None) -> float:
        """Total bytes moved, optionally restricted to transfer ``kinds``."""
        wanted = set(kinds) if kinds is not None else None
        return sum(
            span.nbytes
            for span in self.transfers
            if wanted is None or span.kind in wanted
        )

    def bandwidth_samples(self, min_bytes: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Per-transfer (bandwidth, weight) samples for CDF plots.

        Returns:
            ``(bandwidths, weights)`` arrays; weights are bytes transferred,
            matching the paper's "fraction of data transferred at bandwidth
            <= x" CDFs.
        """
        spans = [s for s in self.transfers if s.nbytes > min_bytes and s.duration > 0]
        bandwidths = np.array([s.bandwidth for s in spans], dtype=float)
        weights = np.array([s.nbytes for s in spans], dtype=float)
        return bandwidths, weights

    def bandwidth_cdf(self, grid: Sequence[float], min_bytes: float = 0.0) -> np.ndarray:
        """Byte-weighted CDF of transfer bandwidth evaluated on ``grid``."""
        bandwidths, weights = self.bandwidth_samples(min_bytes)
        if len(bandwidths) == 0:
            return np.zeros(len(grid))
        order = np.argsort(bandwidths)
        sorted_bw = bandwidths[order]
        cum = np.cumsum(weights[order])
        cum = cum / cum[-1]
        indices = np.searchsorted(sorted_bw, np.asarray(grid, dtype=float), side="right")
        return np.where(indices > 0, cum[np.maximum(indices - 1, 0)], 0.0)

    def median_bandwidth(self) -> float:
        """Byte-weighted median transfer bandwidth."""
        bandwidths, weights = self.bandwidth_samples()
        if len(bandwidths) == 0:
            return 0.0
        order = np.argsort(bandwidths)
        cum = np.cumsum(weights[order])
        idx = int(np.searchsorted(cum, cum[-1] / 2.0))
        return float(bandwidths[order][min(idx, len(order) - 1)])

    # ------------------------------------------------------------------
    # Overlap analysis (Figure 8)
    # ------------------------------------------------------------------

    def gpu_compute_intervals(self, gpu: int) -> list[Interval]:
        return merge_intervals((s.start, s.end) for s in self.compute if s.gpu == gpu)

    def gpu_transfer_intervals(self, gpu: int) -> list[Interval]:
        return merge_intervals((s.start, s.end) for s in self.transfers if s.gpu == gpu)

    def non_overlapped_comm_seconds(self, gpu: int) -> float:
        """Seconds GPU ``gpu`` spends communicating while computing nothing."""
        comm = self.gpu_transfer_intervals(gpu)
        busy = self.gpu_compute_intervals(gpu)
        return total_length(subtract_intervals(comm, busy))

    def non_overlapped_comm_fraction(self) -> float:
        """Mean over GPUs of non-overlapped communication time / step time."""
        step = self.makespan
        if step <= 0:
            return 0.0
        fractions = [
            self.non_overlapped_comm_seconds(gpu) / step for gpu in range(self.n_gpus)
        ]
        return float(np.mean(fractions))

    def compute_seconds(self, gpu: int | None = None) -> float:
        """Total busy compute time, for one GPU or summed over all."""
        if gpu is None:
            return sum(total_length(self.gpu_compute_intervals(g)) for g in range(self.n_gpus))
        return total_length(self.gpu_compute_intervals(gpu))
