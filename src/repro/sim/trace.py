"""Execution traces and their post-processing.

Every simulated training step produces a :class:`Trace`: the compute spans
(per GPU) and transfer spans (with byte counts and achieved bandwidth).
The analyses of §4.2 are all derived from traces:

* **bandwidth CDFs** (Figures 2, 7, 11, 16) — per-transfer average bandwidth,
  weighted by bytes transferred;
* **communication traffic** (Figure 6) — total bytes moved per step;
* **non-overlapped communication time** (Figure 8) — per-GPU communication
  intervals minus that GPU's compute intervals.

Storage is columnar (DESIGN.md §12): spans land directly in append-only,
capacity-doubled numpy column buffers — transfer kinds interned as int
codes — so the ``_compute_columns``/``_transfer_columns`` views the
aggregate methods consume are zero-copy slices instead of O(n) rebuilds,
and a trace of a ~1M-event datacenter scenario does not hold a million
Python span objects.  ``trace.compute`` / ``trace.transfers`` remain
sequence views that materialize :class:`ComputeSpan`/:class:`TransferSpan`
records on demand, preserving the historical list API (``append``,
indexing, iteration, ``==``) and — critically — the
``__mobius_fingerprint__`` span-order contract byte for byte.

Long traces can opt into *spilling*: constructed with ``spill_dir=``, a
trace seals full chunks of columns to ``.npz`` segments and drops them
from memory; views transparently reassemble spilled and active rows.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import pathlib
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "ComputeSpan",
    "TransferSpan",
    "Trace",
    "merge_intervals",
    "subtract_intervals",
    "total_length",
]

Interval = tuple[float, float]


@dataclasses.dataclass(frozen=True)
class ComputeSpan:
    """One kernel execution on one GPU."""

    gpu: int
    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class TransferSpan:
    """One completed transfer.

    Attributes:
        gpu: The GPU this transfer belongs to (for overlap accounting); for
            a GPU-to-GPU bounce this is the *destination* GPU, whose compute
            waits on it.
        kind: Free-form category, e.g. ``"stage-upload"``, ``"activation"``,
            ``"allgather"``, ``"grad-offload"``.
    """

    gpu: int
    start: float
    end: float
    nbytes: float
    kind: str = ""
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        """Average achieved bandwidth in bytes/s (0 for instantaneous)."""
        if self.duration <= 0:
            return 0.0
        return self.nbytes / self.duration


def _merge_interval_arrays(
    starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized interval union on parallel start/end arrays.

    Empty intervals (``end <= start``) are dropped; touching intervals
    merge, matching the historical list implementation.
    """
    keep = ends > starts
    starts, ends = starts[keep], ends[keep]
    if starts.size == 0:
        return starts, ends
    order = np.lexsort((ends, starts))
    starts, ends = starts[order], ends[order]
    running_end = np.maximum.accumulate(ends)
    first = np.empty(starts.size, dtype=bool)
    first[0] = True
    np.greater(starts[1:], running_end[:-1], out=first[1:])
    heads = np.flatnonzero(first)
    tails = np.append(heads[1:], starts.size) - 1
    return starts[heads], running_end[tails]


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Union a set of (start, end) intervals into disjoint sorted intervals."""
    pairs = np.array(list(intervals), dtype=float)
    if pairs.size == 0:
        return []
    starts, ends = _merge_interval_arrays(pairs[:, 0], pairs[:, 1])
    return list(zip(starts.tolist(), ends.tolist()))


def subtract_intervals(base: Sequence[Interval], holes: Sequence[Interval]) -> list[Interval]:
    """Set difference ``base \\ holes``; both inputs may overlap internally."""
    base = merge_intervals(base)
    holes = merge_intervals(holes)
    result: list[Interval] = []
    hole_index = 0
    for start, end in base:
        cursor = start
        while hole_index < len(holes) and holes[hole_index][1] <= cursor:
            hole_index += 1
        index = hole_index
        while index < len(holes) and holes[index][0] < end:
            hole_start, hole_end = holes[index]
            if hole_start > cursor:
                result.append((cursor, hole_start))
            cursor = max(cursor, hole_end)
            if cursor >= end:
                break
            index += 1
        if cursor < end:
            result.append((cursor, end))
    return result


def total_length(intervals: Iterable[Interval]) -> float:
    """Sum of interval lengths after merging overlaps."""
    pairs = np.array(list(intervals), dtype=float)
    if pairs.size == 0:
        return 0.0
    starts, ends = _merge_interval_arrays(pairs[:, 0], pairs[:, 1])
    return float(np.sum(ends - starts))


# ----------------------------------------------------------------------
# Columnar span storage
# ----------------------------------------------------------------------

#: Above this many rows, iterating a view does not cache the materialized
#: span objects (a ~1M-row trace would otherwise pin ~100s of MB).
_MATERIALIZE_CACHE_LIMIT = 1 << 17

_INITIAL_CAPACITY = 1024


class _ColumnStore:
    """Append-only columnar buffer for one span family.

    Rows live in capacity-doubled numpy arrays plus a parallel Python list
    of labels.  A monotonically increasing *generation* counter stamps
    every mutation; all derived caches (column views, materialized spans,
    per-kind masks) are keyed on it, so stale reads are impossible even if
    a buffer is swapped for an identically-sized one — the collision the
    old ``(id(list), len(list))`` token allowed.

    With ``spill_dir`` set, every ``spill_chunk`` rows the active buffers
    are sealed to a compressed ``.npz`` segment and dropped from memory;
    :meth:`columns` reassembles segments in order on demand.
    """

    #: (name, dtype) pairs for the numeric columns, in storage order.
    numeric_fields: tuple[tuple[str, object], ...] = ()

    def __init__(
        self,
        spill_dir: pathlib.Path | None = None,
        spill_chunk: int = 1 << 18,
        tag: str = "spans",
    ) -> None:
        if spill_chunk <= 0:
            raise ValueError(f"spill_chunk must be positive, got {spill_chunk}")
        self._capacity = _INITIAL_CAPACITY
        self._arrays = {
            name: np.empty(self._capacity, dtype=dtype)
            for name, dtype in self.numeric_fields
        }
        self._labels: list[str] = []
        self._n = 0  # rows in the active buffers
        self._spilled_rows = 0
        self._segments: list[pathlib.Path] = []
        self._spill_dir = pathlib.Path(spill_dir) if spill_dir is not None else None
        self._spill_chunk = spill_chunk
        self._tag = tag
        self.generation = 0
        self._columns_cache: tuple[int, dict] | None = None
        self._materialized_cache: tuple[int, list] | None = None

    def __len__(self) -> int:
        return self._spilled_rows + self._n

    def append_row(self, values: tuple, label: str) -> None:
        n = self._n
        if n == self._capacity:
            self._capacity *= 2
            for name in self._arrays:
                grown = np.empty(self._capacity, dtype=self._arrays[name].dtype)
                grown[:n] = self._arrays[name]
                self._arrays[name] = grown
        for (name, _), value in zip(self.numeric_fields, values):
            self._arrays[name][n] = value
        self._labels.append(label)
        self._n = n + 1
        self.generation += 1
        if self._spill_dir is not None and self._n >= self._spill_chunk:
            self._seal_segment()

    def _seal_segment(self) -> None:
        """Write the active buffer to disk and reset it."""
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        path = self._spill_dir / f"{self._tag}-{len(self._segments):06d}.npz"
        payload = {name: arr[: self._n] for name, arr in self._arrays.items()}
        payload["labels"] = np.array(self._labels, dtype=str)
        np.savez_compressed(path, **payload)
        self._segments.append(path)
        self._spilled_rows += self._n
        self._n = 0
        self._labels = []
        self.generation += 1

    def columns(self) -> dict:
        """Parallel numpy views over all rows (spilled + active), cached.

        Without spill this is zero-copy (slices of the active buffers);
        with spilled segments the pieces are concatenated once per
        generation.
        """
        cached = self._columns_cache
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        n = self._n
        if not self._segments:
            columns = {name: arr[:n] for name, arr in self._arrays.items()}
            columns["label"] = self._labels
        else:
            loaded = [np.load(path) for path in self._segments]
            columns = {
                name: np.concatenate([seg[name] for seg in loaded] + [arr[:n]])
                for name, arr in self._arrays.items()
            }
            labels: list[str] = []
            for seg in loaded:
                labels.extend(seg["labels"].tolist())
            labels.extend(self._labels)
            columns["label"] = labels
        self._columns_cache = (self.generation, columns)
        return columns

    def digest(self) -> str:
        """SHA-256 over the raw column bytes — a cheap bit-exact identity.

        Unlike ``__mobius_fingerprint__`` (which materializes span objects
        and is the pinned corpus contract), this hashes the columns
        directly, so it scales to ~1M-row traces; used by the large-cell
        bench rows and the dispatch-equivalence tests.
        """
        columns = self.columns()
        sha = hashlib.sha256()
        for name, _ in self.numeric_fields:
            sha.update(name.encode())
            sha.update(np.ascontiguousarray(columns[name]).tobytes())
        for label in columns["label"]:
            sha.update(b"\x1f")
            sha.update(label.encode())
        return sha.hexdigest()

    def _make_span(self, row: tuple):
        raise NotImplementedError

    def _iter_rows(self) -> Iterator[tuple]:
        columns = self.columns()
        lists = [columns[name].tolist() for name, _ in self.numeric_fields]
        lists.append(columns["label"])
        return zip(*lists)

    def materialized(self) -> list:
        """All rows as span objects; cached below the size threshold."""
        cached = self._materialized_cache
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        spans = [self._make_span(row) for row in self._iter_rows()]
        if len(spans) <= _MATERIALIZE_CACHE_LIMIT:
            self._materialized_cache = (self.generation, spans)
        return spans

    def export_state(self) -> dict:
        """Pickle payload: trimmed column copies covering every row."""
        columns = self.columns()
        state = {
            name: np.array(columns[name]) for name, _ in self.numeric_fields
        }
        state["label"] = list(columns["label"])
        return state

    def load_state(self, state: dict) -> None:
        labels = state["label"]
        n = len(labels)
        self._capacity = max(_INITIAL_CAPACITY, n)
        for name, dtype in self.numeric_fields:
            arr = np.empty(self._capacity, dtype=dtype)
            arr[:n] = state[name]
            self._arrays[name] = arr
        self._labels = list(labels)
        self._n = n


class _ComputeStore(_ColumnStore):
    numeric_fields = (("gpu", np.int64), ("start", np.float64), ("end", np.float64))

    def append_span(self, span: ComputeSpan) -> None:
        self.append_row((span.gpu, span.start, span.end), span.label)

    def _make_span(self, row: tuple) -> ComputeSpan:
        gpu, start, end, label = row
        return ComputeSpan(gpu, start, end, label)


class _TransferStore(_ColumnStore):
    # `nbytes_int` preserves the Python numeric type of the recorded byte
    # count across the float64 column round-trip: historical traces carried
    # int byte counts from the task layer, and the fingerprint encoding
    # distinguishes int from float — materialized spans must restore the
    # original type bit for bit (byte counts are well under 2**53).
    numeric_fields = (
        ("gpu", np.int64),
        ("start", np.float64),
        ("end", np.float64),
        ("nbytes", np.float64),
        ("nbytes_int", np.bool_),
        ("kind_code", np.int32),
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Transfer kinds are drawn from a handful of categories; intern
        # them as int codes so kind filters are integer compares, not
        # string membership tests over an object array.
        self._kind_codes: dict[str, int] = {}
        self._kinds: list[str] = []
        self._mask_cache: dict[int, tuple[int, np.ndarray]] = {}

    def code_for(self, kind: str) -> int:
        code = self._kind_codes.get(kind)
        if code is None:
            code = len(self._kinds)
            self._kind_codes[kind] = code
            self._kinds.append(kind)
        return code

    def append_span(self, span: TransferSpan) -> None:
        nbytes = span.nbytes
        self.append_row(
            (
                span.gpu,
                span.start,
                span.end,
                nbytes,
                isinstance(nbytes, int),
                self.code_for(span.kind),
            ),
            span.label,
        )

    def _make_span(self, row: tuple) -> TransferSpan:
        gpu, start, end, nbytes, nbytes_int, code, label = row
        if nbytes_int:
            nbytes = int(nbytes)
        return TransferSpan(gpu, start, end, nbytes, self._kinds[code], label)

    def kind_mask(self, kinds: Iterable[str]) -> np.ndarray:
        """Boolean row mask selecting the given kinds, per-kind cached."""
        selected: np.ndarray | None = None
        for kind in kinds:
            code = self._kind_codes.get(kind)
            if code is None:
                continue  # kind never recorded: selects nothing
            cached = self._mask_cache.get(code)
            if cached is None or cached[0] != self.generation:
                mask = self.columns()["kind_code"] == code
                self._mask_cache[code] = (self.generation, mask)
            else:
                mask = cached[1]
            selected = mask if selected is None else (selected | mask)
        if selected is None:
            return np.zeros(len(self), dtype=bool)
        return selected

    def export_state(self) -> dict:
        state = super().export_state()
        state["kinds"] = list(self._kinds)
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._kinds = list(state["kinds"])
        self._kind_codes = {kind: code for code, kind in enumerate(self._kinds)}


class _SpanView(Sequence):
    """List-like façade over a :class:`_ColumnStore`.

    Supports the operations the historical ``list[Span]`` attributes saw
    in the wild: ``append`` (unvalidated — the sanitizer tests inject
    malformed spans directly), indexing, slicing, iteration, ``len`` and
    equality against other sequences of spans.
    """

    __slots__ = ("_store",)

    # Lists are unhashable; keep that property.
    __hash__ = None  # type: ignore[assignment]

    def __init__(self, store: _ColumnStore) -> None:
        self._store = store

    def append(self, span) -> None:
        self._store.append_span(span)

    def extend(self, spans: Iterable) -> None:
        for span in spans:
            self._store.append_span(span)

    def __len__(self) -> int:
        return len(self._store)

    def __getitem__(self, index):
        spans = self._store.materialized()
        return spans[index]

    def __iter__(self) -> Iterator:
        return iter(self._store.materialized())

    def __eq__(self, other) -> bool:
        if isinstance(other, _SpanView):
            other = other._store.materialized()
        if isinstance(other, (list, tuple)):
            if len(other) != len(self):
                return False
            return self._store.materialized() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return repr(self._store.materialized())


class Trace:
    """Recorded activity of one simulated training step.

    Args:
        n_gpus: Number of GPUs the trace covers.
        spill_dir: If given, seal full column chunks to ``.npz`` segments
            under this directory instead of holding every span in memory
            (opt-in streaming writer for ~1M-event scenarios).
        spill_chunk: Rows per sealed segment.
    """

    def __init__(
        self,
        n_gpus: int,
        *,
        spill_dir: str | pathlib.Path | None = None,
        spill_chunk: int = 1 << 18,
    ) -> None:
        if n_gpus <= 0:
            raise ValueError(f"n_gpus must be positive, got {n_gpus}")
        self.n_gpus = n_gpus
        spill = pathlib.Path(spill_dir) if spill_dir is not None else None
        self._compute_store = _ComputeStore(spill, spill_chunk, tag="compute")
        self._transfer_store = _TransferStore(spill, spill_chunk, tag="transfer")
        self._compute_view = _SpanView(self._compute_store)
        self._transfer_view = _SpanView(self._transfer_store)

    # ------------------------------------------------------------------
    # Span sequence views (historical list API)
    # ------------------------------------------------------------------

    @property
    def compute(self) -> _SpanView:
        return self._compute_view

    @compute.setter
    def compute(self, spans: Iterable[ComputeSpan]) -> None:
        store = self._compute_store
        self._compute_store = _ComputeStore(
            store._spill_dir, store._spill_chunk, tag="compute"
        )
        self._compute_view = _SpanView(self._compute_store)
        for span in spans:
            self._compute_store.append_span(span)

    @property
    def transfers(self) -> _SpanView:
        return self._transfer_view

    @transfers.setter
    def transfers(self, spans: Iterable[TransferSpan]) -> None:
        store = self._transfer_store
        self._transfer_store = _TransferStore(
            store._spill_dir, store._spill_chunk, tag="transfer"
        )
        self._transfer_view = _SpanView(self._transfer_store)
        for span in spans:
            self._transfer_store.append_span(span)

    def __mobius_fingerprint__(self) -> tuple:
        """Canonical content for :func:`repro.perf.fingerprint.fingerprint`.

        Two traces fingerprint identically iff they recorded the same spans
        in the same order — the determinism contract the fault-injection
        tests assert (same seed + same fault schedule => identical trace).
        The encoding materializes span objects, so the bytes are unchanged
        from the historical list-of-spans layout (pinned in BENCH_sim.json).
        """
        return (
            self.n_gpus,
            tuple(self._compute_store.materialized()),
            tuple(self._transfer_store.materialized()),
        )

    def columnar_digest(self) -> str:
        """Bit-exact trace identity that never materializes span objects.

        Hashes the raw column buffers; O(bytes) with no per-span Python
        work, so it stays cheap at ~1M spans.  Used for the large-topology
        bench rows; the pinned corpus/chaos rows keep the span-object
        fingerprint above.
        """
        sha = hashlib.sha256()
        sha.update(f"trace/{self.n_gpus}".encode())
        sha.update(self._compute_store.digest().encode())
        sha.update(self._transfer_store.digest().encode())
        return sha.hexdigest()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @staticmethod
    def _check_span(what: str, start: float, end: float, label: str) -> None:
        """Reject spans that would silently corrupt the columnar views."""
        if not (math.isfinite(start) and math.isfinite(end)):
            raise ValueError(
                f"{what} span {label!r} has non-finite times: [{start}, {end}]"
            )
        if end < start:
            raise ValueError(
                f"{what} span {label!r} ends before it starts: [{start}, {end}]"
            )

    def add_compute(self, gpu: int, start: float, end: float, label: str = "") -> None:
        self._check_span("compute", start, end, label)
        self._compute_store.append_row((gpu, start, end), label)

    def add_transfer(
        self, gpu: int, start: float, end: float, nbytes: float, kind: str = "", label: str = ""
    ) -> None:
        self._check_span("transfer", start, end, label)
        if not math.isfinite(nbytes) or nbytes < 0:
            raise ValueError(
                f"transfer span {label!r} has invalid byte count {nbytes!r}"
            )
        store = self._transfer_store
        store.append_row(
            (gpu, start, end, nbytes, isinstance(nbytes, int), store.code_for(kind)),
            label,
        )

    # ------------------------------------------------------------------
    # Pickling (content-addressed cache payloads)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "n_gpus": self.n_gpus,
            "compute": self._compute_store.export_state(),
            "transfers": self._transfer_store.export_state(),
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["n_gpus"])
        self._compute_store.load_state(state["compute"])
        self._transfer_store.load_state(state["transfers"])

    # ------------------------------------------------------------------
    # Columnar views
    # ------------------------------------------------------------------

    def _transfer_columns(self) -> dict:
        """Parallel numpy arrays over the transfer spans (cached views)."""
        return self._transfer_store.columns()

    def _compute_columns(self) -> dict:
        """Parallel numpy arrays over the compute spans (cached views)."""
        return self._compute_store.columns()

    def _kind_mask(self, kinds: Iterable[str]) -> np.ndarray:
        return self._transfer_store.kind_mask(kinds)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def makespan(self) -> float:
        """End-to-end step time: the last compute or transfer completion."""
        compute_end = self._compute_columns()["end"]
        transfer_end = self._transfer_columns()["end"]
        ends = np.concatenate([compute_end, transfer_end])
        return float(ends.max()) if ends.size else 0.0

    def total_transfer_bytes(self, kinds: Iterable[str] | None = None) -> float:
        """Total bytes moved, optionally restricted to transfer ``kinds``."""
        nbytes = self._transfer_columns()["nbytes"]
        if kinds is not None:
            nbytes = nbytes[self._kind_mask(kinds)]
        return float(nbytes.sum())

    def bandwidth_samples(
        self, min_bytes: float = 0.0, *, kinds: Iterable[str] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-transfer (bandwidth, weight) samples for CDF plots.

        Args:
            min_bytes: Drop transfers at or below this size.
            kinds: Restrict to these transfer kinds.

        Returns:
            ``(bandwidths, weights)`` arrays; weights are bytes transferred,
            matching the paper's "fraction of data transferred at bandwidth
            <= x" CDFs.
        """
        columns = self._transfer_columns()
        durations = columns["end"] - columns["start"]
        mask = (columns["nbytes"] > min_bytes) & (durations > 0)
        if kinds is not None:
            mask &= self._kind_mask(kinds)
        return columns["nbytes"][mask] / durations[mask], columns["nbytes"][mask]

    def bandwidth_cdf(
        self,
        grid: Sequence[float],
        min_bytes: float = 0.0,
        *,
        kinds: Iterable[str] | None = None,
    ) -> np.ndarray:
        """Byte-weighted CDF of transfer bandwidth evaluated on ``grid``."""
        bandwidths, weights = self.bandwidth_samples(min_bytes, kinds=kinds)
        if len(bandwidths) == 0:
            return np.zeros(len(grid))
        order = np.argsort(bandwidths)
        sorted_bw = bandwidths[order]
        cum = np.cumsum(weights[order])
        cum = cum / cum[-1]
        indices = np.searchsorted(sorted_bw, np.asarray(grid, dtype=float), side="right")
        return np.where(indices > 0, cum[np.maximum(indices - 1, 0)], 0.0)

    def median_bandwidth(self, *, kinds: Iterable[str] | None = None) -> float:
        """Byte-weighted median transfer bandwidth."""
        bandwidths, weights = self.bandwidth_samples(kinds=kinds)
        if len(bandwidths) == 0:
            return 0.0
        order = np.argsort(bandwidths)
        cum = np.cumsum(weights[order])
        idx = int(np.searchsorted(cum, cum[-1] / 2.0))
        return float(bandwidths[order][min(idx, len(order) - 1)])

    # ------------------------------------------------------------------
    # Overlap analysis (Figure 8)
    # ------------------------------------------------------------------

    def _gpu_intervals(self, columns: dict, gpu: int) -> list[Interval]:
        mask = columns["gpu"] == gpu
        starts, ends = _merge_interval_arrays(
            columns["start"][mask], columns["end"][mask]
        )
        return list(zip(starts.tolist(), ends.tolist()))

    def gpu_compute_intervals(self, gpu: int) -> list[Interval]:
        return self._gpu_intervals(self._compute_columns(), gpu)

    def gpu_transfer_intervals(self, gpu: int) -> list[Interval]:
        return self._gpu_intervals(self._transfer_columns(), gpu)

    def non_overlapped_comm_seconds(self, gpu: int) -> float:
        """Seconds GPU ``gpu`` spends communicating while computing nothing."""
        comm = self.gpu_transfer_intervals(gpu)
        busy = self.gpu_compute_intervals(gpu)
        return total_length(subtract_intervals(comm, busy))

    def non_overlapped_comm_fraction(self) -> float:
        """Mean over GPUs of non-overlapped communication time / step time."""
        step = self.makespan
        if step <= 0:
            return 0.0
        fractions = [
            self.non_overlapped_comm_seconds(gpu) / step for gpu in range(self.n_gpus)
        ]
        return float(np.mean(fractions))

    def compute_seconds(self, gpu: int | None = None) -> float:
        """Total busy compute time, for one GPU or summed over all."""
        if gpu is None:
            return sum(total_length(self.gpu_compute_intervals(g)) for g in range(self.n_gpus))
        return total_length(self.gpu_compute_intervals(gpu))
