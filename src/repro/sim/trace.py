"""Execution traces and their post-processing.

Every simulated training step produces a :class:`Trace`: the list of compute
spans (per GPU) and transfer spans (with byte counts and achieved bandwidth).
The analyses of §4.2 are all derived from traces:

* **bandwidth CDFs** (Figures 2, 7, 11, 16) — per-transfer average bandwidth,
  weighted by bytes transferred;
* **communication traffic** (Figure 6) — total bytes moved per step;
* **non-overlapped communication time** (Figure 8) — per-GPU communication
  intervals minus that GPU's compute intervals.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "ComputeSpan",
    "TransferSpan",
    "Trace",
    "merge_intervals",
    "subtract_intervals",
    "total_length",
]

Interval = tuple[float, float]


@dataclasses.dataclass(frozen=True)
class ComputeSpan:
    """One kernel execution on one GPU."""

    gpu: int
    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class TransferSpan:
    """One completed transfer.

    Attributes:
        gpu: The GPU this transfer belongs to (for overlap accounting); for
            a GPU-to-GPU bounce this is the *destination* GPU, whose compute
            waits on it.
        kind: Free-form category, e.g. ``"stage-upload"``, ``"activation"``,
            ``"allgather"``, ``"grad-offload"``.
    """

    gpu: int
    start: float
    end: float
    nbytes: float
    kind: str = ""
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        """Average achieved bandwidth in bytes/s (0 for instantaneous)."""
        if self.duration <= 0:
            return 0.0
        return self.nbytes / self.duration


def _merge_interval_arrays(
    starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized interval union on parallel start/end arrays.

    Empty intervals (``end <= start``) are dropped; touching intervals
    merge, matching the historical list implementation.
    """
    keep = ends > starts
    starts, ends = starts[keep], ends[keep]
    if starts.size == 0:
        return starts, ends
    order = np.lexsort((ends, starts))
    starts, ends = starts[order], ends[order]
    running_end = np.maximum.accumulate(ends)
    first = np.empty(starts.size, dtype=bool)
    first[0] = True
    np.greater(starts[1:], running_end[:-1], out=first[1:])
    heads = np.flatnonzero(first)
    tails = np.append(heads[1:], starts.size) - 1
    return starts[heads], running_end[tails]


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Union a set of (start, end) intervals into disjoint sorted intervals."""
    pairs = np.array(list(intervals), dtype=float)
    if pairs.size == 0:
        return []
    starts, ends = _merge_interval_arrays(pairs[:, 0], pairs[:, 1])
    return list(zip(starts.tolist(), ends.tolist()))


def subtract_intervals(base: Sequence[Interval], holes: Sequence[Interval]) -> list[Interval]:
    """Set difference ``base \\ holes``; both inputs may overlap internally."""
    base = merge_intervals(base)
    holes = merge_intervals(holes)
    result: list[Interval] = []
    hole_index = 0
    for start, end in base:
        cursor = start
        while hole_index < len(holes) and holes[hole_index][1] <= cursor:
            hole_index += 1
        index = hole_index
        while index < len(holes) and holes[index][0] < end:
            hole_start, hole_end = holes[index]
            if hole_start > cursor:
                result.append((cursor, hole_start))
            cursor = max(cursor, hole_end)
            if cursor >= end:
                break
            index += 1
        if cursor < end:
            result.append((cursor, end))
    return result


def total_length(intervals: Iterable[Interval]) -> float:
    """Sum of interval lengths after merging overlaps."""
    pairs = np.array(list(intervals), dtype=float)
    if pairs.size == 0:
        return 0.0
    starts, ends = _merge_interval_arrays(pairs[:, 0], pairs[:, 1])
    return float(np.sum(ends - starts))


class Trace:
    """Recorded activity of one simulated training step."""

    def __init__(self, n_gpus: int) -> None:
        if n_gpus <= 0:
            raise ValueError(f"n_gpus must be positive, got {n_gpus}")
        self.n_gpus = n_gpus
        self.compute: list[ComputeSpan] = []
        self.transfers: list[TransferSpan] = []
        # Columnar views of the span lists, rebuilt lazily whenever the
        # underlying list object or its length changes (spans are
        # append-only, so that check is sufficient).
        self._transfer_columns_cache: tuple[tuple[int, int], dict] | None = None
        self._compute_columns_cache: tuple[tuple[int, int], dict] | None = None

    def __mobius_fingerprint__(self) -> tuple:
        """Canonical content for :func:`repro.perf.fingerprint.fingerprint`.

        Two traces fingerprint identically iff they recorded the same spans
        in the same order — the determinism contract the fault-injection
        tests assert (same seed + same fault schedule => identical trace).
        """
        return (self.n_gpus, tuple(self.compute), tuple(self.transfers))

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @staticmethod
    def _check_span(what: str, start: float, end: float, label: str) -> None:
        """Reject spans that would silently corrupt the columnar views."""
        if not (math.isfinite(start) and math.isfinite(end)):
            raise ValueError(
                f"{what} span {label!r} has non-finite times: [{start}, {end}]"
            )
        if end < start:
            raise ValueError(
                f"{what} span {label!r} ends before it starts: [{start}, {end}]"
            )

    def add_compute(self, gpu: int, start: float, end: float, label: str = "") -> None:
        self._check_span("compute", start, end, label)
        self.compute.append(ComputeSpan(gpu, start, end, label))

    def add_transfer(
        self, gpu: int, start: float, end: float, nbytes: float, kind: str = "", label: str = ""
    ) -> None:
        self._check_span("transfer", start, end, label)
        if not math.isfinite(nbytes) or nbytes < 0:
            raise ValueError(
                f"transfer span {label!r} has invalid byte count {nbytes!r}"
            )
        self.transfers.append(TransferSpan(gpu, start, end, nbytes, kind, label))

    # ------------------------------------------------------------------
    # Columnar views
    # ------------------------------------------------------------------

    def _transfer_columns(self) -> dict:
        """Parallel numpy arrays over ``self.transfers``, cached."""
        token = (id(self.transfers), len(self.transfers))
        if self._transfer_columns_cache is None or self._transfer_columns_cache[0] != token:
            spans = self.transfers
            n = len(spans)
            columns = {
                "gpu": np.fromiter((s.gpu for s in spans), dtype=np.int64, count=n),
                "start": np.fromiter((s.start for s in spans), dtype=float, count=n),
                "end": np.fromiter((s.end for s in spans), dtype=float, count=n),
                "nbytes": np.fromiter((s.nbytes for s in spans), dtype=float, count=n),
                "kind": np.array([s.kind for s in spans], dtype=object),
            }
            self._transfer_columns_cache = (token, columns)
        return self._transfer_columns_cache[1]

    def _compute_columns(self) -> dict:
        """Parallel numpy arrays over ``self.compute``, cached."""
        token = (id(self.compute), len(self.compute))
        if self._compute_columns_cache is None or self._compute_columns_cache[0] != token:
            spans = self.compute
            n = len(spans)
            columns = {
                "gpu": np.fromiter((s.gpu for s in spans), dtype=np.int64, count=n),
                "start": np.fromiter((s.start for s in spans), dtype=float, count=n),
                "end": np.fromiter((s.end for s in spans), dtype=float, count=n),
            }
            self._compute_columns_cache = (token, columns)
        return self._compute_columns_cache[1]

    def _kind_mask(self, kinds: Iterable[str]) -> np.ndarray:
        column = self._transfer_columns()["kind"]
        wanted = set(kinds)
        return np.fromiter(
            (kind in wanted for kind in column), dtype=bool, count=len(column)
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def makespan(self) -> float:
        """End-to-end step time: the last compute or transfer completion."""
        compute_end = self._compute_columns()["end"]
        transfer_end = self._transfer_columns()["end"]
        ends = np.concatenate([compute_end, transfer_end])
        return float(ends.max()) if ends.size else 0.0

    def total_transfer_bytes(self, kinds: Iterable[str] | None = None) -> float:
        """Total bytes moved, optionally restricted to transfer ``kinds``."""
        nbytes = self._transfer_columns()["nbytes"]
        if kinds is not None:
            nbytes = nbytes[self._kind_mask(kinds)]
        return float(nbytes.sum())

    def bandwidth_samples(
        self, min_bytes: float = 0.0, *, kinds: Iterable[str] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-transfer (bandwidth, weight) samples for CDF plots.

        Args:
            min_bytes: Drop transfers at or below this size.
            kinds: Restrict to these transfer kinds.

        Returns:
            ``(bandwidths, weights)`` arrays; weights are bytes transferred,
            matching the paper's "fraction of data transferred at bandwidth
            <= x" CDFs.
        """
        columns = self._transfer_columns()
        durations = columns["end"] - columns["start"]
        mask = (columns["nbytes"] > min_bytes) & (durations > 0)
        if kinds is not None:
            mask &= self._kind_mask(kinds)
        return columns["nbytes"][mask] / durations[mask], columns["nbytes"][mask]

    def bandwidth_cdf(
        self,
        grid: Sequence[float],
        min_bytes: float = 0.0,
        *,
        kinds: Iterable[str] | None = None,
    ) -> np.ndarray:
        """Byte-weighted CDF of transfer bandwidth evaluated on ``grid``."""
        bandwidths, weights = self.bandwidth_samples(min_bytes, kinds=kinds)
        if len(bandwidths) == 0:
            return np.zeros(len(grid))
        order = np.argsort(bandwidths)
        sorted_bw = bandwidths[order]
        cum = np.cumsum(weights[order])
        cum = cum / cum[-1]
        indices = np.searchsorted(sorted_bw, np.asarray(grid, dtype=float), side="right")
        return np.where(indices > 0, cum[np.maximum(indices - 1, 0)], 0.0)

    def median_bandwidth(self, *, kinds: Iterable[str] | None = None) -> float:
        """Byte-weighted median transfer bandwidth."""
        bandwidths, weights = self.bandwidth_samples(kinds=kinds)
        if len(bandwidths) == 0:
            return 0.0
        order = np.argsort(bandwidths)
        cum = np.cumsum(weights[order])
        idx = int(np.searchsorted(cum, cum[-1] / 2.0))
        return float(bandwidths[order][min(idx, len(order) - 1)])

    # ------------------------------------------------------------------
    # Overlap analysis (Figure 8)
    # ------------------------------------------------------------------

    def _gpu_intervals(self, columns: dict, gpu: int) -> list[Interval]:
        mask = columns["gpu"] == gpu
        starts, ends = _merge_interval_arrays(
            columns["start"][mask], columns["end"][mask]
        )
        return list(zip(starts.tolist(), ends.tolist()))

    def gpu_compute_intervals(self, gpu: int) -> list[Interval]:
        return self._gpu_intervals(self._compute_columns(), gpu)

    def gpu_transfer_intervals(self, gpu: int) -> list[Interval]:
        return self._gpu_intervals(self._transfer_columns(), gpu)

    def non_overlapped_comm_seconds(self, gpu: int) -> float:
        """Seconds GPU ``gpu`` spends communicating while computing nothing."""
        comm = self.gpu_transfer_intervals(gpu)
        busy = self.gpu_compute_intervals(gpu)
        return total_length(subtract_intervals(comm, busy))

    def non_overlapped_comm_fraction(self) -> float:
        """Mean over GPUs of non-overlapped communication time / step time."""
        step = self.makespan
        if step <= 0:
            return 0.0
        fractions = [
            self.non_overlapped_comm_seconds(gpu) / step for gpu in range(self.n_gpus)
        ]
        return float(np.mean(fractions))

    def compute_seconds(self, gpu: int | None = None) -> float:
        """Total busy compute time, for one GPU or summed over all."""
        if gpu is None:
            return sum(total_length(self.gpu_compute_intervals(g)) for g in range(self.n_gpus))
        return total_length(self.gpu_compute_intervals(gpu))
